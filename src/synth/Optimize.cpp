//===- synth/Optimize.cpp - Netlist cleanup passes ------------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "synth/Optimize.h"

#include "support/Graph.h"

#include <cassert>
#include <map>
#include <optional>
#include <vector>

using namespace wiresort;
using namespace wiresort::ir;
using namespace wiresort::synth;

namespace {

/// Finds (or creates) a 1-bit constant wire with the given value.
WireId constWire(Module &M, bool Value, std::map<bool, WireId> &Pool) {
  auto It = Pool.find(Value);
  if (It != Pool.end())
    return It->second;
  WireId W = M.addWire(Value ? "opt$const1" : "opt$const0", WireKind::Const,
                       1, Value ? 1 : 0);
  Pool[Value] = W;
  return W;
}

/// Evaluates a 1-bit Lut cover over known input bits.
bool evalLut(const Net &N, const std::vector<bool> &Ins) {
  // Each cover row is "<plane><output>"; a '1' output row matching the
  // inputs sets the output. All-'0'-output covers mean constant 0.
  for (const std::string &Row : N.Cover) {
    assert(Row.size() == Ins.size() + 1 && "malformed LUT cover row");
    bool Match = true;
    for (size_t I = 0; I != Ins.size(); ++I) {
      char C = Row[I];
      if (C == '-')
        continue;
      if ((C == '1') != Ins[I]) {
        Match = false;
        break;
      }
    }
    if (Match)
      return Row.back() == '1';
  }
  return false;
}

size_t foldConstants(Module &M, std::map<bool, WireId> &Pool) {
  std::vector<std::optional<bool>> Known(M.numWires());
  for (WireId W = 0; W != M.numWires(); ++W)
    if (M.wire(W).Kind == WireKind::Const)
      Known[W] = (M.wire(W).ConstValue & 1) != 0;

  size_t Folded = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (Net &N : M.Nets) {
      if (Known[N.Output])
        continue;
      auto known = [&](size_t I) { return Known[N.Inputs[I]]; };
      std::optional<bool> Result;
      switch (N.Operation) {
      case Op::Buf:
        Result = known(0);
        break;
      case Op::Not:
        if (known(0))
          Result = !*known(0);
        break;
      case Op::And:
        if ((known(0) && !*known(0)) || (known(1) && !*known(1)))
          Result = false;
        else if (known(0) && known(1))
          Result = true;
        break;
      case Op::Or:
        if ((known(0) && *known(0)) || (known(1) && *known(1)))
          Result = true;
        else if (known(0) && known(1))
          Result = false;
        break;
      case Op::Nand:
        if ((known(0) && !*known(0)) || (known(1) && !*known(1)))
          Result = true;
        else if (known(0) && known(1))
          Result = false;
        break;
      case Op::Nor:
        if ((known(0) && *known(0)) || (known(1) && *known(1)))
          Result = false;
        else if (known(0) && known(1))
          Result = true;
        break;
      case Op::Xor:
        if (known(0) && known(1))
          Result = *known(0) != *known(1);
        break;
      case Op::Xnor:
        if (known(0) && known(1))
          Result = *known(0) == *known(1);
        break;
      case Op::Mux:
        if (known(0))
          Result = *known(0) ? known(1) : known(2);
        else if (known(1) && known(2) && *known(1) == *known(2))
          Result = known(1);
        break;
      case Op::Lut: {
        std::vector<bool> Ins;
        bool AllKnown = true;
        for (size_t I = 0; I != N.Inputs.size(); ++I) {
          if (!known(I)) {
            AllKnown = false;
            break;
          }
          Ins.push_back(*known(I));
        }
        if (AllKnown)
          Result = evalLut(N, Ins);
        break;
      }
      default:
        break; // Multi-bit ops are not expected in flat netlists.
      }
      if (!Result)
        continue;
      Known[N.Output] = *Result;
      N.Operation = Op::Buf;
      N.Inputs = {constWire(M, *Result, Pool)};
      N.Cover.clear();
      ++Folded;
      Changed = true;
    }
  }
  return Folded;
}

size_t breakLoops(Module &M, std::map<bool, WireId> &Pool) {
  size_t Broken = 0;
  while (true) {
    Graph G(M.numWires());
    for (const Net &N : M.Nets)
      for (WireId In : N.Inputs)
        G.addEdge(In, N.Output);
    for (const Memory &Mem : M.Memories)
      if (!Mem.SyncRead)
        G.addEdge(Mem.RAddr, Mem.RData);
    std::optional<std::vector<uint32_t>> Cycle = G.findCycle();
    if (!Cycle)
      return Broken;
    // Ground the driver of the first wire on the cycle.
    WireId Victim = (*Cycle)[0];
    for (Net &N : M.Nets) {
      if (N.Output != Victim)
        continue;
      N.Operation = Op::Buf;
      N.Inputs = {constWire(M, false, Pool)};
      N.Cover.clear();
      break;
    }
    ++Broken;
  }
}

size_t removeDeadGates(Module &M) {
  // Backward liveness from output ports and memory pins; register D pins
  // become live only when their Q is live.
  std::vector<bool> Live(M.numWires(), false);
  std::vector<WireId> Work;
  auto markLive = [&](WireId W) {
    if (!Live[W]) {
      Live[W] = true;
      Work.push_back(W);
    }
  };
  for (WireId W : M.Outputs)
    markLive(W);
  for (const Memory &Mem : M.Memories)
    for (WireId Pin : {Mem.RAddr, Mem.RData, Mem.WAddr, Mem.WData,
                       Mem.WEnable})
      markLive(Pin);

  std::map<WireId, const Net *> DriverNet;
  for (const Net &N : M.Nets)
    DriverNet[N.Output] = &N;
  std::map<WireId, const Register *> DriverReg;
  for (const Register &R : M.Registers)
    DriverReg[R.Q] = &R;

  while (!Work.empty()) {
    WireId W = Work.back();
    Work.pop_back();
    auto NetIt = DriverNet.find(W);
    if (NetIt != DriverNet.end())
      for (WireId In : NetIt->second->Inputs)
        markLive(In);
    auto RegIt = DriverReg.find(W);
    if (RegIt != DriverReg.end())
      markLive(RegIt->second->D);
  }

  // Rebuild the module without dead nets, registers, and wires.
  Module Out(M.Name);
  std::vector<WireId> Remap(M.numWires(), InvalidId);
  for (WireId W = 0; W != M.numWires(); ++W) {
    const Wire &Wr = M.wire(W);
    bool Keep = Live[W] || Wr.Kind == WireKind::Input;
    if (!Keep)
      continue;
    Remap[W] = Out.addWire(Wr.Name, Wr.Kind, Wr.Width, Wr.ConstValue);
    if (Wr.Kind == WireKind::Input)
      Out.Inputs.push_back(Remap[W]);
    if (Wr.Kind == WireKind::Output)
      Out.Outputs.push_back(Remap[W]);
  }
  size_t Removed = 0;
  for (const Net &N : M.Nets) {
    if (Remap[N.Output] == InvalidId) {
      ++Removed;
      continue;
    }
    std::vector<WireId> Ins;
    for (WireId In : N.Inputs)
      Ins.push_back(Remap[In]);
    Out.addNet(N.Operation, std::move(Ins), Remap[N.Output], N.Aux, N.Cover);
  }
  for (const Register &R : M.Registers) {
    if (Remap[R.Q] == InvalidId)
      continue;
    Out.addRegister(Remap[R.D], Remap[R.Q], R.Init);
  }
  for (const Memory &Mem : M.Memories) {
    Memory NewMem = Mem;
    NewMem.RAddr = Remap[Mem.RAddr];
    NewMem.RData = Remap[Mem.RData];
    NewMem.WAddr = Remap[Mem.WAddr];
    NewMem.WData = Remap[Mem.WData];
    NewMem.WEnable = Remap[Mem.WEnable];
    Out.addMemory(std::move(NewMem));
  }
  M = std::move(Out);
  return Removed;
}

} // namespace

OptimizeStats synth::optimize(Module &Flat, const OptimizeOptions &Opts) {
  assert(Flat.Instances.empty() && "optimize needs a flat netlist");
  OptimizeStats Stats;
  std::map<bool, WireId> Pool;
  if (Opts.BreakLoops)
    Stats.LoopsBroken = breakLoops(Flat, Pool);
  if (Opts.FoldConstants)
    Stats.GatesFolded = foldConstants(Flat, Pool);
  if (Opts.RemoveDeadGates)
    Stats.GatesRemoved = removeDeadGates(Flat);
  return Stats;
}
