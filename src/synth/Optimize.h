//===- synth/Optimize.h - Netlist cleanup passes ----------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Light netlist optimization: constant folding and dead-gate removal,
/// plus an opt-in BreakLoops mode that silently severs combinational
/// cycles. BreakLoops reproduces the hazard the paper observed in real
/// synthesis tools ("under certain combinations of flags ... tools like
/// Yosys fail to detect loops or silently delete them, 'successfully'
/// synthesizing the offending circuit", Section 2) — running cycle
/// detection *after* an optimizing pass with loop breaking enabled
/// reports a clean design even though the source was broken.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SYNTH_OPTIMIZE_H
#define WIRESORT_SYNTH_OPTIMIZE_H

#include "ir/Module.h"

#include <cstddef>

namespace wiresort::synth {

/// Knobs for \ref optimize.
struct OptimizeOptions {
  bool FoldConstants = true;
  bool RemoveDeadGates = true;
  /// Sever combinational cycles by grounding one wire per cycle. Unsafe
  /// by design; exists to demonstrate the synthesis-time hazard.
  bool BreakLoops = false;
};

/// What \ref optimize did.
struct OptimizeStats {
  size_t GatesFolded = 0;
  size_t GatesRemoved = 0;
  size_t LoopsBroken = 0;
};

/// Optimizes a flat primitive-gate module in place.
OptimizeStats optimize(ir::Module &Flat, const OptimizeOptions &Opts = {});

} // namespace wiresort::synth

#endif // WIRESORT_SYNTH_OPTIMIZE_H
