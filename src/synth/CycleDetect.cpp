//===- synth/CycleDetect.cpp - Netlist-level cycle detection --------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "synth/CycleDetect.h"

#include "support/Graph.h"
#include "support/Timer.h"

#include <cassert>

using namespace wiresort;
using namespace wiresort::ir;
using namespace wiresort::synth;

NetlistCycleResult synth::detectCycles(const Module &Flat) {
  assert(Flat.Instances.empty() && "cycle detection needs a flat netlist");
  Timer T;
  Graph G(Flat.numWires());
  for (const Net &N : Flat.Nets)
    for (WireId In : N.Inputs)
      G.addEdge(In, N.Output);
  for (const Memory &Mem : Flat.Memories)
    if (!Mem.SyncRead)
      G.addEdge(Mem.RAddr, Mem.RData);

  NetlistCycleResult Result;
  Result.NumWires = Flat.numWires();
  Result.NumGates = Flat.Nets.size();
  if (std::optional<std::vector<uint32_t>> Cycle = G.findCycle()) {
    Result.HasLoop = true;
    support::Diag Diag(support::DiagCode::WS401_NETLIST_CYCLE,
                       "combinational cycle in netlist '" + Flat.Name +
                           "'");
    for (uint32_t Node : *Cycle)
      Diag.addHop(Flat.Name, Flat.wire(Node).Name);
    Result.Diags.add(std::move(Diag));
  }
  Result.Seconds = T.seconds();
  return Result;
}
