//===- synth/Flatten.h - RTL-level hierarchy inlining -----------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inlines submodule instances while keeping multi-bit RTL operations —
/// the "RTL, on the other hand, has fewer gate dependencies to analyze
/// while still representing the same dataflow graph" observation of
/// Section 2. Used by the simulator (which wants one flat module) and by
/// benchmarks contrasting RTL-level with gate-level costs.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_SYNTH_FLATTEN_H
#define WIRESORT_SYNTH_FLATTEN_H

#include "ir/Design.h"

namespace wiresort::synth {

/// Recursively inlines every instance of module \p Id, producing an
/// instance-free module with the same interface and behavior. Multi-bit
/// nets are preserved; instance port bindings become Buf nets.
ir::Module inlineInstances(const ir::Design &D, ir::ModuleId Id);

} // namespace wiresort::synth

#endif // WIRESORT_SYNTH_FLATTEN_H
