//===- parse/Verilog.h - Structural Verilog export --------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Writes bit-level (lowered) modules as synthesizable structural
/// Verilog-2001, closing the loop with real tool flows: designs built or
/// analyzed here can be handed to an external synthesizer or simulator.
/// Like writeBlif, this requires primitive operations and 1-bit wires;
/// run synth::lower / synth::lowerHierarchical first. Registers become a
/// single always @(posedge clk) block with initial values; hierarchy
/// becomes module instantiations.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_PARSE_VERILOG_H
#define WIRESORT_PARSE_VERILOG_H

#include "ir/Design.h"

#include <string>

namespace wiresort::parse {

/// Serializes \p Top and every definition it (transitively)
/// instantiates. All reachable modules must be bit-level with primitive
/// operations only.
std::string writeVerilog(const ir::Design &D, ir::ModuleId Top);

} // namespace wiresort::parse

#endif // WIRESORT_PARSE_VERILOG_H
