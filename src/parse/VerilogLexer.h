//===- parse/VerilogLexer.h - Tokenizer for the Verilog subset --*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the structural Verilog-2001 subset accepted by
/// parse::parseVerilog: identifiers (plain and escaped), sized and plain
/// numeric literals, punctuation/operators, with // and /* */ comments.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_PARSE_VERILOGLEXER_H
#define WIRESORT_PARSE_VERILOGLEXER_H

#include <cstdint>
#include <string>
#include <vector>

namespace wiresort::parse {

/// Token kinds; keywords arrive as Ident and are matched by spelling.
enum class TokKind : uint8_t {
  Ident,   ///< Identifier or keyword (escaped identifiers unescaped).
  Number,  ///< Numeric literal; value/width decoded by the lexer.
  Punct,   ///< Operator or punctuation, possibly multi-character.
  End,     ///< End of input.
};

/// One token with its source line for diagnostics.
struct Token {
  TokKind Kind = TokKind::End;
  std::string Text;
  /// For Number: the decoded value and the declared width (0 if the
  /// literal was unsized).
  uint64_t Value = 0;
  uint16_t Width = 0;
  size_t Line = 0;
};

/// Tokenizes \p Text. On a lexical error, returns false and sets
/// \p Error (with a line number); otherwise fills \p Out ending with an
/// End token.
bool lexVerilog(const std::string &Text, std::vector<Token> &Out,
                std::string &Error);

} // namespace wiresort::parse

#endif // WIRESORT_PARSE_VERILOGLEXER_H
