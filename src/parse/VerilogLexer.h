//===- parse/VerilogLexer.h - Tokenizer for the Verilog subset --*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the structural Verilog-2001 subset accepted by
/// parse::parseVerilog: identifiers (plain and escaped), sized and plain
/// numeric literals, punctuation/operators, with // and /* */ comments.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_PARSE_VERILOGLEXER_H
#define WIRESORT_PARSE_VERILOGLEXER_H

#include "support/Diag.h"

#include <cstdint>
#include <string>
#include <vector>

namespace wiresort::parse {

/// Token kinds; keywords arrive as Ident and are matched by spelling.
enum class TokKind : uint8_t {
  Ident,   ///< Identifier or keyword (escaped identifiers unescaped).
  Number,  ///< Numeric literal; value/width decoded by the lexer.
  Punct,   ///< Operator or punctuation, possibly multi-character.
  End,     ///< End of input.
};

/// One token with its source position for diagnostics.
struct Token {
  TokKind Kind = TokKind::End;
  std::string Text;
  /// For Number: the decoded value and the declared width (0 if the
  /// literal was unsized).
  uint64_t Value = 0;
  uint16_t Width = 0;
  size_t Line = 0;
  size_t Col = 0; ///< 1-based column of the token's first character.
};

/// Tokenizes \p Text. On a lexical error the result carries a
/// WS211_VERILOG_LEX diagnostic with a 1-based line:col SrcLoc (file
/// field set to \p FileName); on success the token stream ends with an
/// End token.
support::Expected<std::vector<Token>>
lexVerilog(const std::string &Text, const std::string &FileName = "");

} // namespace wiresort::parse

#endif // WIRESORT_PARSE_VERILOGLEXER_H
