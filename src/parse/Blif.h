//===- parse/Blif.h - BLIF import/export ------------------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reader and writer for the Berkeley Logic Interchange Format, the
/// interchange the paper's evaluation pipeline uses: BaseJump STL and
/// OPDB designs were synthesized by Yosys to (hierarchical or flattened)
/// BLIF and imported into PyRTL (Sections 5.1, 5.2, 5.4).
///
/// Supported constructs: .model/.inputs/.outputs/.names (single-output
/// covers)/.latch/.subckt/.end, comments, and line continuations. Every
/// BLIF signal is a 1-bit wire; .names becomes an Op::Lut net, .latch a
/// Register, .subckt a SubInstance (resolved across models in the file).
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_PARSE_BLIF_H
#define WIRESORT_PARSE_BLIF_H

#include "ir/Design.h"
#include "support/Deadline.h"
#include "support/Diag.h"

#include <cstddef>
#include <memory>
#include <string>

namespace wiresort::parse {

/// A parsed BLIF file: a design holding one module per .model, plus the
/// id of the first (top) model.
struct BlifFile {
  ir::Design Design;
  ir::ModuleId Top = ir::InvalidId;
};

/// Content-keyed cache of parsed `.model` chunks, the parse half of the
/// serving layer's residency (docs/SERVING.md). When passed to
/// parseBlif, the text is split at `.model` boundaries and each chunk
/// is keyed by its exact bytes: a hit replays the stored parse (with
/// source lines rebased to the chunk's position in the new file, so
/// diagnostics stay byte-identical to an uncached parse), a miss
/// parses normally and populates the cache. A warm re-parse of an
/// edited file therefore re-tokenizes only the edited models — the
/// same dirtied-only contract the summary cache gives Stage 1.
///
/// Thread-safe: concurrent parseBlif calls may share one cache.
/// Bounded: past MaxEntries the least-recently-used chunks are evicted
/// one at a time, so a daemon's warm working set survives an overflow —
/// eviction costs one cold parse of the coldest chunk, never a verdict
/// and never (as the old wholesale flush did) the whole cache.
class BlifParseCache {
public:
  explicit BlifParseCache(size_t MaxEntries = 4096);
  ~BlifParseCache();
  BlifParseCache(const BlifParseCache &) = delete;
  BlifParseCache &operator=(const BlifParseCache &) = delete;

  /// Cached chunks / chunk lookups that replayed / that parsed.
  size_t size() const;
  size_t hits() const;
  size_t misses() const;

  struct Impl;

private:
  friend support::Expected<BlifFile>
  parseBlif(const std::string &, const std::string &,
            const support::Deadline *, BlifParseCache *);
  std::unique_ptr<Impl> I;
};

/// Parses BLIF text. On malformed input the result carries a
/// WS201_BLIF_SYNTAX / WS202_BLIF_STRUCTURE diagnostic whose SrcLoc
/// points at the offending token (1-based line and column in \p Text,
/// file field set to \p FileName); the result validates on success.
/// An active \p DL is polled once per input line; when it fires the
/// parse stops with a WS601_CANCELLED diagnostic locating the line it
/// stopped at (docs/ROBUSTNESS.md). A null \p DL never cancels.
/// A non-null \p Cache reuses previously parsed `.model` chunks by
/// content — same result, same diagnostics, same bytes out, only the
/// tokenizing skipped (see BlifParseCache).
support::Expected<BlifFile> parseBlif(const std::string &Text,
                                      const std::string &FileName = "",
                                      const support::Deadline *DL = nullptr,
                                      BlifParseCache *Cache = nullptr);

/// Serializes \p Top and every definition it (transitively) instantiates.
/// All reachable modules must be bit-level (1-bit wires) and contain only
/// primitive operations — run synth::lower first for RTL modules.
std::string writeBlif(const ir::Design &D, ir::ModuleId Top);

} // namespace wiresort::parse

#endif // WIRESORT_PARSE_BLIF_H
