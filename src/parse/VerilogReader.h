//===- parse/VerilogReader.h - Structural Verilog import --------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reader for the structural/RTL Verilog-2001 subset the evaluation
/// corpora are written in, so designs can be analyzed directly at the
/// HDL level — the paper's intended mode of use ("we expect the user to
/// write their designs in ... a high-level HDL that can be analysed
/// directly", Section 5.4) — rather than via synthesized BLIF.
///
/// Supported subset:
///  * modules with ANSI or classic port declarations, `wire`/`reg`
///    declarations with ranges (widths up to 64), optional reg
///    initializers;
///  * continuous assignments over expressions with `~ ! & | ^ && ||
///    == != < <= > >= + - << >> ?:`, bit/part selects, concatenation,
///    sized/unsized literals;
///  * `always @(posedge clk)` blocks of nonblocking whole-wire
///    assignments (each becomes a register);
///  * module instantiation with named port connections.
///
/// Out of scope (rejected with a diagnostic): behavioral constructs
/// (`if`/`case` inside always), partial (bit-select) assignment targets,
/// multi-dimensional arrays/memories, parameters, and generate blocks.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_PARSE_VERILOGREADER_H
#define WIRESORT_PARSE_VERILOGREADER_H

#include "ir/Design.h"
#include "support/Deadline.h"
#include "support/Diag.h"

#include <string>

namespace wiresort::parse {

/// A parsed Verilog file: one module definition per `module`, plus the
/// id of the first one (which the writer emits as top).
struct VerilogFile {
  ir::Design Design;
  ir::ModuleId Top = ir::InvalidId;
};

/// Parses Verilog text. On malformed input the result carries a
/// WS211_VERILOG_LEX / WS212_VERILOG_SYNTAX diagnostic — or
/// WS213_VERILOG_UNSUPPORTED for constructs outside the structural
/// subset — whose SrcLoc gives the 1-based line:col (file field set to
/// \p FileName); the result validates on success. Forward references
/// between modules are allowed.
///
/// An active \p DL is polled between module shells and bodies; when it
/// fires the parse stops with a WS601_CANCELLED diagnostic locating
/// where it stopped (docs/ROBUSTNESS.md). A null \p DL never cancels.
support::Expected<VerilogFile>
parseVerilog(const std::string &Text, const std::string &FileName = "",
             const support::Deadline *DL = nullptr);

} // namespace wiresort::parse

#endif // WIRESORT_PARSE_VERILOGREADER_H
