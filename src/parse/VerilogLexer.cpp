//===- parse/VerilogLexer.cpp - Tokenizer for the Verilog subset ----------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "parse/VerilogLexer.h"

#include <cctype>

using namespace wiresort;
using namespace wiresort::parse;

namespace {

bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}
bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
         C == '$';
}

/// Decodes the digits of a based literal; \returns false on a bad digit.
bool decodeDigits(const std::string &Digits, int Base, uint64_t &Value) {
  Value = 0;
  for (char C : Digits) {
    if (C == '_')
      continue;
    int Digit;
    if (C >= '0' && C <= '9')
      Digit = C - '0';
    else if (C >= 'a' && C <= 'f')
      Digit = C - 'a' + 10;
    else if (C >= 'A' && C <= 'F')
      Digit = C - 'A' + 10;
    else
      return false;
    if (Digit >= Base)
      return false;
    Value = Value * Base + Digit;
  }
  return true;
}

} // namespace

support::Expected<std::vector<Token>>
parse::lexVerilog(const std::string &Text, const std::string &FileName) {
  using support::Diag;
  using support::DiagCode;
  using support::SrcLoc;

  std::vector<Token> Out;
  size_t Pos = 0;
  size_t Line = 1;
  size_t LineStart = 0; // Offset of the current line's first character.
  const size_t N = Text.size();

  // 1-based column of offset \p At on the current line.
  auto colOf = [&](size_t At) { return At - LineStart + 1; };
  auto failAt = [&](size_t At, const std::string &Msg) {
    return Diag(DiagCode::WS211_VERILOG_LEX, Msg)
        .withLoc(SrcLoc{FileName, Line, colOf(At)});
  };

  while (Pos < N) {
    char C = Text[Pos];
    if (C == '\n') {
      ++Line;
      ++Pos;
      LineStart = Pos;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++Pos;
      continue;
    }
    // Comments.
    if (C == '/' && Pos + 1 < N && Text[Pos + 1] == '/') {
      while (Pos < N && Text[Pos] != '\n')
        ++Pos;
      continue;
    }
    if (C == '/' && Pos + 1 < N && Text[Pos + 1] == '*') {
      size_t OpenLine = Line, OpenCol = colOf(Pos);
      Pos += 2;
      while (Pos + 1 < N &&
             !(Text[Pos] == '*' && Text[Pos + 1] == '/')) {
        if (Text[Pos] == '\n') {
          ++Line;
          LineStart = Pos + 1;
        }
        ++Pos;
      }
      if (Pos + 1 >= N)
        return Diag(DiagCode::WS211_VERILOG_LEX,
                    "unterminated block comment")
            .withLoc(SrcLoc{FileName, OpenLine, OpenCol});
      Pos += 2;
      continue;
    }
    // Escaped identifier: backslash to whitespace.
    if (C == '\\') {
      size_t EscPos = Pos;
      size_t Start = ++Pos;
      while (Pos < N &&
             !std::isspace(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
      if (Pos == Start)
        return failAt(EscPos, "empty escaped identifier");
      Out.push_back({TokKind::Ident, Text.substr(Start, Pos - Start), 0,
                     0, Line, colOf(EscPos)});
      continue;
    }
    if (isIdentStart(C)) {
      size_t Start = Pos;
      while (Pos < N && isIdentChar(Text[Pos]))
        ++Pos;
      Out.push_back({TokKind::Ident, Text.substr(Start, Pos - Start), 0,
                     0, Line, colOf(Start)});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      // Leading decimal: either a plain number or the size of a based
      // literal.
      size_t Start = Pos;
      while (Pos < N && (std::isdigit(static_cast<unsigned char>(
                             Text[Pos])) ||
                         Text[Pos] == '_'))
        ++Pos;
      uint64_t Lead;
      if (!decodeDigits(Text.substr(Start, Pos - Start), 10, Lead))
        return failAt(Start, "bad decimal literal");
      size_t Mark = Pos;
      while (Mark < N &&
             std::isspace(static_cast<unsigned char>(Text[Mark])) &&
             Text[Mark] != '\n')
        ++Mark;
      if (Mark < N && Text[Mark] == '\'') {
        Pos = Mark + 1;
        if (Pos >= N)
          return failAt(Mark, "truncated based literal");
        char BaseChar =
            static_cast<char>(std::tolower(Text[Pos]));
        int Base = BaseChar == 'b'   ? 2
                   : BaseChar == 'o' ? 8
                   : BaseChar == 'd' ? 10
                   : BaseChar == 'h' ? 16
                                     : 0;
        if (Base == 0)
          return failAt(Pos, "unknown literal base");
        ++Pos;
        while (Pos < N &&
               std::isspace(static_cast<unsigned char>(Text[Pos])) &&
               Text[Pos] != '\n')
          ++Pos;
        size_t DigStart = Pos;
        while (Pos < N && (isIdentChar(Text[Pos])))
          ++Pos;
        uint64_t Value;
        if (DigStart == Pos ||
            !decodeDigits(Text.substr(DigStart, Pos - DigStart), Base,
                          Value))
          return failAt(DigStart, "bad digits in based literal");
        if (Lead == 0 || Lead > 64)
          return failAt(Start, "literal width must be in [1, 64]");
        Token T;
        T.Kind = TokKind::Number;
        T.Text = Text.substr(Start, Pos - Start);
        T.Value = Value;
        T.Width = static_cast<uint16_t>(Lead);
        T.Line = Line;
        T.Col = colOf(Start);
        Out.push_back(T);
      } else {
        Token T;
        T.Kind = TokKind::Number;
        T.Text = Text.substr(Start, Pos - Start);
        T.Value = Lead;
        T.Width = 0; // Unsized.
        T.Line = Line;
        T.Col = colOf(Start);
        Out.push_back(T);
      }
      continue;
    }
    // Multi-character operators first.
    static const char *Multi[] = {"<=", ">=", "==", "!=", "<<", ">>",
                                  "&&", "||"};
    bool Matched = false;
    for (const char *Op : Multi) {
      size_t Len = 2;
      if (Pos + Len <= N && Text.compare(Pos, Len, Op) == 0) {
        Out.push_back({TokKind::Punct, Op, 0, 0, Line, colOf(Pos)});
        Pos += Len;
        Matched = true;
        break;
      }
    }
    if (Matched)
      continue;
    static const std::string Single = "()[]{},;.:=&|^~?<>!@#+-*";
    if (Single.find(C) != std::string::npos) {
      Out.push_back(
          {TokKind::Punct, std::string(1, C), 0, 0, Line, colOf(Pos)});
      ++Pos;
      continue;
    }
    return failAt(Pos, std::string("unexpected character '") + C + "'");
  }
  Out.push_back({TokKind::End, "", 0, 0, Line, colOf(Pos)});
  return Out;
}
