//===- parse/Verilog.cpp - Structural Verilog export ----------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "parse/Verilog.h"

#include <cassert>
#include <cctype>
#include <map>
#include <set>
#include <sstream>

using namespace wiresort;
using namespace wiresort::ir;
using namespace wiresort::parse;

namespace {

/// True when \p Name is a plain Verilog identifier needing no escape.
bool isPlainIdent(const std::string &Name) {
  if (Name.empty() ||
      !(std::isalpha(static_cast<unsigned char>(Name[0])) ||
        Name[0] == '_'))
    return false;
  for (char C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_' &&
        C != '$')
      return false;
  return true;
}

/// Renders \p Name as a (possibly escaped) identifier. Escaped
/// identifiers carry their terminating space per the standard.
std::string ident(const std::string &Name) {
  if (isPlainIdent(Name))
    return Name;
  return "\\" + Name + " ";
}

void writeLutExpr(std::ostringstream &OS, const Module &M, const Net &N) {
  // Sum of the '1'-output rows; each row is a product of (possibly
  // complemented) inputs.
  bool AnyTerm = false;
  std::ostringstream Terms;
  for (const std::string &Row : N.Cover) {
    if (Row.back() != '1')
      continue;
    if (AnyTerm)
      Terms << " | ";
    AnyTerm = true;
    if (N.Inputs.empty()) {
      Terms << "1'b1";
      continue;
    }
    bool AnyFactor = false;
    Terms << '(';
    for (size_t I = 0; I + 1 < Row.size(); ++I) {
      if (Row[I] == '-')
        continue;
      if (AnyFactor)
        Terms << " & ";
      AnyFactor = true;
      if (Row[I] == '0')
        Terms << '~';
      Terms << ident(M.wire(N.Inputs[I]).Name);
    }
    if (!AnyFactor)
      Terms << "1'b1";
    Terms << ')';
  }
  OS << (AnyTerm ? Terms.str() : std::string("1'b0"));
}

void writeModule(std::ostringstream &OS, const Design &D, const Module &M) {
  assert(M.Memories.empty() &&
         "writeVerilog requires lowered modules (no memories)");
  OS << "module " << ident(M.Name) << " (\n  input wire clk";
  for (WireId In : M.Inputs)
    OS << ",\n  input wire " << ident(M.wire(In).Name);
  for (WireId Out : M.Outputs)
    OS << ",\n  output wire " << ident(M.wire(Out).Name);
  OS << "\n);\n";

  // Register initial values live on the Register records.
  std::map<WireId, uint64_t> RegInit;
  for (const Register &R : M.Registers)
    RegInit[R.Q] = R.Init;

  // Internal wire declarations (ports are declared above).
  for (WireId W = 0; W != M.numWires(); ++W) {
    const Wire &Wr = M.wire(W);
    assert(Wr.Width == 1 && "writeVerilog requires bit-level modules");
    switch (Wr.Kind) {
    case WireKind::Basic:
    case WireKind::Const:
      OS << "  wire " << ident(Wr.Name) << ";\n";
      break;
    case WireKind::Reg:
      OS << "  reg " << ident(Wr.Name) << " = 1'b"
         << (RegInit.count(W) ? RegInit[W] & 1 : 0) << ";\n";
      break;
    case WireKind::Input:
    case WireKind::Output:
      break;
    }
  }
  for (WireId W = 0; W != M.numWires(); ++W)
    if (M.wire(W).Kind == WireKind::Const)
      OS << "  assign " << ident(M.wire(W).Name) << " = 1'b"
         << (M.wire(W).ConstValue & 1) << ";\n";

  auto in = [&](const Net &N, size_t I) {
    return ident(M.wire(N.Inputs[I]).Name);
  };
  for (const Net &N : M.Nets) {
    OS << "  assign " << ident(M.wire(N.Output).Name) << " = ";
    switch (N.Operation) {
    case Op::And:
      OS << in(N, 0) << "& " << in(N, 1);
      break;
    case Op::Or:
      OS << in(N, 0) << "| " << in(N, 1);
      break;
    case Op::Xor:
      OS << in(N, 0) << "^ " << in(N, 1);
      break;
    case Op::Nand:
      OS << "~(" << in(N, 0) << "& " << in(N, 1) << ")";
      break;
    case Op::Nor:
      OS << "~(" << in(N, 0) << "| " << in(N, 1) << ")";
      break;
    case Op::Xnor:
      OS << "~(" << in(N, 0) << "^ " << in(N, 1) << ")";
      break;
    case Op::Not:
      OS << "~" << in(N, 0);
      break;
    case Op::Buf:
      OS << in(N, 0);
      break;
    case Op::Mux:
      OS << in(N, 0) << "? " << in(N, 1) << ": " << in(N, 2);
      break;
    case Op::Lut:
      writeLutExpr(OS, M, N);
      break;
    default:
      assert(false && "writeVerilog requires primitive operations");
    }
    OS << ";\n";
  }

  if (!M.Registers.empty()) {
    OS << "  always @(posedge clk) begin\n";
    for (const Register &R : M.Registers)
      OS << "    " << ident(M.wire(R.Q).Name) << "<= "
         << ident(M.wire(R.D).Name) << ";\n";
    OS << "  end\n";
  }

  for (size_t I = 0; I != M.Instances.size(); ++I) {
    const SubInstance &Inst = M.Instances[I];
    const Module &Def = D.module(Inst.Def);
    OS << "  " << ident(Def.Name) << " "
       << ident("u$" + std::to_string(I)) << " (\n"
       << "    .clk(clk)";
    for (const auto &[DefPort, Local] : Inst.Bindings)
      OS << ",\n    ." << ident(Def.wire(DefPort).Name) << "("
         << ident(M.wire(Local).Name) << ")";
    OS << "\n  );\n";
  }
  OS << "endmodule\n\n";
}

} // namespace

std::string parse::writeVerilog(const Design &D, ModuleId Top) {
  // Top first, then every reachable definition once.
  std::vector<ModuleId> Order{Top};
  std::set<ModuleId> Seen{Top};
  for (size_t I = 0; I != Order.size(); ++I)
    for (const SubInstance &Inst : D.module(Order[I]).Instances)
      if (Seen.insert(Inst.Def).second)
        Order.push_back(Inst.Def);

  std::ostringstream OS;
  OS << "// Generated by wiresort (structural Verilog export).\n\n";
  for (ModuleId Id : Order)
    writeModule(OS, D, D.module(Id));
  return OS.str();
}
