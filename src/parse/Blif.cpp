//===- parse/Blif.cpp - BLIF import/export --------------------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "parse/Blif.h"

#include <cassert>
#include <map>
#include <set>
#include <sstream>
#include <vector>

using namespace wiresort;
using namespace wiresort::ir;
using namespace wiresort::parse;

namespace {

/// Splits a line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Tokens;
  std::istringstream SS(Line);
  std::string Tok;
  while (SS >> Tok)
    Tokens.push_back(Tok);
  return Tokens;
}

/// One .model under construction; wires are created on demand by name.
struct ModelBuilder {
  Module M;
  std::map<std::string, WireId> ByName;
  std::set<WireId> Driven;
  /// Unresolved .subckt records: (definition name, formal=actual pairs).
  std::vector<std::pair<std::string,
                        std::vector<std::pair<std::string, std::string>>>>
      Subckts;

  WireId wireFor(const std::string &Name) {
    auto It = ByName.find(Name);
    if (It != ByName.end())
      return It->second;
    WireId W = M.addWire(Name, WireKind::Basic, 1);
    ByName[Name] = W;
    return W;
  }
};

} // namespace

std::optional<BlifFile> parse::parseBlif(const std::string &Text,
                                         std::string &Error) {
  std::vector<ModelBuilder> Models;
  ModelBuilder *Cur = nullptr;
  // Pending .names cover collection.
  Net *PendingLut = nullptr;

  auto fail = [&](size_t LineNo, const std::string &Msg) {
    Error = "blif line " + std::to_string(LineNo) + ": " + Msg;
    return std::nullopt;
  };

  std::istringstream Stream(Text);
  std::string Raw;
  size_t LineNo = 0;
  std::string Line;
  while (std::getline(Stream, Raw)) {
    ++LineNo;
    // Strip comments; honor trailing-backslash continuations.
    size_t Hash = Raw.find('#');
    if (Hash != std::string::npos)
      Raw.resize(Hash);
    Line += Raw;
    if (!Line.empty() && Line.back() == '\\') {
      Line.pop_back();
      continue;
    }
    std::vector<std::string> Tok = tokenize(Line);
    Line.clear();
    if (Tok.empty())
      continue;

    const std::string &Cmd = Tok[0];
    if (Cmd == ".model") {
      if (Tok.size() != 2)
        return fail(LineNo, ".model expects a name");
      Models.emplace_back();
      Cur = &Models.back();
      Cur->M.Name = Tok[1];
      PendingLut = nullptr;
      continue;
    }
    if (!Cur)
      return fail(LineNo, "directive before .model");

    if (Cmd == ".inputs") {
      for (size_t I = 1; I != Tok.size(); ++I) {
        if (Cur->ByName.count(Tok[I]))
          return fail(LineNo, "duplicate signal '" + Tok[I] + "'");
        WireId W = Cur->M.addInput(Tok[I], 1);
        Cur->ByName[Tok[I]] = W;
      }
      PendingLut = nullptr;
    } else if (Cmd == ".outputs") {
      for (size_t I = 1; I != Tok.size(); ++I) {
        if (Cur->ByName.count(Tok[I]))
          return fail(LineNo, "duplicate signal '" + Tok[I] + "'");
        WireId W = Cur->M.addOutput(Tok[I], 1);
        Cur->ByName[Tok[I]] = W;
      }
      PendingLut = nullptr;
    } else if (Cmd == ".names") {
      if (Tok.size() < 2)
        return fail(LineNo, ".names expects at least an output");
      std::vector<WireId> Ins;
      for (size_t I = 1; I + 1 < Tok.size(); ++I)
        Ins.push_back(Cur->wireFor(Tok[I]));
      WireId Out = Cur->wireFor(Tok.back());
      if (Cur->Driven.count(Out))
        return fail(LineNo, "signal '" + Tok.back() + "' driven twice");
      Cur->Driven.insert(Out);
      NetId Id = Cur->M.addNet(Op::Lut, std::move(Ins), Out);
      PendingLut = &Cur->M.Nets[Id];
    } else if (Cmd == ".latch") {
      if (Tok.size() < 3)
        return fail(LineNo, ".latch expects input and output");
      WireId D = Cur->wireFor(Tok[1]);
      WireId Q = Cur->wireFor(Tok[2]);
      if (Cur->Driven.count(Q))
        return fail(LineNo, "signal '" + Tok[2] + "' driven twice");
      Cur->Driven.insert(Q);
      if (Cur->M.Wires[Q].Kind == WireKind::Input)
        return fail(LineNo, "latch drives input '" + Tok[2] + "'");
      if (Cur->M.Wires[Q].Kind == WireKind::Output) {
        // Latched output port: latch into an internal reg wire and
        // buffer it out to the port.
        WireId Inner =
            Cur->M.addWire(Tok[2] + "$latch", WireKind::Reg, 1);
        Cur->M.addNet(Op::Buf, {Inner}, Q);
        Q = Inner;
      } else {
        Cur->M.Wires[Q].Kind = WireKind::Reg;
      }
      uint64_t Init = 0;
      // Optional trailing init value (possibly after "<type> <control>").
      const std::string &Last = Tok.back();
      if (Tok.size() > 3 && (Last == "0" || Last == "1"))
        Init = Last == "1" ? 1 : 0;
      Cur->M.addRegister(D, Q, Init);
      PendingLut = nullptr;
    } else if (Cmd == ".subckt") {
      if (Tok.size() < 2)
        return fail(LineNo, ".subckt expects a model name");
      std::vector<std::pair<std::string, std::string>> Pairs;
      for (size_t I = 2; I != Tok.size(); ++I) {
        size_t EqPos = Tok[I].find('=');
        if (EqPos == std::string::npos)
          return fail(LineNo, "malformed formal=actual '" + Tok[I] + "'");
        Pairs.emplace_back(Tok[I].substr(0, EqPos), Tok[I].substr(EqPos + 1));
      }
      Cur->Subckts.emplace_back(Tok[1], std::move(Pairs));
      PendingLut = nullptr;
    } else if (Cmd == ".end") {
      PendingLut = nullptr;
    } else if (Cmd[0] != '.') {
      // A cover row for the pending .names.
      if (!PendingLut)
        return fail(LineNo, "cover row outside .names");
      std::string Plane = Tok.size() == 2 ? Tok[0] : "";
      std::string Output = Tok.size() == 2 ? Tok[1] : Tok[0];
      if (Output != "0" && Output != "1")
        return fail(LineNo, "cover output must be 0 or 1");
      if (Plane.size() != PendingLut->Inputs.size())
        return fail(LineNo, "cover row arity mismatch");
      PendingLut->Cover.push_back(Plane + Output);
    } else {
      // Unsupported directives (.clock, .exdc, ...) are rejected loudly:
      // silently skipping them could change semantics.
      return fail(LineNo, "unsupported directive '" + Cmd + "'");
    }
  }

  if (Models.empty()) {
    Error = "blif: no .model found";
    return std::nullopt;
  }

  // Second pass: resolve subcircuit references across models.
  BlifFile Result;
  std::map<std::string, ModuleId> IdByName;
  for (ModelBuilder &MB : Models) {
    ModuleId Id = Result.Design.addModule(Module(MB.M.Name));
    if (IdByName.count(MB.M.Name)) {
      Error = "blif: duplicate model '" + MB.M.Name + "'";
      return std::nullopt;
    }
    IdByName[MB.M.Name] = Id;
  }
  for (size_t I = 0; I != Models.size(); ++I) {
    ModelBuilder &MB = Models[I];
    for (const auto &[DefName, Pairs] : MB.Subckts) {
      auto It = IdByName.find(DefName);
      if (It == IdByName.end()) {
        Error = "blif: .subckt references unknown model '" + DefName + "'";
        return std::nullopt;
      }
      // Formal names are resolved against the referenced model's ports.
      SubInstance Inst;
      Inst.Def = It->second;
      Inst.Name = DefName + "$" + std::to_string(MB.M.Instances.size());
      const Module &Def = Models[It->second].M;
      for (const auto &[Formal, Actual] : Pairs) {
        WireId Port = Def.findPort(Formal);
        if (Port == InvalidId) {
          Error = "blif: model '" + DefName + "' has no port '" + Formal +
                  "'";
          return std::nullopt;
        }
        WireId Local = MB.wireFor(Actual);
        if (Def.isOutput(Port)) {
          if (MB.Driven.count(Local)) {
            Error = "blif: signal '" + Actual + "' driven twice";
            return std::nullopt;
          }
          MB.Driven.insert(Local);
        }
        Inst.Bindings.emplace_back(Port, Local);
      }
      MB.M.addInstance(std::move(Inst));
    }
    Result.Design.module(IdByName[MB.M.Name]) = std::move(MB.M);
  }
  Result.Top = 0; // Models are added in file order; the first is top.

  if (auto Err = Result.Design.validate()) {
    Error = "blif: " + *Err;
    return std::nullopt;
  }
  return Result;
}

namespace {

void writeModel(std::ostringstream &OS, const Design &D, const Module &M) {
  OS << ".model " << M.Name << "\n.inputs";
  for (WireId In : M.Inputs)
    OS << ' ' << M.wire(In).Name;
  OS << "\n.outputs";
  for (WireId Out : M.Outputs)
    OS << ' ' << M.wire(Out).Name;
  OS << '\n';

  // Constants become zero-input covers.
  for (WireId W = 0; W != M.numWires(); ++W) {
    const Wire &Wr = M.wire(W);
    assert(Wr.Width == 1 && "writeBlif requires a bit-level module");
    if (Wr.Kind != WireKind::Const)
      continue;
    OS << ".names " << Wr.Name << '\n';
    if (Wr.ConstValue & 1)
      OS << "1\n";
  }

  auto name = [&](WireId W) -> const std::string & {
    return M.wire(W).Name;
  };
  for (const Net &N : M.Nets) {
    if (N.Operation == Op::Lut) {
      OS << ".names";
      for (WireId In : N.Inputs)
        OS << ' ' << name(In);
      OS << ' ' << name(N.Output) << '\n';
      for (const std::string &Row : N.Cover) {
        if (Row.size() == 1)
          OS << Row << '\n';
        else
          OS << Row.substr(0, Row.size() - 1) << ' ' << Row.back() << '\n';
      }
      continue;
    }
    OS << ".names";
    for (WireId In : N.Inputs)
      OS << ' ' << name(In);
    OS << ' ' << name(N.Output) << '\n';
    switch (N.Operation) {
    case Op::And:
      OS << "11 1\n";
      break;
    case Op::Or:
      OS << "1- 1\n-1 1\n";
      break;
    case Op::Xor:
      OS << "10 1\n01 1\n";
      break;
    case Op::Nand:
      OS << "0- 1\n-0 1\n";
      break;
    case Op::Nor:
      OS << "00 1\n";
      break;
    case Op::Xnor:
      OS << "11 1\n00 1\n";
      break;
    case Op::Not:
      OS << "0 1\n";
      break;
    case Op::Buf:
      OS << "1 1\n";
      break;
    case Op::Mux:
      OS << "11- 1\n0-1 1\n";
      break;
    default:
      assert(false && "writeBlif requires primitive operations");
    }
  }
  for (const Register &R : M.Registers)
    OS << ".latch " << name(R.D) << ' ' << name(R.Q) << " re clk "
       << (R.Init & 1) << '\n';
  for (const SubInstance &Inst : M.Instances) {
    const Module &Def = D.module(Inst.Def);
    OS << ".subckt " << Def.Name;
    for (const auto &[DefPort, Local] : Inst.Bindings)
      OS << ' ' << Def.wire(DefPort).Name << '=' << name(Local);
    OS << '\n';
  }
  OS << ".end\n";
}

} // namespace

std::string parse::writeBlif(const Design &D, ModuleId Top) {
  // Emit top first, then every reachable definition once.
  std::vector<ModuleId> Order{Top};
  std::set<ModuleId> Seen{Top};
  for (size_t I = 0; I != Order.size(); ++I)
    for (const SubInstance &Inst : D.module(Order[I]).Instances)
      if (Seen.insert(Inst.Def).second)
        Order.push_back(Inst.Def);

  std::ostringstream OS;
  for (ModuleId Id : Order)
    writeModel(OS, D, D.module(Id));
  return OS.str();
}
