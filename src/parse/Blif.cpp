//===- parse/Blif.cpp - BLIF import/export --------------------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "parse/Blif.h"

#include "support/FailPoint.h"
#include "support/Trace.h"
#include "support/Wire.h"

#include <cassert>
#include <cctype>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <string_view>
#include <vector>

using namespace wiresort;
using namespace wiresort::ir;
using namespace wiresort::parse;

namespace {

/// One whitespace-separated token with its source position.
struct BlifTok {
  std::string Text;
  size_t Line = 0;
  size_t Col = 0; // 1-based column of the token's first character.
};

/// Appends \p Line's tokens (with positions) to \p Out.
void tokenizeInto(const std::string &Line, size_t LineNo,
                  std::vector<BlifTok> &Out) {
  size_t Pos = 0;
  while (Pos < Line.size()) {
    while (Pos < Line.size() &&
           std::isspace(static_cast<unsigned char>(Line[Pos])))
      ++Pos;
    if (Pos >= Line.size())
      break;
    size_t Start = Pos;
    while (Pos < Line.size() &&
           !std::isspace(static_cast<unsigned char>(Line[Pos])))
      ++Pos;
    Out.push_back({Line.substr(Start, Pos - Start), LineNo, Start + 1});
  }
}

/// One .subckt awaiting cross-model resolution.
struct SubcktRec {
  std::string DefName;
  std::vector<std::pair<std::string, std::string>> Pairs;
  size_t Line = 0;
  size_t Col = 0;
};

/// One .model under construction; wires are created on demand by name.
struct ModelBuilder {
  Module M;
  std::map<std::string, WireId> ByName;
  std::set<WireId> Driven;
  std::vector<SubcktRec> Subckts;
  /// Position of the .model directive (for link-time diagnostics).
  size_t Line = 0;
  size_t Col = 0;

  WireId wireFor(const std::string &Name) {
    auto It = ByName.find(Name);
    if (It != ByName.end())
      return It->second;
    WireId W = M.addWire(Name, WireKind::Basic, 1);
    ByName[Name] = W;
    return W;
  }
};

/// Pass 1 as a resumable line consumer, so the plain path (one machine
/// over the whole file) and the chunk-cache path (one machine per
/// uncached `.model` chunk) run exactly the same transitions. Chunk
/// boundaries only ever fall on non-continued `.model` lines, where the
/// machine is in its initial inter-model state — which is what makes a
/// fresh Pass1 per chunk equivalent to the single pass.
struct Pass1 {
  const std::string &FileName;
  std::vector<ModelBuilder> Models;
  ModelBuilder *Cur = nullptr;
  // Pending .names cover collection.
  Net *PendingLut = nullptr;
  std::vector<BlifTok> Tok;
  bool Continuing = false;
  std::optional<support::Diag> Err;

  explicit Pass1(const std::string &FileName) : FileName(FileName) {}

  bool fail(const BlifTok &T, const std::string &Msg) {
    Err = support::Diag(support::DiagCode::WS201_BLIF_SYNTAX, Msg)
              .withLoc(support::SrcLoc{FileName, T.Line, T.Col});
    return false;
  }

  /// Consumes one raw input line; false means Err is set.
  bool line(std::string Raw, size_t LineNo) {
    // Strip comments; honor trailing-backslash continuations.
    size_t Hash = Raw.find('#');
    if (Hash != std::string::npos)
      Raw.resize(Hash);
    bool Continue = !Raw.empty() && Raw.back() == '\\';
    if (Continue)
      Raw.pop_back();
    if (!Continuing)
      Tok.clear();
    tokenizeInto(Raw, LineNo, Tok);
    Continuing = Continue;
    if (Continuing)
      return true;
    if (Tok.empty())
      return true;

    const std::string &Cmd = Tok[0].Text;
    if (Cmd == ".model") {
      if (Tok.size() != 2)
        return fail(Tok[0], ".model expects a name");
      Models.emplace_back();
      Cur = &Models.back();
      Cur->M.Name = Tok[1].Text;
      Cur->Line = Tok[0].Line;
      Cur->Col = Tok[0].Col;
      PendingLut = nullptr;
      return true;
    }
    if (!Cur)
      return fail(Tok[0], "directive before .model");

    if (Cmd == ".inputs") {
      for (size_t I = 1; I != Tok.size(); ++I) {
        if (Cur->ByName.count(Tok[I].Text))
          return fail(Tok[I], "duplicate signal '" + Tok[I].Text + "'");
        WireId W = Cur->M.addInput(Tok[I].Text, 1);
        Cur->ByName[Tok[I].Text] = W;
      }
      PendingLut = nullptr;
    } else if (Cmd == ".outputs") {
      for (size_t I = 1; I != Tok.size(); ++I) {
        if (Cur->ByName.count(Tok[I].Text))
          return fail(Tok[I], "duplicate signal '" + Tok[I].Text + "'");
        WireId W = Cur->M.addOutput(Tok[I].Text, 1);
        Cur->ByName[Tok[I].Text] = W;
      }
      PendingLut = nullptr;
    } else if (Cmd == ".names") {
      if (Tok.size() < 2)
        return fail(Tok[0], ".names expects at least an output");
      std::vector<WireId> Ins;
      for (size_t I = 1; I + 1 < Tok.size(); ++I)
        Ins.push_back(Cur->wireFor(Tok[I].Text));
      WireId Out = Cur->wireFor(Tok.back().Text);
      if (Cur->Driven.count(Out))
        return fail(Tok.back(),
                    "signal '" + Tok.back().Text + "' driven twice");
      Cur->Driven.insert(Out);
      NetId Id = Cur->M.addNet(Op::Lut, std::move(Ins), Out);
      PendingLut = &Cur->M.Nets[Id];
    } else if (Cmd == ".latch") {
      if (Tok.size() < 3)
        return fail(Tok[0], ".latch expects input and output");
      WireId D = Cur->wireFor(Tok[1].Text);
      WireId Q = Cur->wireFor(Tok[2].Text);
      if (Cur->Driven.count(Q))
        return fail(Tok[2], "signal '" + Tok[2].Text + "' driven twice");
      Cur->Driven.insert(Q);
      if (Cur->M.Wires[Q].Kind == WireKind::Input)
        return fail(Tok[2], "latch drives input '" + Tok[2].Text + "'");
      if (Cur->M.Wires[Q].Kind == WireKind::Output) {
        // Latched output port: latch into an internal reg wire and
        // buffer it out to the port.
        WireId Inner =
            Cur->M.addWire(Tok[2].Text + "$latch", WireKind::Reg, 1);
        Cur->M.addNet(Op::Buf, {Inner}, Q);
        Q = Inner;
      } else {
        Cur->M.Wires[Q].Kind = WireKind::Reg;
      }
      uint64_t Init = 0;
      // Optional trailing init value (possibly after "<type> <control>").
      const std::string &Last = Tok.back().Text;
      if (Tok.size() > 3 && (Last == "0" || Last == "1"))
        Init = Last == "1" ? 1 : 0;
      Cur->M.addRegister(D, Q, Init);
      PendingLut = nullptr;
    } else if (Cmd == ".subckt") {
      if (Tok.size() < 2)
        return fail(Tok[0], ".subckt expects a model name");
      SubcktRec Rec;
      Rec.DefName = Tok[1].Text;
      Rec.Line = Tok[0].Line;
      Rec.Col = Tok[0].Col;
      for (size_t I = 2; I != Tok.size(); ++I) {
        size_t EqPos = Tok[I].Text.find('=');
        if (EqPos == std::string::npos)
          return fail(Tok[I],
                      "malformed formal=actual '" + Tok[I].Text + "'");
        Rec.Pairs.emplace_back(Tok[I].Text.substr(0, EqPos),
                               Tok[I].Text.substr(EqPos + 1));
      }
      Cur->Subckts.push_back(std::move(Rec));
      PendingLut = nullptr;
    } else if (Cmd == ".end") {
      PendingLut = nullptr;
    } else if (Cmd[0] != '.') {
      // A cover row for the pending .names.
      if (!PendingLut)
        return fail(Tok[0], "cover row outside .names");
      std::string Plane = Tok.size() == 2 ? Tok[0].Text : "";
      std::string Output = Tok.size() == 2 ? Tok[1].Text : Tok[0].Text;
      if (Output != "0" && Output != "1")
        return fail(Tok.back(), "cover output must be 0 or 1");
      if (Plane.size() != PendingLut->Inputs.size())
        return fail(Tok[0], "cover row arity mismatch");
      PendingLut->Cover.push_back(Plane + Output);
    } else {
      // Unsupported directives (.clock, .exdc, ...) are rejected loudly:
      // silently skipping them could change semantics.
      return fail(Tok[0], "unsupported directive '" + Cmd + "'");
    }
    return true;
  }
};

/// One cached `.model` chunk: its exact bytes (the key check — a hash
/// collision must cost a re-parse, never a wrong design), the line it
/// was first parsed at, and the pristine pass-1 result. Pass 2 mutates
/// working copies; entries stay untouched.
struct CacheEntry {
  std::string Bytes;
  size_t StartLine = 1;
  std::vector<ModelBuilder> Models;
};

/// One text region [Begin, End) starting at 1-based StartLine.
struct ChunkRef {
  size_t Begin = 0;
  size_t End = 0;
  size_t StartLine = 1;
};

/// Splits \p Text at non-continued `.model` lines. Mirrors exactly the
/// comment-strip and backslash-continuation rules of Pass1::line, so a
/// boundary never lands inside a logical line.
std::vector<ChunkRef> splitModelChunks(const std::string &Text) {
  std::vector<ChunkRef> Out;
  size_t Pos = 0, LineNo = 1;
  size_t CurBegin = 0, CurLine = 1;
  bool PrevContinues = false;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    size_t Stop = Eol == std::string::npos ? Text.size() : Eol;
    std::string_view Line(Text.data() + Pos, Stop - Pos);
    size_t Hash = Line.find('#');
    if (Hash != std::string_view::npos)
      Line = Line.substr(0, Hash);
    size_t P = 0;
    while (P < Line.size() &&
           std::isspace(static_cast<unsigned char>(Line[P])))
      ++P;
    bool IsModel =
        Line.size() - P >= 6 && Line.compare(P, 6, ".model") == 0 &&
        (P + 6 == Line.size() ||
         std::isspace(static_cast<unsigned char>(Line[P + 6])));
    if (IsModel && !PrevContinues && Pos != CurBegin) {
      Out.push_back({CurBegin, Pos, CurLine});
      CurBegin = Pos;
      CurLine = LineNo;
    }
    PrevContinues = !Line.empty() && Line.back() == '\\';
    Pos = Stop + 1;
    ++LineNo;
  }
  Out.push_back({CurBegin, Text.size(), CurLine});
  return Out;
}

} // namespace

struct parse::BlifParseCache::Impl {
  const size_t MaxEntries;
  mutable std::mutex Mu;
  /// Recency order, most recent at the front; the map holds each key's
  /// position so a hit's promotion and an eviction are both O(1) —
  /// overflowing the bound costs one cold parse of the *coldest* chunk,
  /// not (as the old wholesale flush did) of every chunk a long-lived
  /// daemon had warmed.
  std::list<uint64_t> Recency;
  struct Slot {
    std::shared_ptr<const CacheEntry> Entry;
    std::list<uint64_t>::iterator Pos;
  };
  std::map<uint64_t, Slot> ByKey;
  size_t HitCount = 0, MissCount = 0;

  explicit Impl(size_t MaxEntries) : MaxEntries(MaxEntries ? MaxEntries : 1) {}

  std::shared_ptr<const CacheEntry> find(uint64_t Key,
                                         std::string_view Bytes) {
    std::lock_guard<std::mutex> L(Mu);
    auto It = ByKey.find(Key);
    // Exact-bytes guard: a hash collision must cost a re-parse, never a
    // wrong design.
    if (It != ByKey.end() && It->second.Entry->Bytes == Bytes) {
      ++HitCount;
      Recency.splice(Recency.begin(), Recency, It->second.Pos);
      return It->second.Entry;
    }
    ++MissCount;
    return nullptr;
  }

  void insert(uint64_t Key, std::shared_ptr<const CacheEntry> E) {
    std::lock_guard<std::mutex> L(Mu);
    auto It = ByKey.find(Key);
    if (It != ByKey.end()) {
      // Collision overwrite (or a racing duplicate parse): keep one
      // slot, refresh the bytes, promote.
      It->second.Entry = std::move(E);
      Recency.splice(Recency.begin(), Recency, It->second.Pos);
      return;
    }
    while (ByKey.size() >= MaxEntries && !Recency.empty()) {
      ByKey.erase(Recency.back());
      Recency.pop_back();
    }
    Recency.push_front(Key);
    ByKey.emplace(Key, Slot{std::move(E), Recency.begin()});
  }
};

parse::BlifParseCache::BlifParseCache(size_t MaxEntries)
    : I(std::make_unique<Impl>(MaxEntries)) {}
parse::BlifParseCache::~BlifParseCache() = default;

size_t parse::BlifParseCache::size() const {
  std::lock_guard<std::mutex> L(I->Mu);
  return I->ByKey.size();
}
size_t parse::BlifParseCache::hits() const {
  std::lock_guard<std::mutex> L(I->Mu);
  return I->HitCount;
}
size_t parse::BlifParseCache::misses() const {
  std::lock_guard<std::mutex> L(I->Mu);
  return I->MissCount;
}

support::Expected<BlifFile> parse::parseBlif(const std::string &Text,
                                             const std::string &FileName,
                                             const support::Deadline *DL,
                                             BlifParseCache *Cache) {
  using support::Diag;
  using support::DiagCode;
  using support::SrcLoc;

  static trace::Counter &ParseBytes = trace::counter("parse.bytes");
  static trace::Counter &ChunkHits = trace::counter("parse.chunk.hits");
  static trace::Counter &ChunkMisses = trace::counter("parse.chunk.misses");
  ParseBytes.add(Text.size());
  trace::Span ParseSpan("parse.blif", "parse");
  ParseSpan.note("file", FileName)
      .note("bytes", static_cast<uint64_t>(Text.size()));

  auto failAt = [&](DiagCode Code, size_t Line, size_t Col,
                    const std::string &Msg) {
    return Diag(Code, Msg).withLoc(SrcLoc{FileName, Line, Col});
  };

  // Feeds Text[Begin, End) to \p P line by line, numbering from
  // StartLine. The deadline poll is once per line: a BLIF line is at
  // most a few hundred bytes of tokenizing, so this bounds a runaway
  // input without measurable cost (the parse.cancel failpoint simulates
  // expiry deterministically).
  auto eachLine = [&](size_t Begin, size_t End, size_t StartLine,
                      Pass1 &P) -> std::optional<Diag> {
    size_t Pos = Begin, LineNo = StartLine - 1;
    while (Pos < End) {
      size_t Eol = Text.find('\n', Pos);
      size_t Stop = Eol == std::string::npos || Eol >= End ? End : Eol;
      ++LineNo;
      if (DL && (DL->expired() || WS_FAILPOINT("parse.cancel")))
        return failAt(DiagCode::WS601_CANCELLED, LineNo, 0,
                      "parse cancelled by deadline");
      if (!P.line(Text.substr(Pos, Stop - Pos), LineNo))
        return *P.Err;
      Pos = Stop + 1;
    }
    return std::nullopt;
  };

  std::vector<ModelBuilder> Models;
  if (!Cache) {
    Pass1 P(FileName);
    if (auto E = eachLine(0, Text.size(), 1, P))
      return *E;
    Models = std::move(P.Models);
  } else {
    for (const ChunkRef &C : splitModelChunks(Text)) {
      std::string_view Bytes(Text.data() + C.Begin, C.End - C.Begin);
      uint64_t Key = support::wire::fnv1a(Bytes);
      if (auto E = Cache->I->find(Key, Bytes)) {
        // Replay: copy the pristine models, rebasing source lines to
        // where the chunk sits in *this* file so any later resolution
        // diagnostic is byte-identical to an uncached parse.
        ChunkHits.add(1);
        ptrdiff_t Delta = static_cast<ptrdiff_t>(C.StartLine) -
                          static_cast<ptrdiff_t>(E->StartLine);
        for (const ModelBuilder &MB : E->Models) {
          // Pass 2 only touches ByName/Driven/Subckts of models that
          // instantiate something; for leaf models the Module copy is
          // all a replay needs, and skipping the per-wire map/set
          // copies is most of the warm-path win.
          Models.emplace_back();
          ModelBuilder &W = Models.back();
          W.M = MB.M;
          W.Line = MB.Line + Delta;
          W.Col = MB.Col;
          if (!MB.Subckts.empty()) {
            W.ByName = MB.ByName;
            W.Driven = MB.Driven;
            W.Subckts = MB.Subckts;
            for (SubcktRec &Rec : W.Subckts)
              Rec.Line += Delta;
          }
        }
        continue;
      }
      ChunkMisses.add(1);
      Pass1 P(FileName);
      if (auto E = eachLine(C.Begin, C.End, C.StartLine, P))
        return *E;
      auto Entry = std::make_shared<CacheEntry>();
      Entry->Bytes = std::string(Bytes);
      Entry->StartLine = C.StartLine;
      Entry->Models = P.Models; // pristine copy, pre-pass-2
      Cache->I->insert(Key, std::move(Entry));
      for (ModelBuilder &MB : P.Models)
        Models.push_back(std::move(MB));
    }
  }

  if (Models.empty())
    return failAt(DiagCode::WS202_BLIF_STRUCTURE, 0, 0, "no .model found");

  // Second pass: resolve subcircuit references across models.
  BlifFile Result;
  std::map<std::string, ModuleId> IdByName;
  for (ModelBuilder &MB : Models) {
    ModuleId Id = Result.Design.addModule(Module(MB.M.Name));
    if (IdByName.count(MB.M.Name))
      return failAt(DiagCode::WS202_BLIF_STRUCTURE, MB.Line, MB.Col,
                    "duplicate model '" + MB.M.Name + "'");
    IdByName[MB.M.Name] = Id;
  }
  for (size_t I = 0; I != Models.size(); ++I) {
    ModelBuilder &MB = Models[I];
    for (const SubcktRec &Rec : MB.Subckts) {
      auto It = IdByName.find(Rec.DefName);
      if (It == IdByName.end())
        return failAt(DiagCode::WS202_BLIF_STRUCTURE, Rec.Line, Rec.Col,
                      ".subckt references unknown model '" + Rec.DefName +
                          "'");
      // Formal names are resolved against the referenced model's ports.
      SubInstance Inst;
      Inst.Def = It->second;
      Inst.Name = Rec.DefName + "$" + std::to_string(MB.M.Instances.size());
      const Module &Def = Models[It->second].M;
      for (const auto &[Formal, Actual] : Rec.Pairs) {
        WireId Port = Def.findPort(Formal);
        if (Port == InvalidId)
          return failAt(DiagCode::WS202_BLIF_STRUCTURE, Rec.Line, Rec.Col,
                        "model '" + Rec.DefName + "' has no port '" +
                            Formal + "'");
        WireId Local = MB.wireFor(Actual);
        if (Def.isOutput(Port)) {
          if (MB.Driven.count(Local))
            return failAt(DiagCode::WS202_BLIF_STRUCTURE, Rec.Line,
                          Rec.Col, "signal '" + Actual + "' driven twice");
          MB.Driven.insert(Local);
        }
        Inst.Bindings.emplace_back(Port, Local);
      }
      MB.M.addInstance(std::move(Inst));
    }
    Result.Design.module(IdByName[MB.M.Name]) = std::move(MB.M);
  }
  Result.Top = 0; // Models are added in file order; the first is top.

  if (auto Err = Result.Design.validate())
    return failAt(DiagCode::WS202_BLIF_STRUCTURE, 0, 0, *Err);
  return Result;
}

namespace {

void writeModel(std::ostringstream &OS, const Design &D, const Module &M) {
  OS << ".model " << M.Name << "\n.inputs";
  for (WireId In : M.Inputs)
    OS << ' ' << M.wire(In).Name;
  OS << "\n.outputs";
  for (WireId Out : M.Outputs)
    OS << ' ' << M.wire(Out).Name;
  OS << '\n';

  // Constants become zero-input covers.
  for (WireId W = 0; W != M.numWires(); ++W) {
    const Wire &Wr = M.wire(W);
    assert(Wr.Width == 1 && "writeBlif requires a bit-level module");
    if (Wr.Kind != WireKind::Const)
      continue;
    OS << ".names " << Wr.Name << '\n';
    if (Wr.ConstValue & 1)
      OS << "1\n";
  }

  auto name = [&](WireId W) -> const std::string & {
    return M.wire(W).Name;
  };
  for (const Net &N : M.Nets) {
    if (N.Operation == Op::Lut) {
      OS << ".names";
      for (WireId In : N.Inputs)
        OS << ' ' << name(In);
      OS << ' ' << name(N.Output) << '\n';
      for (const std::string &Row : N.Cover) {
        if (Row.size() == 1)
          OS << Row << '\n';
        else
          OS << Row.substr(0, Row.size() - 1) << ' ' << Row.back() << '\n';
      }
      continue;
    }
    OS << ".names";
    for (WireId In : N.Inputs)
      OS << ' ' << name(In);
    OS << ' ' << name(N.Output) << '\n';
    switch (N.Operation) {
    case Op::And:
      OS << "11 1\n";
      break;
    case Op::Or:
      OS << "1- 1\n-1 1\n";
      break;
    case Op::Xor:
      OS << "10 1\n01 1\n";
      break;
    case Op::Nand:
      OS << "0- 1\n-0 1\n";
      break;
    case Op::Nor:
      OS << "00 1\n";
      break;
    case Op::Xnor:
      OS << "11 1\n00 1\n";
      break;
    case Op::Not:
      OS << "0 1\n";
      break;
    case Op::Buf:
      OS << "1 1\n";
      break;
    case Op::Mux:
      OS << "11- 1\n0-1 1\n";
      break;
    default:
      assert(false && "writeBlif requires primitive operations");
    }
  }
  for (const Register &R : M.Registers)
    OS << ".latch " << name(R.D) << ' ' << name(R.Q) << " re clk "
       << (R.Init & 1) << '\n';
  for (const SubInstance &Inst : M.Instances) {
    const Module &Def = D.module(Inst.Def);
    OS << ".subckt " << Def.Name;
    for (const auto &[DefPort, Local] : Inst.Bindings)
      OS << ' ' << Def.wire(DefPort).Name << '=' << name(Local);
    OS << '\n';
  }
  OS << ".end\n";
}

} // namespace

std::string parse::writeBlif(const Design &D, ModuleId Top) {
  // Emit top first, then every reachable definition once.
  std::vector<ModuleId> Order{Top};
  std::set<ModuleId> Seen{Top};
  for (size_t I = 0; I != Order.size(); ++I)
    for (const SubInstance &Inst : D.module(Order[I]).Instances)
      if (Seen.insert(Inst.Def).second)
        Order.push_back(Inst.Def);

  std::ostringstream OS;
  for (ModuleId Id : Order)
    writeModel(OS, D, D.module(Id));
  return OS.str();
}
