//===- parse/Blif.cpp - BLIF import/export --------------------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "parse/Blif.h"

#include "support/FailPoint.h"
#include "support/Trace.h"

#include <cassert>
#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <vector>

using namespace wiresort;
using namespace wiresort::ir;
using namespace wiresort::parse;

namespace {

/// One whitespace-separated token with its source position.
struct BlifTok {
  std::string Text;
  size_t Line = 0;
  size_t Col = 0; // 1-based column of the token's first character.
};

/// Appends \p Line's tokens (with positions) to \p Out.
void tokenizeInto(const std::string &Line, size_t LineNo,
                  std::vector<BlifTok> &Out) {
  size_t Pos = 0;
  while (Pos < Line.size()) {
    while (Pos < Line.size() &&
           std::isspace(static_cast<unsigned char>(Line[Pos])))
      ++Pos;
    if (Pos >= Line.size())
      break;
    size_t Start = Pos;
    while (Pos < Line.size() &&
           !std::isspace(static_cast<unsigned char>(Line[Pos])))
      ++Pos;
    Out.push_back({Line.substr(Start, Pos - Start), LineNo, Start + 1});
  }
}

/// One .subckt awaiting cross-model resolution.
struct SubcktRec {
  std::string DefName;
  std::vector<std::pair<std::string, std::string>> Pairs;
  size_t Line = 0;
  size_t Col = 0;
};

/// One .model under construction; wires are created on demand by name.
struct ModelBuilder {
  Module M;
  std::map<std::string, WireId> ByName;
  std::set<WireId> Driven;
  std::vector<SubcktRec> Subckts;
  /// Position of the .model directive (for link-time diagnostics).
  size_t Line = 0;
  size_t Col = 0;

  WireId wireFor(const std::string &Name) {
    auto It = ByName.find(Name);
    if (It != ByName.end())
      return It->second;
    WireId W = M.addWire(Name, WireKind::Basic, 1);
    ByName[Name] = W;
    return W;
  }
};

} // namespace

support::Expected<BlifFile> parse::parseBlif(const std::string &Text,
                                             const std::string &FileName,
                                             const support::Deadline *DL) {
  using support::Diag;
  using support::DiagCode;
  using support::SrcLoc;

  static trace::Counter &ParseBytes = trace::counter("parse.bytes");
  ParseBytes.add(Text.size());
  trace::Span ParseSpan("parse.blif", "parse");
  ParseSpan.note("file", FileName)
      .note("bytes", static_cast<uint64_t>(Text.size()));

  std::vector<ModelBuilder> Models;
  ModelBuilder *Cur = nullptr;
  // Pending .names cover collection.
  Net *PendingLut = nullptr;

  auto failAt = [&](DiagCode Code, size_t Line, size_t Col,
                    const std::string &Msg) {
    return Diag(Code, Msg).withLoc(SrcLoc{FileName, Line, Col});
  };
  auto failTok = [&](const BlifTok &T, const std::string &Msg) {
    return failAt(DiagCode::WS201_BLIF_SYNTAX, T.Line, T.Col, Msg);
  };

  std::istringstream Stream(Text);
  std::string Raw;
  size_t LineNo = 0;
  std::vector<BlifTok> Tok;
  bool Continuing = false;
  while (std::getline(Stream, Raw)) {
    ++LineNo;
    // Deadline poll, once per line: a BLIF line is at most a few
    // hundred bytes of tokenizing, so this bounds a runaway input
    // without measurable cost (the parse.cancel failpoint simulates
    // expiry deterministically).
    if (DL && (DL->expired() || WS_FAILPOINT("parse.cancel")))
      return failAt(DiagCode::WS601_CANCELLED, LineNo, 0,
                    "parse cancelled by deadline");
    // Strip comments; honor trailing-backslash continuations.
    size_t Hash = Raw.find('#');
    if (Hash != std::string::npos)
      Raw.resize(Hash);
    bool Continue = !Raw.empty() && Raw.back() == '\\';
    if (Continue)
      Raw.pop_back();
    if (!Continuing)
      Tok.clear();
    tokenizeInto(Raw, LineNo, Tok);
    Continuing = Continue;
    if (Continuing)
      continue;
    if (Tok.empty())
      continue;

    const std::string &Cmd = Tok[0].Text;
    if (Cmd == ".model") {
      if (Tok.size() != 2)
        return failTok(Tok[0], ".model expects a name");
      Models.emplace_back();
      Cur = &Models.back();
      Cur->M.Name = Tok[1].Text;
      Cur->Line = Tok[0].Line;
      Cur->Col = Tok[0].Col;
      PendingLut = nullptr;
      continue;
    }
    if (!Cur)
      return failTok(Tok[0], "directive before .model");

    if (Cmd == ".inputs") {
      for (size_t I = 1; I != Tok.size(); ++I) {
        if (Cur->ByName.count(Tok[I].Text))
          return failTok(Tok[I],
                         "duplicate signal '" + Tok[I].Text + "'");
        WireId W = Cur->M.addInput(Tok[I].Text, 1);
        Cur->ByName[Tok[I].Text] = W;
      }
      PendingLut = nullptr;
    } else if (Cmd == ".outputs") {
      for (size_t I = 1; I != Tok.size(); ++I) {
        if (Cur->ByName.count(Tok[I].Text))
          return failTok(Tok[I],
                         "duplicate signal '" + Tok[I].Text + "'");
        WireId W = Cur->M.addOutput(Tok[I].Text, 1);
        Cur->ByName[Tok[I].Text] = W;
      }
      PendingLut = nullptr;
    } else if (Cmd == ".names") {
      if (Tok.size() < 2)
        return failTok(Tok[0], ".names expects at least an output");
      std::vector<WireId> Ins;
      for (size_t I = 1; I + 1 < Tok.size(); ++I)
        Ins.push_back(Cur->wireFor(Tok[I].Text));
      WireId Out = Cur->wireFor(Tok.back().Text);
      if (Cur->Driven.count(Out))
        return failTok(Tok.back(),
                       "signal '" + Tok.back().Text + "' driven twice");
      Cur->Driven.insert(Out);
      NetId Id = Cur->M.addNet(Op::Lut, std::move(Ins), Out);
      PendingLut = &Cur->M.Nets[Id];
    } else if (Cmd == ".latch") {
      if (Tok.size() < 3)
        return failTok(Tok[0], ".latch expects input and output");
      WireId D = Cur->wireFor(Tok[1].Text);
      WireId Q = Cur->wireFor(Tok[2].Text);
      if (Cur->Driven.count(Q))
        return failTok(Tok[2],
                       "signal '" + Tok[2].Text + "' driven twice");
      Cur->Driven.insert(Q);
      if (Cur->M.Wires[Q].Kind == WireKind::Input)
        return failTok(Tok[2], "latch drives input '" + Tok[2].Text + "'");
      if (Cur->M.Wires[Q].Kind == WireKind::Output) {
        // Latched output port: latch into an internal reg wire and
        // buffer it out to the port.
        WireId Inner =
            Cur->M.addWire(Tok[2].Text + "$latch", WireKind::Reg, 1);
        Cur->M.addNet(Op::Buf, {Inner}, Q);
        Q = Inner;
      } else {
        Cur->M.Wires[Q].Kind = WireKind::Reg;
      }
      uint64_t Init = 0;
      // Optional trailing init value (possibly after "<type> <control>").
      const std::string &Last = Tok.back().Text;
      if (Tok.size() > 3 && (Last == "0" || Last == "1"))
        Init = Last == "1" ? 1 : 0;
      Cur->M.addRegister(D, Q, Init);
      PendingLut = nullptr;
    } else if (Cmd == ".subckt") {
      if (Tok.size() < 2)
        return failTok(Tok[0], ".subckt expects a model name");
      SubcktRec Rec;
      Rec.DefName = Tok[1].Text;
      Rec.Line = Tok[0].Line;
      Rec.Col = Tok[0].Col;
      for (size_t I = 2; I != Tok.size(); ++I) {
        size_t EqPos = Tok[I].Text.find('=');
        if (EqPos == std::string::npos)
          return failTok(Tok[I],
                         "malformed formal=actual '" + Tok[I].Text + "'");
        Rec.Pairs.emplace_back(Tok[I].Text.substr(0, EqPos),
                               Tok[I].Text.substr(EqPos + 1));
      }
      Cur->Subckts.push_back(std::move(Rec));
      PendingLut = nullptr;
    } else if (Cmd == ".end") {
      PendingLut = nullptr;
    } else if (Cmd[0] != '.') {
      // A cover row for the pending .names.
      if (!PendingLut)
        return failTok(Tok[0], "cover row outside .names");
      std::string Plane = Tok.size() == 2 ? Tok[0].Text : "";
      std::string Output = Tok.size() == 2 ? Tok[1].Text : Tok[0].Text;
      if (Output != "0" && Output != "1")
        return failTok(Tok.back(), "cover output must be 0 or 1");
      if (Plane.size() != PendingLut->Inputs.size())
        return failTok(Tok[0], "cover row arity mismatch");
      PendingLut->Cover.push_back(Plane + Output);
    } else {
      // Unsupported directives (.clock, .exdc, ...) are rejected loudly:
      // silently skipping them could change semantics.
      return failTok(Tok[0], "unsupported directive '" + Cmd + "'");
    }
  }

  if (Models.empty())
    return failAt(DiagCode::WS202_BLIF_STRUCTURE, 0, 0, "no .model found");

  // Second pass: resolve subcircuit references across models.
  BlifFile Result;
  std::map<std::string, ModuleId> IdByName;
  for (ModelBuilder &MB : Models) {
    ModuleId Id = Result.Design.addModule(Module(MB.M.Name));
    if (IdByName.count(MB.M.Name))
      return failAt(DiagCode::WS202_BLIF_STRUCTURE, MB.Line, MB.Col,
                    "duplicate model '" + MB.M.Name + "'");
    IdByName[MB.M.Name] = Id;
  }
  for (size_t I = 0; I != Models.size(); ++I) {
    ModelBuilder &MB = Models[I];
    for (const SubcktRec &Rec : MB.Subckts) {
      auto It = IdByName.find(Rec.DefName);
      if (It == IdByName.end())
        return failAt(DiagCode::WS202_BLIF_STRUCTURE, Rec.Line, Rec.Col,
                      ".subckt references unknown model '" + Rec.DefName +
                          "'");
      // Formal names are resolved against the referenced model's ports.
      SubInstance Inst;
      Inst.Def = It->second;
      Inst.Name = Rec.DefName + "$" + std::to_string(MB.M.Instances.size());
      const Module &Def = Models[It->second].M;
      for (const auto &[Formal, Actual] : Rec.Pairs) {
        WireId Port = Def.findPort(Formal);
        if (Port == InvalidId)
          return failAt(DiagCode::WS202_BLIF_STRUCTURE, Rec.Line, Rec.Col,
                        "model '" + Rec.DefName + "' has no port '" +
                            Formal + "'");
        WireId Local = MB.wireFor(Actual);
        if (Def.isOutput(Port)) {
          if (MB.Driven.count(Local))
            return failAt(DiagCode::WS202_BLIF_STRUCTURE, Rec.Line,
                          Rec.Col, "signal '" + Actual + "' driven twice");
          MB.Driven.insert(Local);
        }
        Inst.Bindings.emplace_back(Port, Local);
      }
      MB.M.addInstance(std::move(Inst));
    }
    Result.Design.module(IdByName[MB.M.Name]) = std::move(MB.M);
  }
  Result.Top = 0; // Models are added in file order; the first is top.

  if (auto Err = Result.Design.validate())
    return failAt(DiagCode::WS202_BLIF_STRUCTURE, 0, 0, *Err);
  return Result;
}

namespace {

void writeModel(std::ostringstream &OS, const Design &D, const Module &M) {
  OS << ".model " << M.Name << "\n.inputs";
  for (WireId In : M.Inputs)
    OS << ' ' << M.wire(In).Name;
  OS << "\n.outputs";
  for (WireId Out : M.Outputs)
    OS << ' ' << M.wire(Out).Name;
  OS << '\n';

  // Constants become zero-input covers.
  for (WireId W = 0; W != M.numWires(); ++W) {
    const Wire &Wr = M.wire(W);
    assert(Wr.Width == 1 && "writeBlif requires a bit-level module");
    if (Wr.Kind != WireKind::Const)
      continue;
    OS << ".names " << Wr.Name << '\n';
    if (Wr.ConstValue & 1)
      OS << "1\n";
  }

  auto name = [&](WireId W) -> const std::string & {
    return M.wire(W).Name;
  };
  for (const Net &N : M.Nets) {
    if (N.Operation == Op::Lut) {
      OS << ".names";
      for (WireId In : N.Inputs)
        OS << ' ' << name(In);
      OS << ' ' << name(N.Output) << '\n';
      for (const std::string &Row : N.Cover) {
        if (Row.size() == 1)
          OS << Row << '\n';
        else
          OS << Row.substr(0, Row.size() - 1) << ' ' << Row.back() << '\n';
      }
      continue;
    }
    OS << ".names";
    for (WireId In : N.Inputs)
      OS << ' ' << name(In);
    OS << ' ' << name(N.Output) << '\n';
    switch (N.Operation) {
    case Op::And:
      OS << "11 1\n";
      break;
    case Op::Or:
      OS << "1- 1\n-1 1\n";
      break;
    case Op::Xor:
      OS << "10 1\n01 1\n";
      break;
    case Op::Nand:
      OS << "0- 1\n-0 1\n";
      break;
    case Op::Nor:
      OS << "00 1\n";
      break;
    case Op::Xnor:
      OS << "11 1\n00 1\n";
      break;
    case Op::Not:
      OS << "0 1\n";
      break;
    case Op::Buf:
      OS << "1 1\n";
      break;
    case Op::Mux:
      OS << "11- 1\n0-1 1\n";
      break;
    default:
      assert(false && "writeBlif requires primitive operations");
    }
  }
  for (const Register &R : M.Registers)
    OS << ".latch " << name(R.D) << ' ' << name(R.Q) << " re clk "
       << (R.Init & 1) << '\n';
  for (const SubInstance &Inst : M.Instances) {
    const Module &Def = D.module(Inst.Def);
    OS << ".subckt " << Def.Name;
    for (const auto &[DefPort, Local] : Inst.Bindings)
      OS << ' ' << Def.wire(DefPort).Name << '=' << name(Local);
    OS << '\n';
  }
  OS << ".end\n";
}

} // namespace

std::string parse::writeBlif(const Design &D, ModuleId Top) {
  // Emit top first, then every reachable definition once.
  std::vector<ModuleId> Order{Top};
  std::set<ModuleId> Seen{Top};
  for (size_t I = 0; I != Order.size(); ++I)
    for (const SubInstance &Inst : D.module(Order[I]).Instances)
      if (Seen.insert(Inst.Def).second)
        Order.push_back(Inst.Def);

  std::ostringstream OS;
  for (ModuleId Id : Order)
    writeModel(OS, D, D.module(Id));
  return OS.str();
}
