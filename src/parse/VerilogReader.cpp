//===- parse/VerilogReader.cpp - Structural Verilog import ----------------===//
//
// Part of the wiresort project.
//
// Two-phase elaboration: phase 1 collects every module's interface and
// declarations (so instantiations may reference modules defined later in
// the file); phase 2 elaborates assignments, always blocks, and
// instances into IR nets.
//
//===----------------------------------------------------------------------===//

#include "parse/VerilogReader.h"

#include "parse/VerilogLexer.h"
#include "support/FailPoint.h"
#include "support/Trace.h"

#include <cassert>
#include <map>
#include <set>

using namespace wiresort;
using namespace wiresort::ir;
using namespace wiresort::parse;

namespace {

/// An elaborated expression value.
struct Value {
  WireId Wire = InvalidId;
  uint16_t Width = 0;
  /// True for unsized literals, which adapt to their context width.
  bool Unsized = false;
};

/// Everything known about one module between the phases.
struct ModuleShell {
  Module M;
  /// Token span of the module body (after the header ';').
  size_t BodyBegin = 0, BodyEnd = 0;
  std::map<std::string, WireId> ByName;
  /// Declared 'reg' names (promoted to registers when assigned).
  std::set<std::string> Regs;
  /// Declared reg initializers.
  std::map<std::string, uint64_t> RegInit;
};

class Parser {
public:
  Parser(const std::vector<Token> &Toks, const std::string &FileName,
         const support::Deadline *DL = nullptr)
      : Toks(Toks), FileName(FileName), DL(DL) {}

  support::Expected<VerilogFile> run() {
    // ---- Phase 1: interfaces and declarations. ----
    while (at("module")) {
      if (cancelled())
        return takeDiags();
      if (!parseModuleShell())
        return takeDiags();
    }
    if (!atEnd()) {
      failB("expected 'module', got '" + cur().Text + "'");
      return takeDiags();
    }
    if (Shells.empty()) {
      failB("no modules found");
      return takeDiags();
    }

    for (size_t I = 0; I != Shells.size(); ++I)
      IdByName[Shells[I].M.Name] = static_cast<ModuleId>(I);

    // ---- Phase 2: bodies. ----
    for (ModuleShell &Shell : Shells) {
      if (cancelled())
        return takeDiags();
      if (!elaborateBody(Shell))
        return takeDiags();
    }

    VerilogFile Result;
    for (ModuleShell &Shell : Shells)
      Result.Design.addModule(std::move(Shell.M));
    Result.Top = 0;
    if (auto Err = Result.Design.validate()) {
      Diags.add(support::Diag(support::DiagCode::WS212_VERILOG_SYNTAX,
                              *Err)
                    .withLoc(support::SrcLoc{FileName, 0, 0}));
      return takeDiags();
    }
    return Result;
  }

private:
  // --- Token helpers -------------------------------------------------------

  const Token &cur() const { return Toks[Pos]; }
  bool atEnd() const { return cur().Kind == TokKind::End; }
  bool at(const std::string &Text) const {
    return cur().Kind != TokKind::Number && cur().Text == Text;
  }
  bool atPunct(const std::string &Text) const {
    return cur().Kind == TokKind::Punct && cur().Text == Text;
  }
  void advance() { ++Pos; }
  bool accept(const std::string &Text) {
    if (!at(Text))
      return false;
    advance();
    return true;
  }

  support::DiagList takeDiags() {
    assert(Diags.hasError() && "parser failed without a diagnostic");
    return std::move(Diags);
  }

  /// Deadline poll, between module shells and bodies — a module is the
  /// unit of parse work worth bounding. Fires on the parse.cancel
  /// failpoint too, which simulates expiry deterministically.
  bool cancelled() {
    if (!DL || (!DL->expired() && !WS_FAILPOINT("parse.cancel")))
      return false;
    if (Diags.empty())
      Diags.add(
          support::Diag(support::DiagCode::WS601_CANCELLED,
                        "parse cancelled by deadline")
              .withLoc(support::SrcLoc{FileName, cur().Line, cur().Col}));
    return true;
  }

  /// Records the first diagnostic at the current token (later failures
  /// are fallout from the first) and returns false.
  bool failAs(support::DiagCode Code, const std::string &Msg) {
    if (Diags.empty())
      Diags.add(support::Diag(Code, Msg).withLoc(
          support::SrcLoc{FileName, cur().Line, cur().Col}));
    return false;
  }
  bool failB(const std::string &Msg) {
    return failAs(support::DiagCode::WS212_VERILOG_SYNTAX, Msg);
  }
  /// A construct outside the supported subset (valid Verilog we reject).
  bool failU(const std::string &Msg) {
    return failAs(support::DiagCode::WS213_VERILOG_UNSUPPORTED, Msg);
  }

  bool expect(const std::string &Text) {
    if (accept(Text))
      return true;
    return failB("expected '" + Text + "', got '" + cur().Text + "'");
  }

  bool expectIdent(std::string &Out) {
    if (cur().Kind != TokKind::Ident)
      return failB("expected identifier, got '" + cur().Text + "'");
    Out = cur().Text;
    advance();
    return true;
  }

  // --- Phase 1 -------------------------------------------------------------

  /// Parses an optional "[hi:lo]" range; \returns width (1 if absent).
  bool parseRange(uint16_t &Width) {
    Width = 1;
    if (!atPunct("["))
      return true;
    advance();
    if (cur().Kind != TokKind::Number)
      return failB("expected range bound");
    uint64_t Hi = cur().Value;
    advance();
    if (!expect(":"))
      return false;
    if (cur().Kind != TokKind::Number)
      return failB("expected range bound");
    uint64_t Lo = cur().Value;
    advance();
    if (!expect("]"))
      return false;
    if (Lo != 0 || Hi > 63)
      return failU("only [N:0] ranges up to [63:0] are supported");
    Width = static_cast<uint16_t>(Hi + 1);
    return true;
  }

  enum class Dir { None, Input, Output };

  bool declareNet(ModuleShell &Shell, Dir Direction, bool IsReg,
                  uint16_t Width, const std::string &Name) {
    if (Shell.ByName.count(Name))
      return failB("duplicate declaration of '" + Name + "'");
    WireId W;
    switch (Direction) {
    case Dir::Input:
      W = Shell.M.addInput(Name, Width);
      break;
    case Dir::Output:
      W = Shell.M.addOutput(Name, Width);
      break;
    case Dir::None:
      W = Shell.M.addWire(Name, WireKind::Basic, Width);
      break;
    }
    Shell.ByName[Name] = W;
    if (IsReg)
      Shell.Regs.insert(Name);
    // Optional initializer: reg q = 1'b1;
    if (atPunct("=")) {
      advance();
      if (cur().Kind != TokKind::Number)
        return failB("reg initializer must be a literal");
      Shell.RegInit[Name] = cur().Value;
      advance();
    }
    return true;
  }

  /// Parses "input|output|wire|reg [range] name {, name}" after the
  /// direction keyword has been *identified* but not consumed.
  bool parseDecl(ModuleShell &Shell, bool InHeader) {
    Dir Direction = Dir::None;
    if (accept("input"))
      Direction = Dir::Input;
    else if (accept("output"))
      Direction = Dir::Output;
    bool IsReg = false;
    if (accept("reg"))
      IsReg = true;
    else
      accept("wire");
    uint16_t Width;
    if (!parseRange(Width))
      return false;
    while (true) {
      std::string Name;
      if (!expectIdent(Name))
        return false;
      if (!declareNet(Shell, Direction, IsReg, Width, Name))
        return false;
      if (InHeader) {
        // In an ANSI header the comma either continues this decl or
        // starts a new one; the caller handles that.
        return true;
      }
      if (!atPunct(","))
        break;
      advance();
    }
    return expect(";");
  }

  bool parseModuleShell() {
    if (!expect("module"))
      return false;
    ModuleShell Shell;
    if (!expectIdent(Shell.M.Name))
      return false;

    if (atPunct("(")) {
      advance();
      if (!atPunct(")")) {
        // ANSI declarations or a classic name list.
        bool Ansi = at("input") || at("output");
        if (Ansi) {
          while (true) {
            if (!at("input") && !at("output"))
              return failB("expected port direction");
            if (!parseDecl(Shell, /*InHeader=*/true))
              return false;
            // Additional names under the same decl arrive as plain
            // identifiers after commas; new directions restart.
            while (atPunct(",")) {
              advance();
              if (at("input") || at("output"))
                break;
              std::string Name;
              if (!expectIdent(Name))
                return false;
              // Inherit direction/width of the previous declaration.
              const Wire &Prev =
                  Shell.M.wire(Shell.M.numWires() - 1);
              Dir Direction = Prev.Kind == WireKind::Input
                                  ? Dir::Input
                                  : Dir::Output;
              if (!declareNet(Shell, Direction,
                              Shell.Regs.count(Prev.Name) != 0,
                              Prev.Width, Name))
                return false;
            }
            if (atPunct(")"))
              break;
          }
        } else {
          // Classic: just names; directions come from body decls. We
          // record the order and patch at body-decl time.
          while (true) {
            std::string Name;
            if (!expectIdent(Name))
              return false;
            ClassicPorts[Shell.M.Name].push_back(Name);
            if (!atPunct(","))
              break;
            advance();
          }
        }
      }
      if (!expect(")"))
        return false;
    }
    if (!expect(";"))
      return false;

    // Scan the body: consume declarations now, remember everything else
    // for phase 2 by token position.
    Shell.BodyBegin = Pos;
    size_t Depth = 0;
    while (!atEnd() && !(Depth == 0 && at("endmodule"))) {
      if (Depth == 0 && (at("input") || at("output") || at("wire") ||
                         at("reg"))) {
        // Splice declarations out by parsing them in place; phase 2
        // re-walks the body and skips them again, so leave markers by
        // re-scanning: simplest is to parse here and remember the span
        // to skip later. We record decl spans in DeclSpans.
        size_t Start = Pos;
        if (!parseDecl(Shell, /*InHeader=*/false))
          return false;
        DeclSpans[Shell.M.Name].emplace_back(Start, Pos);
        continue;
      }
      if (at("begin"))
        ++Depth;
      if (at("end") && Depth > 0)
        --Depth;
      advance();
    }
    Shell.BodyEnd = Pos;
    if (!expect("endmodule"))
      return false;
    Shells.push_back(std::move(Shell));
    return true;
  }

  // --- Phase 2 -------------------------------------------------------------

  WireId freshWire(ModuleShell &Shell, uint16_t Width) {
    return Shell.M.addWire("$t" + std::to_string(Temp++),
                           WireKind::Basic, Width);
  }

  Value constValue(ModuleShell &Shell, uint64_t V, uint16_t Width,
                   bool Unsized) {
    WireId W = Shell.M.addWire("$c" + std::to_string(Temp++),
                               WireKind::Const, Width, V);
    return Value{W, Width, Unsized};
  }

  /// Resizes \p V to \p Width (only legal for unsized constants).
  bool adapt(ModuleShell &Shell, Value &V, uint16_t Width) {
    if (V.Width == Width)
      return true;
    if (!V.Unsized)
      return failB("width mismatch in expression");
    uint64_t Raw = Shell.M.wire(V.Wire).ConstValue;
    if (Width < 64 && Raw >= (1ull << Width))
      return failB("literal does not fit its context width");
    V = constValue(Shell, Raw, Width, false);
    return true;
  }

  /// Unifies operand widths (constants adapt) and emits a net.
  bool emitBinary(ModuleShell &Shell, Op Operation, Value &A, Value &B,
                  Value &Out) {
    if (A.Width != B.Width) {
      if (A.Unsized && !B.Unsized) {
        if (!adapt(Shell, A, B.Width))
          return false;
      } else if (B.Unsized && !A.Unsized) {
        if (!adapt(Shell, B, A.Width))
          return false;
      } else {
        return failB("width mismatch in expression");
      }
    }
    uint16_t OutW =
        (Operation == Op::Eq || Operation == Op::Lt) ? 1 : A.Width;
    WireId W = freshWire(Shell, OutW);
    Shell.M.addNet(Operation, {A.Wire, B.Wire}, W);
    Out = Value{W, OutW, false};
    return true;
  }

  /// OR-reduces to one bit (for logical operators).
  Value toBool(ModuleShell &Shell, Value V) {
    if (V.Width == 1)
      return V;
    WireId W = freshWire(Shell, 1);
    Shell.M.addNet(Op::OrR, {V.Wire}, W);
    return Value{W, 1, false};
  }

  /// Constant shift via concat/select (no variable shifts in the
  /// structural subset).
  bool emitShift(ModuleShell &Shell, bool Left, Value A, uint64_t By,
                 Value &Out) {
    if (A.Unsized)
      return failU("shift of an unsized literal");
    uint16_t W = A.Width;
    if (By >= W) {
      Out = constValue(Shell, 0, W, false);
      return true;
    }
    if (By == 0) {
      Out = A;
      return true;
    }
    WireId Zeros = Shell.M.addWire("$z" + std::to_string(Temp++),
                                   WireKind::Const,
                                   static_cast<uint16_t>(By), 0);
    WireId Piece = freshWire(Shell, static_cast<uint16_t>(W - By));
    WireId Result = freshWire(Shell, W);
    if (Left) {
      Shell.M.addNet(Op::Select, {A.Wire}, Piece, /*Aux=*/0);
      Shell.M.addNet(Op::Concat, {Piece, Zeros}, Result);
    } else {
      Shell.M.addNet(Op::Select, {A.Wire}, Piece,
                     /*Aux=*/static_cast<uint32_t>(By));
      Shell.M.addNet(Op::Concat, {Zeros, Piece}, Result);
    }
    Out = Value{Result, W, false};
    return true;
  }

  // Expression grammar, lowest precedence first.
  bool parseExpr(ModuleShell &Shell, Value &Out) { // ?:
    Value Cond;
    if (!parseLogicalOr(Shell, Cond))
      return false;
    if (!atPunct("?")) {
      Out = Cond;
      return true;
    }
    advance();
    Value TrueV, FalseV;
    if (!parseExpr(Shell, TrueV))
      return false;
    if (!expect(":"))
      return false;
    if (!parseExpr(Shell, FalseV))
      return false;
    Cond = toBool(Shell, Cond);
    if (TrueV.Width != FalseV.Width) {
      if (TrueV.Unsized && !adapt(Shell, TrueV, FalseV.Width))
        return false;
      if (FalseV.Unsized && !adapt(Shell, FalseV, TrueV.Width))
        return false;
      if (TrueV.Width != FalseV.Width)
        return failB("mux arm width mismatch");
    }
    WireId W = freshWire(Shell, TrueV.Width);
    Shell.M.addNet(Op::Mux, {Cond.Wire, TrueV.Wire, FalseV.Wire}, W);
    Out = Value{W, TrueV.Width, false};
    return true;
  }

  bool parseLogicalOr(ModuleShell &Shell, Value &Out) {
    if (!parseLogicalAnd(Shell, Out))
      return false;
    while (atPunct("||")) {
      advance();
      Value Rhs;
      if (!parseLogicalAnd(Shell, Rhs))
        return false;
      Value A = toBool(Shell, Out), B = toBool(Shell, Rhs);
      if (!emitBinary(Shell, Op::Or, A, B, Out))
        return false;
    }
    return true;
  }

  bool parseLogicalAnd(ModuleShell &Shell, Value &Out) {
    if (!parseBitOr(Shell, Out))
      return false;
    while (atPunct("&&")) {
      advance();
      Value Rhs;
      if (!parseBitOr(Shell, Rhs))
        return false;
      Value A = toBool(Shell, Out), B = toBool(Shell, Rhs);
      if (!emitBinary(Shell, Op::And, A, B, Out))
        return false;
    }
    return true;
  }

  bool parseBitOr(ModuleShell &Shell, Value &Out) {
    if (!parseBitXor(Shell, Out))
      return false;
    while (atPunct("|")) {
      advance();
      Value Rhs;
      if (!parseBitXor(Shell, Rhs))
        return false;
      if (!emitBinary(Shell, Op::Or, Out, Rhs, Out))
        return false;
    }
    return true;
  }

  bool parseBitXor(ModuleShell &Shell, Value &Out) {
    if (!parseBitAnd(Shell, Out))
      return false;
    while (atPunct("^")) {
      advance();
      Value Rhs;
      if (!parseBitAnd(Shell, Rhs))
        return false;
      if (!emitBinary(Shell, Op::Xor, Out, Rhs, Out))
        return false;
    }
    return true;
  }

  bool parseBitAnd(ModuleShell &Shell, Value &Out) {
    if (!parseEquality(Shell, Out))
      return false;
    while (atPunct("&")) {
      advance();
      Value Rhs;
      if (!parseEquality(Shell, Rhs))
        return false;
      if (!emitBinary(Shell, Op::And, Out, Rhs, Out))
        return false;
    }
    return true;
  }

  bool parseEquality(ModuleShell &Shell, Value &Out) {
    if (!parseRelational(Shell, Out))
      return false;
    while (atPunct("==") || atPunct("!=")) {
      bool Negate = cur().Text == "!=";
      advance();
      Value Rhs;
      if (!parseRelational(Shell, Rhs))
        return false;
      if (!emitBinary(Shell, Op::Eq, Out, Rhs, Out))
        return false;
      if (Negate) {
        WireId W = freshWire(Shell, 1);
        Shell.M.addNet(Op::Not, {Out.Wire}, W);
        Out = Value{W, 1, false};
      }
    }
    return true;
  }

  bool parseRelational(ModuleShell &Shell, Value &Out) {
    if (!parseShift(Shell, Out))
      return false;
    while (atPunct("<") || atPunct(">") || atPunct("<=") ||
           atPunct(">=")) {
      std::string Op2 = cur().Text;
      advance();
      Value Rhs;
      if (!parseShift(Shell, Rhs))
        return false;
      // a > b == b < a; a >= b == !(a < b); a <= b == !(b < a).
      Value &L = (Op2 == "<" || Op2 == "<=") ? Out : Rhs;
      Value &R = (Op2 == "<" || Op2 == "<=") ? Rhs : Out;
      Value Lt;
      if (Op2 == "<" || Op2 == ">") {
        if (!emitBinary(Shell, Op::Lt, L, R, Lt))
          return false;
        Out = Lt;
      } else {
        if (!emitBinary(Shell, Op::Lt, R, L, Lt))
          return false;
        WireId W = freshWire(Shell, 1);
        Shell.M.addNet(Op::Not, {Lt.Wire}, W);
        Out = Value{W, 1, false};
      }
    }
    return true;
  }

  bool parseShift(ModuleShell &Shell, Value &Out) {
    if (!parseAdditive(Shell, Out))
      return false;
    while (atPunct("<<") || atPunct(">>")) {
      bool Left = cur().Text == "<<";
      advance();
      if (cur().Kind != TokKind::Number)
        return failU("only constant shift amounts are supported");
      uint64_t By = cur().Value;
      advance();
      if (!emitShift(Shell, Left, Out, By, Out))
        return false;
    }
    return true;
  }

  bool parseAdditive(ModuleShell &Shell, Value &Out) {
    if (!parseUnary(Shell, Out))
      return false;
    while (atPunct("+") || atPunct("-")) {
      Op Operation = cur().Text == "+" ? Op::Add : Op::Sub;
      advance();
      Value Rhs;
      if (!parseUnary(Shell, Rhs))
        return false;
      if (!emitBinary(Shell, Operation, Out, Rhs, Out))
        return false;
    }
    return true;
  }

  bool parseUnary(ModuleShell &Shell, Value &Out) {
    if (atPunct("~")) {
      advance();
      if (!parseUnary(Shell, Out))
        return false;
      WireId W = freshWire(Shell, Out.Width);
      Shell.M.addNet(Op::Not, {Out.Wire}, W);
      Out = Value{W, Out.Width, false};
      return true;
    }
    if (atPunct("!")) {
      advance();
      if (!parseUnary(Shell, Out))
        return false;
      Out = toBool(Shell, Out);
      WireId W = freshWire(Shell, 1);
      Shell.M.addNet(Op::Not, {Out.Wire}, W);
      Out = Value{W, 1, false};
      return true;
    }
    // Reduction operators: &x |x ^x as prefixes of a primary.
    if (atPunct("&") || atPunct("|") || atPunct("^")) {
      // Only treat as reduction when followed directly by a primary —
      // here this is always the case since binary forms are consumed at
      // higher levels before unary is reached with the operator still
      // pending.
      Op Operation = cur().Text == "&"   ? Op::AndR
                     : cur().Text == "|" ? Op::OrR
                                         : Op::XorR;
      advance();
      Value Inner;
      if (!parseUnary(Shell, Inner))
        return false;
      WireId W = freshWire(Shell, 1);
      Shell.M.addNet(Operation, {Inner.Wire}, W);
      Out = Value{W, 1, false};
      return true;
    }
    return parsePrimary(Shell, Out);
  }

  bool parsePrimary(ModuleShell &Shell, Value &Out) {
    if (cur().Kind == TokKind::Number) {
      uint16_t Width = cur().Width ? cur().Width : 32;
      Out = constValue(Shell, cur().Value, Width, cur().Width == 0);
      advance();
      return true;
    }
    if (atPunct("(")) {
      advance();
      if (!parseExpr(Shell, Out))
        return false;
      return expect(")");
    }
    if (atPunct("{")) {
      advance();
      std::vector<Value> Parts;
      while (true) {
        Value Part;
        if (!parseExpr(Shell, Part))
          return false;
        if (Part.Unsized)
          return failB("unsized literal in concatenation");
        Parts.push_back(Part);
        if (!atPunct(","))
          break;
        advance();
      }
      if (!expect("}"))
        return false;
      uint32_t Total = 0;
      std::vector<WireId> Ids;
      for (const Value &Part : Parts) {
        Total += Part.Width;
        Ids.push_back(Part.Wire);
      }
      if (Total > 64)
        return failU("concatenation wider than 64 bits");
      WireId W = freshWire(Shell, static_cast<uint16_t>(Total));
      Shell.M.addNet(Op::Concat, std::move(Ids), W);
      Out = Value{W, static_cast<uint16_t>(Total), false};
      return true;
    }
    if (cur().Kind == TokKind::Ident) {
      auto It = Shell.ByName.find(cur().Text);
      if (It == Shell.ByName.end())
        return failB("use of undeclared net '" + cur().Text + "'");
      advance();
      Value V{It->second, Shell.M.wire(It->second).Width, false};
      // Optional bit/part select.
      if (atPunct("[")) {
        advance();
        if (cur().Kind != TokKind::Number)
          return failU("only constant selects are supported");
        uint64_t Hi = cur().Value;
        uint64_t Lo = Hi;
        advance();
        if (atPunct(":")) {
          advance();
          if (cur().Kind != TokKind::Number)
            return failU("only constant selects are supported");
          Lo = cur().Value;
          advance();
        }
        if (!expect("]"))
          return false;
        if (Lo > Hi || Hi >= V.Width)
          return failB("select out of range");
        uint16_t W = static_cast<uint16_t>(Hi - Lo + 1);
        WireId Sliced = freshWire(Shell, W);
        Shell.M.addNet(Op::Select, {V.Wire}, Sliced,
                       static_cast<uint32_t>(Lo));
        V = Value{Sliced, W, false};
      }
      Out = V;
      return true;
    }
    return failB("expected expression, got '" + cur().Text + "'");
  }

  // --- Statements -----------------------------------------------------------

  bool elaborateAssign(ModuleShell &Shell) {
    std::string Target;
    if (!expectIdent(Target))
      return false;
    if (atPunct("["))
      return failU("bit-select assignment targets are unsupported");
    auto It = Shell.ByName.find(Target);
    if (It == Shell.ByName.end())
      return failB("assignment to undeclared net '" + Target + "'");
    if (!expect("="))
      return false;
    Value V;
    if (!parseExpr(Shell, V))
      return false;
    uint16_t Width = Shell.M.wire(It->second).Width;
    if (!adapt(Shell, V, Width))
      return false;
    Shell.M.addNet(Op::Buf, {V.Wire}, It->second);
    return expect(";");
  }

  bool elaborateRegister(ModuleShell &Shell, const std::string &Target,
                         Value D) {
    auto It = Shell.ByName.find(Target);
    if (It == Shell.ByName.end())
      return failB("nonblocking assignment to undeclared '" + Target +
                   "'");
    if (!Shell.Regs.count(Target))
      return failB("nonblocking assignment target '" + Target +
                   "' is not a reg");
    WireId Q = It->second;
    uint16_t Width = Shell.M.wire(Q).Width;
    if (!adapt(Shell, D, Width))
      return false;
    uint64_t Init = 0;
    auto InitIt = Shell.RegInit.find(Target);
    if (InitIt != Shell.RegInit.end())
      Init = InitIt->second;
    if (Shell.M.wire(Q).Kind == WireKind::Output) {
      // Latched output port: register an inner wire, buffer it out.
      WireId Inner =
          Shell.M.addWire(Target + "$reg", WireKind::Reg, Width);
      Shell.M.addRegister(D.Wire, Inner, Init);
      Shell.M.addNet(Op::Buf, {Inner}, Q);
    } else {
      Shell.M.Wires[Q].Kind = WireKind::Reg;
      Shell.M.addRegister(D.Wire, Q, Init);
    }
    return true;
  }

  bool elaborateAlways(ModuleShell &Shell) {
    if (!expect("@") || !expect("(") || !expect("posedge"))
      return false;
    std::string Clock;
    if (!expectIdent(Clock))
      return false;
    if (!Shell.ByName.count(Clock))
      return failB("unknown clock '" + Clock + "'");
    if (!expect(")"))
      return false;

    auto statement = [&]() {
      std::string Target;
      if (!expectIdent(Target))
        return false;
      if (!expect("<="))
        return false;
      Value D;
      if (!parseExpr(Shell, D))
        return false;
      if (!elaborateRegister(Shell, Target, D))
        return false;
      return expect(";");
    };
    if (accept("begin")) {
      while (!at("end")) {
        if (atEnd())
          return failB("unterminated always block");
        if (!statement())
          return false;
      }
      return expect("end");
    }
    return statement();
  }

  bool elaborateInstance(ModuleShell &Shell) {
    std::string DefName, InstName;
    if (!expectIdent(DefName) || !expectIdent(InstName))
      return false;
    auto DefIt = IdByName.find(DefName);
    if (DefIt == IdByName.end())
      return failB("instantiation of unknown module '" + DefName + "'");
    const ModuleShell &Def = Shells[DefIt->second];
    if (!expect("("))
      return false;

    SubInstance Inst;
    Inst.Def = DefIt->second;
    Inst.Name = InstName;
    std::set<WireId> Bound;
    while (!atPunct(")")) {
      if (!expect("."))
        return false;
      std::string PortName;
      if (!expectIdent(PortName))
        return false;
      WireId Port = Def.M.findPort(PortName);
      if (Port == InvalidId)
        return failB("module '" + DefName + "' has no port '" +
                     PortName + "'");
      if (!Bound.insert(Port).second)
        return failB("port '" + PortName + "' bound twice");
      if (!expect("("))
        return false;
      if (Def.M.isInput(Port)) {
        Value V;
        if (!parseExpr(Shell, V))
          return false;
        if (!adapt(Shell, V, Def.M.wire(Port).Width))
          return false;
        Inst.Bindings.emplace_back(Port, V.Wire);
      } else {
        // Outputs must connect to a plain declared net.
        std::string Target;
        if (!expectIdent(Target))
          return false;
        auto It = Shell.ByName.find(Target);
        if (It == Shell.ByName.end())
          return failB("instance output bound to undeclared '" +
                       Target + "'");
        if (Shell.M.wire(It->second).Width != Def.M.wire(Port).Width)
          return failB("width mismatch on port '" + PortName + "'");
        Inst.Bindings.emplace_back(Port, It->second);
      }
      if (!expect(")"))
        return false;
      if (!atPunct(","))
        break;
      advance();
    }
    if (!expect(")") || !expect(";"))
      return false;

    // Unbound outputs dangle into fresh wires; unbound inputs error via
    // Design::validate later.
    for (WireId Out : Def.M.Outputs)
      if (!Bound.count(Out))
        Inst.Bindings.emplace_back(
            Out, freshWire(Shell, Def.M.wire(Out).Width));
    Shell.M.addInstance(std::move(Inst));
    return true;
  }

  bool elaborateBody(ModuleShell &Shell) {
    const auto &Decls = DeclSpans[Shell.M.Name];
    size_t DeclIdx = 0;
    Pos = Shell.BodyBegin;
    while (Pos < Shell.BodyEnd) {
      // Skip the declaration spans already consumed in phase 1.
      if (DeclIdx < Decls.size() && Pos == Decls[DeclIdx].first) {
        Pos = Decls[DeclIdx].second;
        ++DeclIdx;
        continue;
      }
      if (accept("assign")) {
        if (!elaborateAssign(Shell))
          return false;
        continue;
      }
      if (accept("always")) {
        if (!elaborateAlways(Shell))
          return false;
        continue;
      }
      if (accept("initial"))
        return failU("'initial' blocks are unsupported; use reg "
                     "initializers");
      if (cur().Kind == TokKind::Ident) {
        if (!elaborateInstance(Shell))
          return false;
        continue;
      }
      return failB("unexpected '" + cur().Text + "' in module body");
    }
    return true;
  }

  const std::vector<Token> &Toks;
  std::string FileName;
  const support::Deadline *DL = nullptr;
  support::DiagList Diags;
  size_t Pos = 0;
  uint64_t Temp = 0;
  std::vector<ModuleShell> Shells;
  std::map<std::string, ModuleId> IdByName;
  std::map<std::string, std::vector<std::string>> ClassicPorts;
  std::map<std::string, std::vector<std::pair<size_t, size_t>>> DeclSpans;
};

} // namespace

support::Expected<VerilogFile>
parse::parseVerilog(const std::string &Text, const std::string &FileName,
                    const support::Deadline *DL) {
  static trace::Counter &ParseBytes = trace::counter("parse.bytes");
  ParseBytes.add(Text.size());
  trace::Span ParseSpan("parse.verilog", "parse");
  ParseSpan.note("file", FileName)
      .note("bytes", static_cast<uint64_t>(Text.size()));
  auto Toks = lexVerilog(Text, FileName);
  if (!Toks)
    return Toks.diags();
  Parser P(*Toks, FileName, DL);
  return P.run();
}
