//===- analysis/Dot.h - Graphviz export --------------------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graphviz renderings of the two graphs the paper reasons about:
///
///  * a module's intra-modular combinational dependency graph (ports
///    colored by sort, state elements as boxes), and
///  * a circuit's port graph (one cluster per instance; connection and
///    summary edges; the combinational loop, if any, highlighted).
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_ANALYSIS_DOT_H
#define WIRESORT_ANALYSIS_DOT_H

#include "analysis/Summary.h"
#include "ir/Circuit.h"

#include <map>
#include <string>

namespace wiresort {

/// Renders a module's ports and combinational skeleton. Only interface
/// wires and state elements are shown (internals collapse to edges) so
/// even large modules stay readable.
std::string moduleDot(const ir::Module &M,
                      const analysis::ModuleSummary &Summary);

/// Renders a circuit's port graph, with sorts as colors, connection
/// edges solid and summary edges dashed; nodes on the loop in \p Loop
/// (may be empty) are drawn red.
std::string
circuitDot(const ir::Circuit &Circ,
           const std::map<ir::ModuleId, analysis::ModuleSummary> &Summaries,
           const std::vector<std::string> &LoopLabels = {});

} // namespace wiresort

#endif // WIRESORT_ANALYSIS_DOT_H
