//===- analysis/SortInference.h - Stage-1 sort inference --------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage 1 of the paper's three-stage process (Section 3.5): at module
/// design time, compute the sort of every interface wire together with
/// the output-port-set / input-port-set annotations. Complexity is
/// O(|inputs| * |edges|) per module (Section 5.5.1); output sorts are
/// recovered by inverting the input-side sets without re-traversing the
/// module.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_ANALYSIS_SORTINFERENCE_H
#define WIRESORT_ANALYSIS_SORTINFERENCE_H

#include "analysis/Reachability.h"
#include "analysis/Summary.h"
#include "ir/Design.h"
#include "support/Deadline.h"
#include "support/Diag.h"

#include <map>

namespace wiresort::analysis {

/// Result of inferring one module: a summary, or the WS101_COMB_LOOP
/// diagnostic for the first intra-module (or instance-summary-level)
/// combinational loop found.
using InferenceResult = support::Expected<ModuleSummary>;

/// Infers the interface summary of \p Id in \p D. Summaries for every
/// (transitively) instantiated definition must already be present in
/// \p SubSummaries. An active \p DL bounds the work: the kernel sweeps
/// poll it and a fired deadline yields a WS601_CANCELLED diagnostic
/// naming the module instead of a summary (the SummaryEngine folds it
/// into the run-level partial-progress report); a null \p DL (the
/// default) never cancels.
InferenceResult inferSummary(const ir::Design &D, ir::ModuleId Id,
                             const std::map<ir::ModuleId, ModuleSummary>
                                 &SubSummaries,
                             const support::Deadline *DL = nullptr);

/// Analyzes every module of \p D in dependency order, reusing each
/// definition's summary across instantiations (the Table 3 "unique
/// modules" reuse). Modules whose summary is supplied in \p Ascribed
/// (opaque IP; Section 4) are taken as-is and not analyzed.
///
/// Every module whose dependencies all summarized successfully is
/// analyzed; modules downstream of a failure are skipped silently (their
/// verdict would be noise — the root cause is already reported). The
/// returned diagnostics are sorted by module id, so serial, parallel
/// (SummaryEngine), and cache-warm runs emit identical lists. \p Out
/// maps every successfully analyzed ModuleId to its summary; an empty
/// Status (check hasError()) means the whole design summarized.
support::Status
analyzeDesign(const ir::Design &D,
              std::map<ir::ModuleId, ModuleSummary> &Out,
              const std::map<ir::ModuleId, ModuleSummary> &Ascribed = {});

} // namespace wiresort::analysis

#endif // WIRESORT_ANALYSIS_SORTINFERENCE_H
