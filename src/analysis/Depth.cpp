//===- analysis/Depth.cpp - Combinational-depth analysis ------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Depth.h"

#include "analysis/SortInference.h"
#include "analysis/WellConnected.h"
#include "support/Graph.h"

#include <algorithm>
#include <cassert>
#include <limits>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

namespace {

constexpr int64_t NegInf = std::numeric_limits<int64_t>::min() / 4;

uint32_t log2Ceil(uint32_t N) {
  uint32_t L = 0;
  while ((1u << L) < N)
    ++L;
  return L;
}

/// Critical-path contribution of one net, in primitive-gate levels of
/// its lowered form.
uint32_t netDepth(const Module &M, const Net &N) {
  uint16_t W = M.wire(N.Output).Width;
  uint16_t InW = N.Inputs.empty() ? 1 : M.wire(N.Inputs.front()).Width;
  switch (N.Operation) {
  case Op::Buf:
  case Op::Concat:
  case Op::Select:
    return 0; // Pure wiring.
  case Op::And:
  case Op::Or:
  case Op::Xor:
  case Op::Nand:
  case Op::Nor:
  case Op::Xnor:
  case Op::Not:
  case Op::Mux:
  case Op::Lut:
    return 1;
  case Op::Add:
  case Op::Sub:
    return 2u * W + 1; // Ripple-carry chain.
  case Op::Eq:
    return 1 + log2Ceil(std::max<uint16_t>(InW, 1)); // Xnor + AND tree.
  case Op::Lt:
    return 2u * InW + 1; // Ripple comparator.
  case Op::AndR:
  case Op::OrR:
  case Op::XorR:
    return log2Ceil(std::max<uint16_t>(InW, 1));
  }
  return 1;
}

/// One weighted combinational edge.
struct Edge {
  WireId From;
  WireId To;
  uint32_t Weight;
};

/// The weighted intra-module graph plus bookkeeping for state pins.
struct DepthGraph {
  const Module *M = nullptr;
  std::vector<Edge> Edges;
  Graph Shape; // Unweighted, for the topological order.
  /// Wires that feed state directly (register D, memory pins).
  std::vector<WireId> StatePinFeeds;
  /// (local input wire, instance, def input port) triples.
  std::vector<std::tuple<WireId, uint32_t, WireId>> InstInputs;
  /// (local wire, instance, def output port) for instance outputs.
  std::vector<std::tuple<WireId, uint32_t, WireId>> InstOutputs;
  std::vector<WireId> Topo;
};

std::optional<DepthGraph>
buildDepthGraph(const Design &D, const Module &M,
                const std::map<ModuleId, ModuleSummary> &Summaries,
                const std::map<ModuleId, DepthSummary> &SubDepths) {
  (void)D;
  DepthGraph G;
  G.M = &M;
  G.Shape = Graph(M.numWires());
  auto addEdge = [&](WireId From, WireId To, uint32_t Weight) {
    G.Edges.push_back(Edge{From, To, Weight});
    G.Shape.addEdge(From, To);
  };

  for (const Net &N : M.Nets) {
    uint32_t Weight = netDepth(M, N);
    for (WireId In : N.Inputs)
      addEdge(In, N.Output, Weight);
  }
  for (const Register &R : M.Registers)
    G.StatePinFeeds.push_back(R.D);
  for (const Memory &Mem : M.Memories) {
    if (Mem.SyncRead) {
      G.StatePinFeeds.push_back(Mem.RAddr);
    } else {
      // Asynchronous read: address decode is a mux tree of AddrWidth
      // levels.
      addEdge(Mem.RAddr, Mem.RData, Mem.AddrWidth);
    }
    G.StatePinFeeds.push_back(Mem.WAddr);
    G.StatePinFeeds.push_back(Mem.WData);
    G.StatePinFeeds.push_back(Mem.WEnable);
  }
  for (uint32_t InstIdx = 0; InstIdx != M.Instances.size(); ++InstIdx) {
    const SubInstance &Inst = M.Instances[InstIdx];
    const ModuleSummary &Sub = Summaries.at(Inst.Def);
    const DepthSummary &SubDepth = SubDepths.at(Inst.Def);
    std::map<WireId, WireId> OutLocal;
    for (const auto &[DefPort, Local] : Inst.Bindings)
      if (Sub.InputPortSets.count(DefPort)) {
        OutLocal[DefPort] = Local;
        G.InstOutputs.emplace_back(Local, InstIdx, DefPort);
      }
    for (const auto &[DefPort, Local] : Inst.Bindings) {
      auto SetIt = Sub.OutputPortSets.find(DefPort);
      if (SetIt == Sub.OutputPortSets.end())
        continue;
      G.InstInputs.emplace_back(Local, InstIdx, DefPort);
      for (WireId DefOut : SetIt->second)
        addEdge(Local, OutLocal.at(DefOut),
                SubDepth.pairDepth(DefPort, DefOut));
    }
  }

  std::optional<std::vector<uint32_t>> Topo = G.Shape.topoSort();
  if (!Topo)
    return std::nullopt;
  G.Topo = std::move(*Topo);
  return G;
}

/// Longest-path DP from the given seed distances; \returns per-wire
/// distances (NegInf where unreachable).
std::vector<int64_t> longestPaths(const DepthGraph &G,
                                  const std::map<WireId, int64_t> &Seeds) {
  std::vector<int64_t> Dist(G.M->numWires(), NegInf);
  for (const auto &[W, D] : Seeds)
    Dist[W] = std::max(Dist[W], D);
  // Bucket edges by source once, then relax in topological order.
  std::vector<std::vector<const Edge *>> BySource(G.M->numWires());
  for (const Edge &E : G.Edges)
    BySource[E.From].push_back(&E);
  for (WireId W : G.Topo) {
    if (Dist[W] == NegInf)
      continue;
    for (const Edge *E : BySource[W])
      Dist[E->To] = std::max(Dist[E->To], Dist[W] + E->Weight);
  }
  return Dist;
}

} // namespace

std::optional<DepthSummary>
analysis::inferDepths(const Design &D, ModuleId Id,
                      const std::map<ModuleId, ModuleSummary> &Summaries,
                      const std::map<ModuleId, DepthSummary> &SubDepths) {
  const Module &M = D.module(Id);
  const ModuleSummary &Summary = Summaries.at(Id);
  std::optional<DepthGraph> G =
      buildDepthGraph(D, M, Summaries, SubDepths);
  if (!G)
    return std::nullopt;

  DepthSummary Result;
  Result.Id = Id;

  // Helper: maximum depth landing on any state pin (direct feeds plus
  // to-sync instance inputs completed by the sub's to-state depth).
  auto maxIntoState = [&](const std::vector<int64_t> &Dist) {
    int64_t Best = NegInf;
    for (WireId W : G->StatePinFeeds)
      if (Dist[W] != NegInf)
        Best = std::max(Best, Dist[W]);
    for (const auto &[Local, InstIdx, DefPort] : G->InstInputs) {
      if (Dist[Local] == NegInf)
        continue;
      const SubInstance &Inst = M.Instances[InstIdx];
      const DepthSummary &Sub = SubDepths.at(Inst.Def);
      auto It = Sub.ToStateDepth.find(DefPort);
      if (It != Sub.ToStateDepth.end())
        Best = std::max(Best, Dist[Local] + int64_t(It->second));
    }
    return Best;
  };

  // Per-input DP: pair depths and to-state depths.
  for (WireId In : M.Inputs) {
    std::vector<int64_t> Dist = longestPaths(*G, {{In, 0}});
    for (WireId Out : Summary.outputPortSet(In)) {
      assert(Dist[Out] != NegInf && "sort summary and depth disagree");
      Result.PairDepth[{In, Out}] = static_cast<uint32_t>(Dist[Out]);
    }
    int64_t IntoState = maxIntoState(Dist);
    if (IntoState != NegInf)
      Result.ToStateDepth[In] = static_cast<uint32_t>(IntoState);
  }

  // State-source DP: from-state depths and the internal reg-to-reg path.
  std::map<WireId, int64_t> StateSeeds;
  for (const Register &R : M.Registers)
    StateSeeds[R.Q] = 0;
  for (const Memory &Mem : M.Memories)
    if (Mem.SyncRead)
      StateSeeds[Mem.RData] = 0;
  for (WireId W = 0; W != M.numWires(); ++W)
    if (M.wire(W).Kind == WireKind::Const)
      StateSeeds[W] = 0;
  for (const auto &[Local, InstIdx, DefPort] : G->InstOutputs) {
    const SubInstance &Inst = M.Instances[InstIdx];
    const DepthSummary &Sub = SubDepths.at(Inst.Def);
    auto It = Sub.FromStateDepth.find(DefPort);
    if (It != Sub.FromStateDepth.end()) {
      auto &Seed = StateSeeds[Local];
      Seed = std::max(Seed, int64_t(It->second));
    }
  }
  std::vector<int64_t> FromState = longestPaths(*G, StateSeeds);
  for (WireId Out : M.Outputs)
    if (FromState[Out] != NegInf)
      Result.FromStateDepth[Out] = static_cast<uint32_t>(FromState[Out]);

  int64_t Internal = maxIntoState(FromState);
  if (Internal != NegInf)
    Result.InternalDepth = static_cast<uint32_t>(Internal);
  for (const SubInstance &Inst : M.Instances)
    Result.InternalDepth = std::max(
        Result.InternalDepth, SubDepths.at(Inst.Def).InternalDepth);
  return Result;
}

std::optional<std::map<ModuleId, DepthSummary>>
analysis::inferAllDepths(const Design &D,
                         const std::map<ModuleId, ModuleSummary>
                             &Summaries) {
  std::optional<std::vector<ModuleId>> Order =
      D.topologicalModuleOrder();
  assert(Order && "module instantiation must be acyclic");
  std::map<ModuleId, DepthSummary> Result;
  for (ModuleId Id : *Order) {
    std::optional<DepthSummary> Depth =
        inferDepths(D, Id, Summaries, Result);
    if (!Depth)
      return std::nullopt;
    Result[Id] = std::move(*Depth);
  }
  return Result;
}

uint32_t analysis::circuitCriticalDepth(
    const Circuit &Circ,
    const std::map<ModuleId, ModuleSummary> &Summaries,
    const std::map<ModuleId, DepthSummary> &Depths) {
  PortGraph PG = PortGraph::build(Circ, Summaries);
  std::optional<std::vector<uint32_t>> Topo = PG.graph().topoSort();
  assert(Topo && "circuit must be well-connected");

  const auto &Insts = Circ.instances();
  std::vector<int64_t> Dist(PG.graph().numNodes(), NegInf);
  int64_t Best = 0;

  // Seed every from-sync output with its from-state depth; instances'
  // internal paths compete directly.
  for (InstId Inst = 0; Inst != Insts.size(); ++Inst) {
    const DepthSummary &Depth = Depths.at(Insts[Inst].Def);
    Best = std::max(Best, int64_t(Depth.InternalDepth));
    const Module &Def = Circ.design().module(Insts[Inst].Def);
    for (WireId Out : Def.Outputs) {
      auto It = Depth.FromStateDepth.find(Out);
      if (It != Depth.FromStateDepth.end()) {
        uint32_t Node = PG.nodeOf(PortRef{Inst, Out});
        Dist[Node] = std::max(Dist[Node], int64_t(It->second));
      }
    }
  }

  // Relax in topological order. Edges: connections carry weight 0;
  // summary edges carry the pair depth. Paths complete into state via
  // each input's to-state depth.
  for (uint32_t Node : *Topo) {
    if (Dist[Node] == NegInf)
      continue;
    PortRef Ref = PG.refOf(Node);
    const Module &Def = Circ.design().module(Insts[Ref.Inst].Def);
    const DepthSummary &Depth = Depths.at(Insts[Ref.Inst].Def);
    if (Def.isInput(Ref.Port)) {
      auto It = Depth.ToStateDepth.find(Ref.Port);
      if (It != Depth.ToStateDepth.end())
        Best = std::max(Best, Dist[Node] + int64_t(It->second));
      const ModuleSummary &Summary = Summaries.at(Insts[Ref.Inst].Def);
      for (WireId Out : Summary.outputPortSet(Ref.Port)) {
        uint32_t Next = PG.nodeOf(PortRef{Ref.Inst, Out});
        Dist[Next] =
            std::max(Dist[Next],
                     Dist[Node] + int64_t(Depth.pairDepth(Ref.Port, Out)));
      }
    } else {
      for (const Connection &C : Circ.connections())
        if (C.From.Inst == Ref.Inst && C.From.Port == Ref.Port) {
          uint32_t Next = PG.nodeOf(C.To);
          Dist[Next] = std::max(Dist[Next], Dist[Node]);
        }
    }
  }
  return static_cast<uint32_t>(std::max<int64_t>(Best, 0));
}
