//===- analysis/WellConnected.cpp - Circuit-level checking ----------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "analysis/WellConnected.h"

#include "analysis/SummaryEngine.h"
#include "support/Timer.h"

#include <cassert>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

ConnectionSafety
analysis::classifyConnection(const Circuit &Circ,
                             const std::map<ModuleId, ModuleSummary>
                                 &Summaries,
                             const Connection &C) {
  const ModuleSummary &FromSummary =
      Summaries.at(Circ.instances()[C.From.Inst].Def);
  const ModuleSummary &ToSummary =
      Summaries.at(Circ.instances()[C.To.Inst].Def);
  if (FromSummary.sortOf(C.From.Port) == Sort::FromSync ||
      ToSummary.sortOf(C.To.Port) == Sort::ToSync)
    return ConnectionSafety::SafeBySort;
  return ConnectionSafety::NeedsCircuitCheck;
}

PortGraph PortGraph::build(const Circuit &Circ,
                           const std::map<ModuleId, ModuleSummary>
                               &Summaries) {
  PortGraph PG;
  const auto &Insts = Circ.instances();
  PG.NodeIndex.resize(Insts.size());

  for (InstId Inst = 0; Inst != Insts.size(); ++Inst) {
    const Module &Def = Circ.design().module(Insts[Inst].Def);
    for (WireId Port : Def.Inputs)
      PG.NodeIndex[Inst][Port] = static_cast<uint32_t>(PG.Refs.size()),
      PG.Refs.push_back(PortRef{Inst, Port});
    for (WireId Port : Def.Outputs)
      PG.NodeIndex[Inst][Port] = static_cast<uint32_t>(PG.Refs.size()),
      PG.Refs.push_back(PortRef{Inst, Port});
  }
  PG.G = Graph(PG.Refs.size());

  // Summary edges: input -> each member of its output-port-set.
  for (InstId Inst = 0; Inst != Insts.size(); ++Inst) {
    const ModuleSummary &Summary = Summaries.at(Insts[Inst].Def);
    for (const auto &[In, Outs] : Summary.OutputPortSets) {
      uint32_t InNode = PG.NodeIndex[Inst].at(In);
      for (WireId Out : Outs) {
        PG.G.addEdge(InNode, PG.NodeIndex[Inst].at(Out));
        ++PG.SummaryEdges;
      }
    }
  }

  // Connection edges.
  for (const Connection &C : Circ.connections()) {
    PG.G.addEdge(PG.NodeIndex[C.From.Inst].at(C.From.Port),
                 PG.NodeIndex[C.To.Inst].at(C.To.Port));
    ++PG.ConnectionEdges;
  }
  return PG;
}

uint32_t PortGraph::nodeOf(PortRef Ref) const {
  return NodeIndex[Ref.Inst].at(Ref.Port);
}

bool PortGraph::transitivelyAffects(PortRef W1, PortRef W2) const {
  return G.reachableFrom(nodeOf(W1))[nodeOf(W2)];
}

CircuitCheckResult
analysis::checkCircuit(const Circuit &Circ,
                       const std::map<ModuleId, ModuleSummary> &Summaries) {
  Timer T;
  CircuitCheckResult Result;

  for (const Connection &C : Circ.connections()) {
    if (classifyConnection(Circ, Summaries, C) ==
        ConnectionSafety::SafeBySort)
      ++Result.SafeBySort;
    else
      ++Result.NeedsCheck;
  }

  PortGraph PG = PortGraph::build(Circ, Summaries);
  if (std::optional<std::vector<uint32_t>> Cycle = PG.graph().findCycle()) {
    LoopDiagnostic Diag;
    for (uint32_t Node : *Cycle)
      Diag.PathLabels.push_back(Circ.portLabel(PG.refOf(Node)));
    Result.Loop = std::move(Diag);
    Result.WellConnected = false;
  } else {
    Result.WellConnected = true;
  }
  Result.Seconds = T.seconds();
  return Result;
}

CircuitCheckResult analysis::checkCircuit(const Circuit &Circ,
                                          SummaryEngine &Engine) {
  Timer T;
  std::map<ModuleId, ModuleSummary> Summaries;
  if (std::optional<LoopDiagnostic> Loop =
          Engine.analyze(Circ.design(), Summaries)) {
    // The design's own modules already contain a loop; the circuit can
    // never be well-connected, and the diagnostic names the culprit.
    CircuitCheckResult Result;
    Result.WellConnected = false;
    Result.Loop = std::move(Loop);
    Result.Seconds = T.seconds();
    return Result;
  }
  CircuitCheckResult Result = checkCircuit(Circ, Summaries);
  Result.Seconds = T.seconds(); // Include Stage 1 in the reported time.
  return Result;
}

bool analysis::isWellConnectedPair(const PortGraph &PG, const Circuit &Circ,
                                   const std::map<ModuleId, ModuleSummary>
                                       &Summaries,
                                   const Connection &C) {
  const ModuleSummary &FromSummary =
      Summaries.at(Circ.instances()[C.From.Inst].Def);
  const ModuleSummary &ToSummary =
      Summaries.at(Circ.instances()[C.To.Inst].Def);
  // For all w1 in input-ports(M1, wout), w2 in output-ports(M2, win):
  // require w2 does not transitively affect w1 (Definition 3.1).
  for (WireId W2 : ToSummary.outputPortSet(C.To.Port)) {
    std::vector<bool> Reach =
        PG.graph().reachableFrom(PG.nodeOf(PortRef{C.To.Inst, W2}));
    for (WireId W1 : FromSummary.inputPortSet(C.From.Port))
      if (Reach[PG.nodeOf(PortRef{C.From.Inst, W1})])
        return false;
  }
  return true;
}

CircuitCheckResult
analysis::checkCircuitPairwise(const Circuit &Circ,
                               const std::map<ModuleId, ModuleSummary>
                                   &Summaries) {
  Timer T;
  CircuitCheckResult Result;
  PortGraph PG = PortGraph::build(Circ, Summaries);

  Result.WellConnected = true;
  for (const Connection &C : Circ.connections()) {
    if (classifyConnection(Circ, Summaries, C) ==
        ConnectionSafety::SafeBySort) {
      ++Result.SafeBySort;
      continue;
    }
    ++Result.NeedsCheck;
    if (!isWellConnectedPair(PG, Circ, Summaries, C)) {
      Result.WellConnected = false;
      LoopDiagnostic Diag;
      Diag.PathLabels.push_back(Circ.portLabel(C.From));
      Diag.PathLabels.push_back(Circ.portLabel(C.To));
      if (!Result.Loop)
        Result.Loop = std::move(Diag);
    }
  }
  Result.Seconds = T.seconds();
  return Result;
}
