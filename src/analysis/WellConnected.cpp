//===- analysis/WellConnected.cpp - Circuit-level checking ----------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "analysis/WellConnected.h"

#include "analysis/SummaryEngine.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <cassert>

namespace {

/// Shared Stage-2 bookkeeping for both circuit checkers.
wiresort::trace::Counter &safeBySortCounter() {
  static wiresort::trace::Counter &C =
      wiresort::trace::counter("analysis.safe_by_sort");
  return C;
}
wiresort::trace::Counter &needsCheckCounter() {
  static wiresort::trace::Counter &C =
      wiresort::trace::counter("analysis.needs_check");
  return C;
}

} // namespace

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

ConnectionSafety
analysis::classifyConnection(const Circuit &Circ,
                             const std::map<ModuleId, ModuleSummary>
                                 &Summaries,
                             const Connection &C) {
  const ModuleSummary &FromSummary =
      Summaries.at(Circ.instances()[C.From.Inst].Def);
  const ModuleSummary &ToSummary =
      Summaries.at(Circ.instances()[C.To.Inst].Def);
  if (FromSummary.sortOf(C.From.Port) == Sort::FromSync ||
      ToSummary.sortOf(C.To.Port) == Sort::ToSync)
    return ConnectionSafety::SafeBySort;
  return ConnectionSafety::NeedsCircuitCheck;
}

PortGraph PortGraph::build(const Circuit &Circ,
                           const std::map<ModuleId, ModuleSummary>
                               &Summaries) {
  trace::Span BuildSpan("analysis.port_graph", "analysis");
  BuildSpan.note("circuit", Circ.name());
  PortGraph PG;
  const auto &Insts = Circ.instances();
  const Design &D = Circ.design();
  PG.InstBase.resize(Insts.size());
  PG.InstDef.resize(Insts.size());
  PG.DefSlots.resize(D.numModules());

  for (InstId Inst = 0; Inst != Insts.size(); ++Inst) {
    const ModuleId DefId = Insts[Inst].Def;
    const Module &Def = D.module(DefId);
    PG.InstDef[Inst] = DefId;
    PG.InstBase[Inst] = static_cast<uint32_t>(PG.Refs.size());
    // Port -> slot mapping, built once per definition and shared by all
    // of its instances (dense vector; maps here were a profile hot spot).
    std::vector<uint32_t> &Slots = PG.DefSlots[DefId];
    if (Slots.empty() && Def.numPorts() != 0) {
      Slots.assign(Def.numWires(), InvalidId);
      uint32_t Next = 0;
      for (WireId Port : Def.Inputs)
        Slots[Port] = Next++;
      for (WireId Port : Def.Outputs)
        Slots[Port] = Next++;
    }
    for (WireId Port : Def.Inputs)
      PG.Refs.push_back(PortRef{Inst, Port});
    for (WireId Port : Def.Outputs)
      PG.Refs.push_back(PortRef{Inst, Port});
  }
  PG.G = Graph(PG.Refs.size());

  // Summary edges: input -> each member of its output-port-set.
  for (InstId Inst = 0; Inst != Insts.size(); ++Inst) {
    const ModuleSummary &Summary = Summaries.at(Insts[Inst].Def);
    for (const auto &[In, Outs] : Summary.OutputPortSets) {
      uint32_t InNode = PG.nodeOf(PortRef{Inst, In});
      for (WireId Out : Outs) {
        PG.G.addEdge(InNode, PG.nodeOf(PortRef{Inst, Out}));
        ++PG.SummaryEdges;
      }
    }
  }

  // Connection edges.
  for (const Connection &C : Circ.connections()) {
    PG.G.addEdge(PG.nodeOf(C.From), PG.nodeOf(C.To));
    ++PG.ConnectionEdges;
  }

  // Freeze for the Stage-3 closure kernel: one ordering pass up front
  // (Kahn; Tarjan only if the port graph turns out cyclic) that also
  // settles checkCircuit's loop verdict. The pairwise checker then
  // sweeps 64 ports per word over the CSR arrays.
  PG.Csr = CsrGraph::freeze(PG.G, CsrGraph::ForwardOnly);
  return PG;
}

bool PortGraph::transitivelyAffects(PortRef W1, PortRef W2) const {
  return G.reaches(nodeOf(W1), nodeOf(W2));
}

namespace {

/// Per-instance summary pointers, resolved once per circuit so the
/// per-connection loops below stop paying a map lookup per endpoint.
std::vector<const ModuleSummary *>
instanceSummaries(const Circuit &Circ,
                  const std::map<ModuleId, ModuleSummary> &Summaries) {
  const auto &Insts = Circ.instances();
  std::vector<const ModuleSummary *> Result(Insts.size());
  for (InstId Inst = 0; Inst != Insts.size(); ++Inst)
    Result[Inst] = &Summaries.at(Insts[Inst].Def);
  return Result;
}

/// classifyConnection over pre-resolved summary pointers.
ConnectionSafety
classifyCached(const std::vector<const ModuleSummary *> &InstSummary,
               const Connection &C) {
  if (InstSummary[C.From.Inst]->sortOf(C.From.Port) == Sort::FromSync ||
      InstSummary[C.To.Inst]->sortOf(C.To.Port) == Sort::ToSync)
    return ConnectionSafety::SafeBySort;
  return ConnectionSafety::NeedsCircuitCheck;
}

} // namespace

CircuitCheckResult
analysis::checkCircuit(const Circuit &Circ,
                       const std::map<ModuleId, ModuleSummary> &Summaries) {
  Timer T;
  trace::Span CheckSpan("analysis.check_circuit", "analysis");
  CheckSpan.note("circuit", Circ.name());
  CircuitCheckResult Result;

  const std::vector<const ModuleSummary *> InstSummary =
      instanceSummaries(Circ, Summaries);
  for (const Connection &C : Circ.connections()) {
    if (classifyCached(InstSummary, C) == ConnectionSafety::SafeBySort)
      ++Result.SafeBySort;
    else
      ++Result.NeedsCheck;
  }
  safeBySortCounter().add(Result.SafeBySort);
  needsCheckCounter().add(Result.NeedsCheck);

  PortGraph PG = PortGraph::build(Circ, Summaries);
  if (PG.csr().isAcyclic()) {
    Result.WellConnected = true;
  } else {
    // A loop exists; walk it only on this error path for the diagnostic.
    std::optional<std::vector<uint32_t>> Cycle = PG.graph().findCycle();
    assert(Cycle && "frozen snapshot says cyclic but no cycle found");
    support::Diag Diag(support::DiagCode::WS101_COMB_LOOP,
                       "combinational loop in circuit '" + Circ.name() +
                           "'");
    for (uint32_t Node : *Cycle) {
      PortRef Ref = PG.refOf(Node);
      Diag.addHop(Circ.instances()[Ref.Inst].Name,
                  Circ.defOf(Ref.Inst).wire(Ref.Port).Name);
    }
    Result.Diags.add(std::move(Diag));
    Result.WellConnected = false;
  }
  Result.Seconds = T.seconds();
  return Result;
}

CircuitCheckResult analysis::checkCircuit(const Circuit &Circ,
                                          SummaryEngine &Engine) {
  Timer T;
  std::map<ModuleId, ModuleSummary> Summaries;
  support::Status Stage1 = Engine.analyze(Circ.design(), Summaries);
  if (Stage1.hasError()) {
    // The design's own modules already contain loops; the circuit can
    // never be well-connected, and the diagnostics name the culprits.
    CircuitCheckResult Result;
    Result.WellConnected = false;
    Result.Diags = std::move(Stage1);
    Result.Seconds = T.seconds();
    return Result;
  }
  CircuitCheckResult Result = checkCircuit(Circ, Summaries);
  Result.Seconds = T.seconds(); // Include Stage 1 in the reported time.
  return Result;
}

bool analysis::isWellConnectedPair(const PortGraph &PG, const Circuit &Circ,
                                   const std::map<ModuleId, ModuleSummary>
                                       &Summaries,
                                   const Connection &C) {
  const ModuleSummary &FromSummary =
      Summaries.at(Circ.instances()[C.From.Inst].Def);
  const ModuleSummary &ToSummary =
      Summaries.at(Circ.instances()[C.To.Inst].Def);
  // For all w1 in input-ports(M1, wout), w2 in output-ports(M2, win):
  // require w2 does not transitively affect w1 (Definition 3.1). The w2
  // closures run 64-per-word through the bit-parallel kernel instead of
  // one BFS per w2.
  const std::vector<WireId> &W2s = ToSummary.outputPortSet(C.To.Port);
  const std::vector<WireId> &W1s = FromSummary.inputPortSet(C.From.Port);
  if (W2s.empty() || W1s.empty())
    return true;
  static thread_local ReachabilityKernel::Scratch SweepScratch;
  ReachabilityKernel Kernel(PG.csr(), SweepScratch,
                            ReachabilityKernel::laneWordsFor(W2s.size()));
  const uint32_t Lanes = Kernel.laneCount();
  const uint32_t LaneWords = Kernel.laneWords();
  std::vector<uint32_t> Sources;
  Sources.reserve(std::min<size_t>(Lanes, W2s.size()));
  for (size_t Base = 0; Base < W2s.size(); Base += Lanes) {
    const size_t Count = std::min<size_t>(Lanes, W2s.size() - Base);
    Sources.clear();
    for (size_t K = 0; K != Count; ++K)
      Sources.push_back(PG.nodeOf(PortRef{C.To.Inst, W2s[Base + K]}));
    Kernel.sweep(Sources.data(), static_cast<uint32_t>(Count));
    for (WireId W1 : W1s) {
      const uint64_t *Row = Kernel.row(PG.nodeOf(PortRef{C.From.Inst, W1}));
      for (uint32_t Word = 0; Word != LaneWords; ++Word)
        if (Row[Word] != 0)
          return false;
    }
  }
  return true;
}

CircuitCheckResult
analysis::checkCircuitPairwise(const Circuit &Circ,
                               const std::map<ModuleId, ModuleSummary>
                                   &Summaries) {
  Timer T;
  trace::Span CheckSpan("analysis.check_circuit", "analysis");
  CheckSpan.note("circuit", Circ.name()).note("mode", "pairwise");
  CircuitCheckResult Result;
  PortGraph PG = PortGraph::build(Circ, Summaries);
  const std::vector<const ModuleSummary *> InstSummary =
      instanceSummaries(Circ, Summaries);
  const auto &Conns = Circ.connections();

  // Stage 2 plus query collection: one (connection, w2) query per member
  // of each checked connection's output-port-set. All queries across all
  // connections share the kernel's chunked sweeps, so the whole pairwise
  // pass costs ceil(|queries|/64) passes over the port graph's edges.
  struct PairQuery {
    uint32_t Conn;
    uint32_t SrcNode;
  };
  std::vector<PairQuery> Queries;
  std::vector<uint8_t> Failed(Conns.size(), 0);
  for (uint32_t I = 0; I != Conns.size(); ++I) {
    const Connection &C = Conns[I];
    if (classifyCached(InstSummary, C) == ConnectionSafety::SafeBySort) {
      ++Result.SafeBySort;
      continue;
    }
    ++Result.NeedsCheck;
    for (WireId W2 : InstSummary[C.To.Inst]->outputPortSet(C.To.Port))
      Queries.push_back({I, PG.nodeOf(PortRef{C.To.Inst, W2})});
  }
  safeBySortCounter().add(Result.SafeBySort);
  needsCheckCounter().add(Result.NeedsCheck);

  static thread_local ReachabilityKernel::Scratch SweepScratch;
  ReachabilityKernel Kernel(PG.csr(), SweepScratch,
                            ReachabilityKernel::laneWordsFor(Queries.size()));
  const uint32_t Lanes = Kernel.laneCount();
  std::vector<uint32_t> Sources;
  for (size_t Base = 0; Base < Queries.size(); Base += Lanes) {
    const size_t Count = std::min<size_t>(Lanes, Queries.size() - Base);
    Sources.clear();
    for (size_t K = 0; K != Count; ++K)
      Sources.push_back(Queries[Base + K].SrcNode);
    Kernel.sweep(Sources.data(), static_cast<uint32_t>(Count));
    // Queries for one connection are contiguous, so decode by runs of
    // equal Conn: the (w1 node, kernel row) lookups hoist out of the
    // per-lane loop, and a whole run's lanes are tested against each w1
    // row with word masks instead of per-bit probes.
    for (size_t RunLo = 0; RunLo != Count;) {
      const uint32_t ConnIdx = Queries[Base + RunLo].Conn;
      size_t RunHi = RunLo + 1;
      while (RunHi != Count && Queries[Base + RunHi].Conn == ConnIdx)
        ++RunHi;
      if (Failed[ConnIdx]) {
        RunLo = RunHi;
        continue;
      }
      const Connection &C = Conns[ConnIdx];
      const ModuleSummary &FromSummary = *InstSummary[C.From.Inst];
      for (WireId W1 : FromSummary.inputPortSet(C.From.Port)) {
        const uint64_t *Row =
            Kernel.row(PG.nodeOf(PortRef{C.From.Inst, W1}));
        const uint32_t WordBits = ReachabilityKernel::WordBits;
        bool Hit = false;
        for (size_t Word = RunLo / WordBits;
             Word != (RunHi + WordBits - 1) / WordBits && !Hit; ++Word) {
          uint64_t Keep = ~uint64_t{0};
          if (Word == RunLo / WordBits)
            Keep &= ~uint64_t{0} << (RunLo % WordBits);
          if (Word == (RunHi - 1) / WordBits && RunHi % WordBits != 0)
            Keep &= ~uint64_t{0} >> (WordBits - RunHi % WordBits);
          Hit = (Row[Word] & Keep) != 0;
        }
        if (Hit) {
          Failed[ConnIdx] = 1;
          break;
        }
      }
      RunLo = RunHi;
    }
  }

  Result.WellConnected = true;
  for (uint32_t I = 0; I != Conns.size(); ++I) {
    if (!Failed[I])
      continue;
    Result.WellConnected = false;
    const Connection &C = Conns[I];
    Result.Diags.add(
        support::Diag(support::DiagCode::WS101_COMB_LOOP,
                      "connection is not well-connected")
            .withHop(Circ.instances()[C.From.Inst].Name,
                     Circ.defOf(C.From.Inst).wire(C.From.Port).Name)
            .withHop(Circ.instances()[C.To.Inst].Name,
                     Circ.defOf(C.To.Inst).wire(C.To.Port).Name));
  }
  Result.Seconds = T.seconds();
  return Result;
}
