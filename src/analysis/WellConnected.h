//===- analysis/WellConnected.h - Circuit-level checking --------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stages 2 and 3 of the paper's process (Section 3.5). Stage 2 marks any
/// connection touching a from-sync output or to-sync input as safe
/// outright (Property 1). Stage 3 checks the remaining from-port ->
/// to-port connections: a complete circuit is well-connected iff every
/// from-port output is safely from-port with respect to the to-port
/// inputs it drives (Property 3).
///
/// Two equivalent checkers are provided:
///  * checkCircuit — builds the port graph (instance ports as nodes,
///    connection edges plus per-module summary edges) and runs one SCC
///    pass; this is the production path.
///  * checkCircuitPairwise — the literal Definition 3.1 check per
///    connection, worst case O(|conns|^2) (Section 5.5.2); kept both as
///    executable documentation of the definition and as a cross-check the
///    property tests compare against the SCC path.
///
/// Neither checker ever inspects module internals — only summaries.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_ANALYSIS_WELLCONNECTED_H
#define WIRESORT_ANALYSIS_WELLCONNECTED_H

#include "analysis/Summary.h"
#include "ir/Circuit.h"
#include "support/CsrGraph.h"
#include "support/Diag.h"
#include "support/Graph.h"

#include <cassert>
#include <map>
#include <vector>

namespace wiresort::analysis {

/// Stage-2 verdict for one connection.
enum class ConnectionSafety : uint8_t {
  /// The output is from-sync or the input is to-sync; safe regardless of
  /// the rest of the circuit (Property 1, Figure 5).
  SafeBySort,
  /// from-port -> to-port; safety depends on the whole circuit (Figure 6).
  NeedsCircuitCheck,
};

/// Classifies \p C per Property 1 using only the two ports' sorts.
ConnectionSafety classifyConnection(const ir::Circuit &Circ,
                                    const std::map<ir::ModuleId,
                                                   ModuleSummary> &Summaries,
                                    const ir::Connection &C);

/// The circuit-level dependency graph over instance ports. Nodes are
/// (instance, port) pairs; edges are circuit connections plus summary
/// edges (input -> each output in its output-port-set). The
/// TransitivelyAffects relation of Section 3.2 is reachability here.
class PortGraph {
public:
  static PortGraph build(const ir::Circuit &Circ,
                         const std::map<ir::ModuleId, ModuleSummary>
                             &Summaries);

  const Graph &graph() const { return G; }

  /// Frozen CSR snapshot of \ref graph, taken at build time: the
  /// bit-parallel closure kernel (support/CsrGraph.h) runs Stage-3
  /// pairwise checking over it.
  const CsrGraph &csr() const { return Csr; }

  uint32_t nodeOf(ir::PortRef Ref) const {
    const uint32_t Slot = DefSlots[InstDef[Ref.Inst]][Ref.Port];
    assert(Slot != ir::InvalidId && "wire is not a port of the instance");
    return InstBase[Ref.Inst] + Slot;
  }
  ir::PortRef refOf(uint32_t Node) const { return Refs[Node]; }
  size_t numSummaryEdges() const { return SummaryEdges; }
  size_t numConnectionEdges() const { return ConnectionEdges; }

  /// w1 transitively-affects w2 (w1 ~>C w2): reachability in the graph.
  bool transitivelyAffects(ir::PortRef W1, ir::PortRef W2) const;

private:
  Graph G;
  CsrGraph Csr;
  std::vector<ir::PortRef> Refs;
  /// Flat node index: node id = InstBase[inst] + DefSlots[def][port].
  /// DefSlots is shared across instances of the same definition; slots
  /// run inputs-then-outputs in declaration order.
  std::vector<uint32_t> InstBase;
  std::vector<ir::ModuleId> InstDef;
  std::vector<std::vector<uint32_t>> DefSlots;
  size_t SummaryEdges = 0;
  size_t ConnectionEdges = 0;
};

/// Outcome of a whole-circuit check.
struct CircuitCheckResult {
  bool WellConnected = false;
  /// WS101_COMB_LOOP diagnostics when not well-connected; each witness
  /// hop is an (instance, port) pair of the circuit.
  support::DiagList Diags;
  /// Connections proven safe by sorts alone (stage 2).
  size_t SafeBySort = 0;
  /// Connections requiring the stage-3 circuit check.
  size_t NeedsCheck = 0;
  double Seconds = 0.0;
};

/// SCC-based whole-circuit check (production path).
CircuitCheckResult checkCircuit(const ir::Circuit &Circ,
                                const std::map<ir::ModuleId, ModuleSummary>
                                    &Summaries);

class SummaryEngine;

/// Engine-driven flavor of the production check: Stage 1 runs through
/// \p Engine (parallel, cache-served on repeats), then checkCircuit runs
/// over the resulting summaries. If the design itself contains a
/// combinational loop the result reports it without a circuit pass.
/// Repeated checks with the same engine hit its summary cache.
CircuitCheckResult checkCircuit(const ir::Circuit &Circ,
                                SummaryEngine &Engine);

/// Definition 3.1: is \p C's output wire well-connected to its input wire?
/// I.e., no w2 in the input's output-port-set transitively affects any w1
/// in the output's input-port-set.
bool isWellConnectedPair(const PortGraph &PG, const ir::Circuit &Circ,
                         const std::map<ir::ModuleId, ModuleSummary>
                             &Summaries,
                         const ir::Connection &C);

/// The literal Property 3 check: every from-port output safely from-port
/// w.r.t. the to-port inputs it drives. Equivalent verdict to
/// \ref checkCircuit on complete circuits; worst case O(|conns|^2).
CircuitCheckResult
checkCircuitPairwise(const ir::Circuit &Circ,
                     const std::map<ir::ModuleId, ModuleSummary> &Summaries);

} // namespace wiresort::analysis

#endif // WIRESORT_ANALYSIS_WELLCONNECTED_H
