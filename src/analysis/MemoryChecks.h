//===- analysis/MemoryChecks.h - Sync-memory composition rules --*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.7's extension: synchronous memories impose composition
/// requirements beyond loop freedom. A read address that must be stable
/// at the start of the cycle requires its external driver to be
/// \b from-sync-direct (fed straight from a register, through no gates);
/// dually, a memory whose read data must land in a register requires its
/// external sink to be \b to-sync-direct.
///
/// Modules express these requirements as PortContracts (ir/Module.h);
/// this pass verifies every circuit connection against the contracts of
/// both endpoints using the inferred subsorts.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_ANALYSIS_MEMORYCHECKS_H
#define WIRESORT_ANALYSIS_MEMORYCHECKS_H

#include "analysis/Summary.h"
#include "ir/Circuit.h"
#include "support/Diag.h"

#include <map>

namespace wiresort::analysis {

/// Checks every connection of \p Circ against both endpoints' contracts.
/// \returns one WS104_CONTRACT_VIOLATION diagnostic per violated contract
/// (in connection order; the witness carries the driver hop then the sink
/// hop). Empty means the circuit honors all synchronous-memory interface
/// requirements.
support::DiagList
checkMemoryContracts(const ir::Circuit &Circ,
                     const std::map<ir::ModuleId, ModuleSummary> &Summaries);

} // namespace wiresort::analysis

#endif // WIRESORT_ANALYSIS_MEMORYCHECKS_H
