//===- analysis/SummaryIO.h - Summary (de)serialization ---------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A plain-text sidecar format for module interface summaries, so sorts
/// inferred once at module design time (Stage 1) can ship alongside a
/// module — including opaque/encrypted IP whose internals are never
/// shared (Section 4's ascription scenario). One module per block:
///
/// \code
/// module fifo_fwd_w8_d4
///   input data_i to-port {data_o}
///   input v_i to-port {data_o, v_o}
///   input yumi_i to-sync indirect
///   output data_o from-port {data_i, v_i}
///   output v_o from-port {v_i}
///   output ready_o from-sync indirect
/// end
/// \endcode
///
/// Ports are referenced by name, making the files stable across wire-id
/// renumbering. parseSummaries() resolves them against the module's
/// interface and cross-checks the two directions for consistency (an
/// input's output-port-set must invert to the outputs' input-port-sets).
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_ANALYSIS_SUMMARYIO_H
#define WIRESORT_ANALYSIS_SUMMARYIO_H

#include "analysis/Summary.h"
#include "ir/Design.h"
#include "support/Diag.h"

#include <map>
#include <string>

namespace wiresort::analysis {

/// Serializes the summaries of every module of \p D present in
/// \p Summaries, in module-id order.
std::string writeSummaries(const ir::Design &D,
                           const std::map<ir::ModuleId, ModuleSummary>
                               &Summaries);

/// Parses summary blocks and resolves them against same-named modules of
/// \p D (modules absent from the text are simply not populated).
/// On malformed or inconsistent input the result carries a
/// WS221_SUMMARY_SYNTAX diagnostic whose location names \p FileName and
/// the offending line.
support::Expected<std::map<ir::ModuleId, ModuleSummary>>
parseSummaries(const std::string &Text, const ir::Design &D,
               const std::string &FileName = "");

} // namespace wiresort::analysis

#endif // WIRESORT_ANALYSIS_SUMMARYIO_H
