//===- analysis/SummaryIO.h - Summary (de)serialization ---------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A plain-text sidecar format for module interface summaries, so sorts
/// inferred once at module design time (Stage 1) can ship alongside a
/// module — including opaque/encrypted IP whose internals are never
/// shared (Section 4's ascription scenario). One module per block:
///
/// \code
/// module fifo_fwd_w8_d4
///   input data_i to-port {data_o}
///   input v_i to-port {data_o, v_o}
///   input yumi_i to-sync indirect
///   output data_o from-port {data_i, v_i}
///   output v_o from-port {v_i}
///   output ready_o from-sync indirect
/// end
/// \endcode
///
/// Ports are referenced by name, making the files stable across wire-id
/// renumbering. parseSummaries() resolves them against the module's
/// interface and cross-checks the two directions for consistency (an
/// input's output-port-set must invert to the outputs' input-port-sets).
///
/// The same information also travels as a wire-format binary stream
/// (writeSummariesBinary/readSummariesBinary — docs/FORMATS.md): one
/// checksummed ModuleSummary record per module, still name-based, a
/// fraction of the text parse cost. The two formats are sniffable by
/// their first byte (readSummariesAny) and round-trip byte-identically
/// through each other.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_ANALYSIS_SUMMARYIO_H
#define WIRESORT_ANALYSIS_SUMMARYIO_H

#include "analysis/Summary.h"
#include "ir/Design.h"
#include "support/Diag.h"
#include "support/Wire.h"

#include <map>
#include <string>

namespace wiresort::analysis {

/// Serializes the summaries of every module of \p D present in
/// \p Summaries, in module-id order.
std::string writeSummaries(const ir::Design &D,
                           const std::map<ir::ModuleId, ModuleSummary>
                               &Summaries);

/// Parses summary blocks and resolves them against same-named modules of
/// \p D (modules absent from the text are simply not populated).
/// On malformed or inconsistent input the result carries a
/// WS221_SUMMARY_SYNTAX diagnostic whose location names \p FileName and
/// the offending line.
support::Expected<std::map<ir::ModuleId, ModuleSummary>>
parseSummaries(const std::string &Text, const ir::Design &D,
               const std::string &FileName = "");

/// Serializes \p Summaries as a binary wire stream (wire format v1,
/// StreamKind::Summaries — docs/FORMATS.md): one name-based
/// ModuleSummary record per module in module-id order, every record
/// length-prefixed and FNV-1a-checksummed. Same information as
/// writeSummaries, a fraction of the parse cost.
std::string writeSummariesBinary(const ir::Design &D,
                                 const std::map<ir::ModuleId, ModuleSummary>
                                     &Summaries);

/// Inverse of writeSummariesBinary, resolving port names against \p D
/// with the same cross-checks as the text parser. Malformed framing,
/// checksum mismatches, truncation, and inconsistent summaries all
/// carry a WS221_SUMMARY_SYNTAX diagnostic naming \p FileName and the
/// damaged record's byte offset.
support::Expected<std::map<ir::ModuleId, ModuleSummary>>
readSummariesBinary(const std::string &Bytes, const ir::Design &D,
                    const std::string &FileName = "");

/// True when \p Bytes begins with the wire sniff byte (0xD7) — i.e. a
/// binary stream, never valid sidecar text.
bool isWireData(const std::string &Bytes);

/// Sniffs \p Bytes and dispatches to parseSummaries or
/// readSummariesBinary, so `.wsort` consumers accept either format.
support::Expected<std::map<ir::ModuleId, ModuleSummary>>
readSummariesAny(const std::string &Bytes, const ir::Design &D,
                 const std::string &FileName = "");

namespace detail {

/// The name-based module-summary body codec shared by ModuleSummary
/// records and CacheEntry payloads (docs/FORMATS.md). encode appends to
/// the writer's current record; decode resolves against \p D and runs
/// the same consistency cross-checks as the text parser, reporting the
/// failure in \p Why.
void encodeSummaryBody(support::wire::Writer &W, const ir::Module &M,
                       const ModuleSummary &S);
bool decodeSummaryBody(support::wire::Reader::Cursor &C,
                       const ir::Design &D, ModuleSummary &Out,
                       std::string &Why);

} // namespace detail

} // namespace wiresort::analysis

#endif // WIRESORT_ANALYSIS_SUMMARYIO_H
