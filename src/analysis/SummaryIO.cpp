//===- analysis/SummaryIO.cpp - Summary (de)serialization -----------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "analysis/SummaryIO.h"

#include "support/Wire.h"

#include <algorithm>
#include <optional>
#include <sstream>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

namespace {

const char *subSortSuffix(SubSort S) {
  switch (S) {
  case SubSort::Direct:
    return " direct";
  case SubSort::Indirect:
    return " indirect";
  case SubSort::None:
    return "";
  }
  return "";
}

void writePortSet(std::ostringstream &OS, const Module &M,
                  const std::vector<WireId> &Set) {
  OS << " {";
  for (size_t I = 0; I != Set.size(); ++I) {
    if (I)
      OS << ", ";
    OS << M.wire(Set[I]).Name;
  }
  OS << '}';
}

/// The direction cross-check both parsers share: every port must be
/// declared, output-port sets must name outputs only, and the declared
/// input-port set of each output must equal the inversion of the
/// input-side declarations. \returns a message on inconsistency.
std::optional<std::string> checkSummaryConsistency(const Module &M,
                                                   const ModuleSummary &S) {
  std::map<WireId, std::vector<WireId>> Inverted;
  for (WireId Out : M.Outputs)
    Inverted[Out] = {};
  for (const auto &[In, Outs] : S.OutputPortSets)
    for (WireId Out : Outs) {
      if (!Inverted.count(Out))
        return "module '" + M.Name +
               "': output-port-set names non-output wire";
      Inverted[Out].push_back(In);
    }
  for (auto &[Out, Ins] : Inverted)
    std::sort(Ins.begin(), Ins.end());
  for (WireId Out : M.Outputs) {
    auto It = S.InputPortSets.find(Out);
    if (It == S.InputPortSets.end())
      return "module '" + M.Name + "': output '" + M.wire(Out).Name +
             "' missing";
    if (It->second != Inverted[Out])
      return "module '" + M.Name + "': output '" + M.wire(Out).Name +
             "' set inconsistent with input declarations";
  }
  for (WireId In : M.Inputs)
    if (!S.OutputPortSets.count(In))
      return "module '" + M.Name + "': input '" + M.wire(In).Name +
             "' missing";
  return std::nullopt;
}

} // namespace

std::string
analysis::writeSummaries(const Design &D,
                         const std::map<ModuleId, ModuleSummary>
                             &Summaries) {
  std::ostringstream OS;
  for (const auto &[Id, Summary] : Summaries) {
    const Module &M = D.module(Id);
    OS << "module " << M.Name << '\n';
    for (WireId In : M.Inputs) {
      OS << "  input " << M.wire(In).Name << ' '
         << sortName(Summary.sortOf(In));
      if (Summary.sortOf(In) == Sort::ToPort)
        writePortSet(OS, M, Summary.outputPortSet(In));
      else
        OS << subSortSuffix(Summary.subSortOf(In));
      OS << '\n';
    }
    for (WireId Out : M.Outputs) {
      OS << "  output " << M.wire(Out).Name << ' '
         << sortName(Summary.sortOf(Out));
      if (Summary.sortOf(Out) == Sort::FromPort)
        writePortSet(OS, M, Summary.inputPortSet(Out));
      else
        OS << subSortSuffix(Summary.subSortOf(Out));
      OS << '\n';
    }
    OS << "end\n";
  }
  return OS.str();
}

support::Expected<std::map<ModuleId, ModuleSummary>>
analysis::parseSummaries(const std::string &Text, const Design &D,
                         const std::string &FileName) {
  std::map<ModuleId, ModuleSummary> Result;
  std::istringstream Stream(Text);
  std::string Line;
  size_t LineNo = 0;

  const Module *M = nullptr;
  ModuleId CurId = InvalidId;
  ModuleSummary Cur;

  auto fail = [&](const std::string &Msg) {
    return support::Diag(support::DiagCode::WS221_SUMMARY_SYNTAX, Msg)
        .withLoc(support::SrcLoc{FileName, LineNo, 0});
  };

  auto finishModule = [&]() -> std::optional<std::string> {
    if (!M)
      return std::nullopt;
    if (auto Err = checkSummaryConsistency(*M, Cur))
      return Err;
    Result[CurId] = std::move(Cur);
    M = nullptr;
    return std::nullopt;
  };

  while (std::getline(Stream, Line)) {
    ++LineNo;
    std::istringstream LS(Line);
    std::string Tok;
    if (!(LS >> Tok) || Tok[0] == '#')
      continue;

    if (Tok == "module") {
      if (M)
        return fail("missing 'end' before new module");
      std::string Name;
      if (!(LS >> Name))
        return fail("module expects a name");
      ModuleId Id = D.findModule(Name);
      if (Id == InvalidId)
        return fail("unknown module '" + Name + "'");
      M = &D.module(Id);
      CurId = Id;
      Cur = ModuleSummary();
      Cur.Id = Id;
      Cur.ModuleName = Name;
      continue;
    }
    if (Tok == "end") {
      if (!M)
        return fail("'end' without module");
      if (auto Err = finishModule())
        return fail(*Err);
      continue;
    }
    if (Tok != "input" && Tok != "output")
      return fail("expected input/output/module/end, got '" + Tok + "'");
    if (!M)
      return fail("port line outside a module block");

    bool IsInput = Tok == "input";
    std::string PortName, SortToken;
    if (!(LS >> PortName >> SortToken))
      return fail("port line expects a name and a sort");
    WireId Port = M->findPort(PortName);
    if (Port == InvalidId)
      return fail("module '" + M->Name + "' has no port '" + PortName +
                  "'");
    if (M->isInput(Port) != IsInput)
      return fail("port '" + PortName + "' direction mismatch");

    // Rest of line: either a subsort keyword or a {set}.
    std::string Rest;
    std::getline(LS, Rest);
    SubSort Sub = SubSort::None;
    std::vector<WireId> Set;
    size_t Open = Rest.find('{');
    if (Open != std::string::npos) {
      size_t Close = Rest.find('}', Open);
      if (Close == std::string::npos)
        return fail("unterminated port set");
      std::string Inner = Rest.substr(Open + 1, Close - Open - 1);
      std::replace(Inner.begin(), Inner.end(), ',', ' ');
      std::istringstream SetStream(Inner);
      std::string Member;
      while (SetStream >> Member) {
        WireId W = M->findPort(Member);
        if (W == InvalidId)
          return fail("unknown port '" + Member + "' in set");
        Set.push_back(W);
      }
      std::sort(Set.begin(), Set.end());
      Set.erase(std::unique(Set.begin(), Set.end()), Set.end());
    } else {
      std::istringstream SubStream(Rest);
      std::string SubTok;
      if (SubStream >> SubTok) {
        if (SubTok == "direct")
          Sub = SubSort::Direct;
        else if (SubTok == "indirect")
          Sub = SubSort::Indirect;
        else
          return fail("expected direct/indirect, got '" + SubTok + "'");
      }
    }

    if (IsInput) {
      if (SortToken == "to-sync") {
        if (!Set.empty())
          return fail("to-sync input must not carry a port set");
        Cur.OutputPortSets[Port] = {};
        Cur.SubSorts[Port] = Sub == SubSort::None ? SubSort::Indirect : Sub;
      } else if (SortToken == "to-port") {
        if (Set.empty())
          return fail("to-port input needs a nonempty port set");
        Cur.OutputPortSets[Port] = std::move(Set);
        Cur.SubSorts[Port] = SubSort::None;
      } else {
        return fail("input sort must be to-sync or to-port");
      }
    } else {
      if (SortToken == "from-sync") {
        if (!Set.empty())
          return fail("from-sync output must not carry a port set");
        Cur.InputPortSets[Port] = {};
        Cur.SubSorts[Port] = Sub == SubSort::None ? SubSort::Indirect : Sub;
      } else if (SortToken == "from-port") {
        if (Set.empty())
          return fail("from-port output needs a nonempty port set");
        Cur.InputPortSets[Port] = std::move(Set);
        Cur.SubSorts[Port] = SubSort::None;
      } else {
        return fail("output sort must be from-sync or from-port");
      }
    }
  }
  if (M)
    return fail("missing final 'end'");
  return Result;
}

// --- Binary format (wire format v1 — docs/FORMATS.md) -----------------------
//
// A ModuleSummary record is name-based like the text format, so binary
// sidecars survive wire-id renumbering too:
//
//   name str | nIn varint | per input: name str, tag byte (0 = port-set
//   sort, 1 = sync sort), then set (count + member strs) or subsort
//   byte | nOut varint | per output: same shape
//
// The same body encodes CacheEntry payloads (after the 8-byte key) —
// one codec for sidecar, cache, and any future socket transport.

namespace {

constexpr uint64_t SummariesPayloadVersion = 1;

} // namespace

namespace wiresort::analysis::detail {

void encodeSummaryBody(support::wire::Writer &W, const Module &M,
                       const ModuleSummary &S) {
  W.putString(M.Name);
  W.putVarint(M.Inputs.size());
  for (WireId In : M.Inputs) {
    W.putString(M.wire(In).Name);
    if (S.sortOf(In) == Sort::ToPort) {
      W.putByte(0);
      const std::vector<WireId> &Set = S.outputPortSet(In);
      W.putVarint(Set.size());
      for (WireId Member : Set)
        W.putString(M.wire(Member).Name);
    } else {
      W.putByte(1);
      W.putByte(static_cast<uint8_t>(S.subSortOf(In)));
    }
  }
  W.putVarint(M.Outputs.size());
  for (WireId Out : M.Outputs) {
    W.putString(M.wire(Out).Name);
    if (S.sortOf(Out) == Sort::FromPort) {
      W.putByte(0);
      const std::vector<WireId> &Set = S.inputPortSet(Out);
      W.putVarint(Set.size());
      for (WireId Member : Set)
        W.putString(M.wire(Member).Name);
    } else {
      W.putByte(1);
      W.putByte(static_cast<uint8_t>(S.subSortOf(Out)));
    }
  }
}

bool decodeSummaryBody(support::wire::Reader::Cursor &C, const Design &D,
                       ModuleSummary &Out, std::string &Why) {
  std::string_view Name;
  if (!C.getString(Name)) {
    Why = "truncated module name";
    return false;
  }
  ModuleId Id = D.findModule(std::string(Name));
  if (Id == InvalidId) {
    Why = "unknown module '" + std::string(Name) + "'";
    return false;
  }
  const Module &M = D.module(Id);
  Out = ModuleSummary();
  Out.Id = Id;
  Out.ModuleName = std::string(Name);

  auto decodePort = [&](bool IsInput) -> bool {
    std::string_view PortName;
    uint8_t Tag = 0;
    if (!C.getString(PortName) || !C.getByte(Tag) || Tag > 1) {
      Why = "malformed port entry";
      return false;
    }
    WireId Port = M.findPort(std::string(PortName));
    if (Port == InvalidId || M.isInput(Port) != IsInput) {
      Why = "module '" + M.Name + "' has no matching port '" +
            std::string(PortName) + "'";
      return false;
    }
    SubSort Sub = SubSort::None;
    std::vector<WireId> Set;
    if (Tag == 0) {
      uint64_t Count = 0;
      if (!C.getVarint(Count)) {
        Why = "truncated port set";
        return false;
      }
      if (Count == 0) {
        Why = "port-set sort needs a nonempty port set";
        return false;
      }
      Set.reserve(Count);
      for (uint64_t I = 0; I != Count; ++I) {
        std::string_view Member;
        if (!C.getString(Member)) {
          Why = "truncated port set";
          return false;
        }
        WireId W = M.findPort(std::string(Member));
        if (W == InvalidId) {
          Why = "unknown port '" + std::string(Member) + "' in set";
          return false;
        }
        Set.push_back(W);
      }
      std::sort(Set.begin(), Set.end());
      Set.erase(std::unique(Set.begin(), Set.end()), Set.end());
    } else {
      uint8_t SubByte = 0;
      if (!C.getByte(SubByte) || SubByte > 2) {
        Why = "malformed subsort";
        return false;
      }
      Sub = static_cast<SubSort>(SubByte);
      if (Sub == SubSort::None)
        Sub = SubSort::Indirect; // Sync sorts default like the text form.
    }
    if (IsInput) {
      Out.OutputPortSets[Port] = std::move(Set);
      Out.SubSorts[Port] = Tag == 0 ? SubSort::None : Sub;
    } else {
      Out.InputPortSets[Port] = std::move(Set);
      Out.SubSorts[Port] = Tag == 0 ? SubSort::None : Sub;
    }
    return true;
  };

  uint64_t NIn = 0;
  if (!C.getVarint(NIn) || NIn != M.Inputs.size()) {
    Why = "module '" + M.Name + "': input count mismatch";
    return false;
  }
  for (uint64_t I = 0; I != NIn; ++I)
    if (!decodePort(true))
      return false;
  uint64_t NOut = 0;
  if (!C.getVarint(NOut) || NOut != M.Outputs.size()) {
    Why = "module '" + M.Name + "': output count mismatch";
    return false;
  }
  for (uint64_t I = 0; I != NOut; ++I)
    if (!decodePort(false))
      return false;

  if (auto Err = checkSummaryConsistency(M, Out)) {
    Why = *Err;
    return false;
  }
  return true;
}

} // namespace wiresort::analysis::detail

bool analysis::isWireData(const std::string &Bytes) {
  return !Bytes.empty() &&
         static_cast<unsigned char>(Bytes[0]) == support::wire::SniffByte;
}

std::string
analysis::writeSummariesBinary(const Design &D,
                               const std::map<ModuleId, ModuleSummary>
                                   &Summaries) {
  support::wire::Writer W;
  W.beginStream(support::wire::StreamKind::Summaries,
                SummariesPayloadVersion);
  for (const auto &[Id, S] : Summaries) {
    W.beginRecord(support::wire::RecordKind::ModuleSummary);
    detail::encodeSummaryBody(W, D.module(Id), S);
    W.endRecord();
  }
  W.finish();
  return W.take();
}

support::Expected<std::map<ModuleId, ModuleSummary>>
analysis::readSummariesBinary(const std::string &Bytes, const Design &D,
                              const std::string &FileName) {
  using support::wire::Reader;
  auto fail = [&](const std::string &Msg, size_t Offset) {
    return support::Diag(support::DiagCode::WS221_SUMMARY_SYNTAX, Msg)
        .withLoc(support::SrcLoc{FileName, 0, 0})
        .withNote("offset", std::to_string(Offset));
  };

  Reader R(Bytes);
  std::string Why;
  if (!R.readHeader(&Why))
    return fail(Why, 0);

  std::map<ModuleId, ModuleSummary> Result;
  bool SawBegin = false;
  for (;;) {
    Reader::Record Rec;
    switch (R.next(Rec)) {
    case Reader::Item::End:
      return Result;
    case Reader::Item::Exhausted:
      return fail("summary stream ends without a StreamEnd record "
                  "(truncated)",
                  Bytes.size());
    case Reader::Item::Truncated:
      return fail("summary stream truncated mid-record", Bytes.size());
    case Reader::Item::Corrupt:
      return fail("summary record failed its checksum", Bytes.size());
    case Reader::Item::Record:
      break;
    }
    Reader::Cursor C(Rec, R);
    if (Rec.Kind == support::wire::RecordKind::StreamBegin) {
      uint8_t Kind = 0;
      uint64_t Version = 0;
      if (!C.getByte(Kind) ||
          Kind != static_cast<uint8_t>(
                      support::wire::StreamKind::Summaries) ||
          !C.getVarint(Version))
        return fail("not a summary stream", Rec.Offset);
      if (Version > SummariesPayloadVersion)
        return fail("summary payload version " + std::to_string(Version) +
                        " is newer than this build understands",
                    Rec.Offset);
      SawBegin = true;
      continue;
    }
    if (Rec.Kind != support::wire::RecordKind::ModuleSummary)
      continue; // Forward compat: skip unknown-but-intact records.
    if (!SawBegin)
      return fail("module record before StreamBegin", Rec.Offset);
    ModuleSummary S;
    if (!detail::decodeSummaryBody(C, D, S, Why))
      return fail(Why, Rec.Offset);
    Result[S.Id] = std::move(S);
  }
}

support::Expected<std::map<ModuleId, ModuleSummary>>
analysis::readSummariesAny(const std::string &Bytes, const Design &D,
                           const std::string &FileName) {
  if (isWireData(Bytes))
    return readSummariesBinary(Bytes, D, FileName);
  return parseSummaries(Bytes, D, FileName);
}
