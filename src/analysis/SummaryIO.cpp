//===- analysis/SummaryIO.cpp - Summary (de)serialization -----------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "analysis/SummaryIO.h"

#include <algorithm>
#include <optional>
#include <sstream>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

namespace {

const char *subSortSuffix(SubSort S) {
  switch (S) {
  case SubSort::Direct:
    return " direct";
  case SubSort::Indirect:
    return " indirect";
  case SubSort::None:
    return "";
  }
  return "";
}

void writePortSet(std::ostringstream &OS, const Module &M,
                  const std::vector<WireId> &Set) {
  OS << " {";
  for (size_t I = 0; I != Set.size(); ++I) {
    if (I)
      OS << ", ";
    OS << M.wire(Set[I]).Name;
  }
  OS << '}';
}

} // namespace

std::string
analysis::writeSummaries(const Design &D,
                         const std::map<ModuleId, ModuleSummary>
                             &Summaries) {
  std::ostringstream OS;
  for (const auto &[Id, Summary] : Summaries) {
    const Module &M = D.module(Id);
    OS << "module " << M.Name << '\n';
    for (WireId In : M.Inputs) {
      OS << "  input " << M.wire(In).Name << ' '
         << sortName(Summary.sortOf(In));
      if (Summary.sortOf(In) == Sort::ToPort)
        writePortSet(OS, M, Summary.outputPortSet(In));
      else
        OS << subSortSuffix(Summary.subSortOf(In));
      OS << '\n';
    }
    for (WireId Out : M.Outputs) {
      OS << "  output " << M.wire(Out).Name << ' '
         << sortName(Summary.sortOf(Out));
      if (Summary.sortOf(Out) == Sort::FromPort)
        writePortSet(OS, M, Summary.inputPortSet(Out));
      else
        OS << subSortSuffix(Summary.subSortOf(Out));
      OS << '\n';
    }
    OS << "end\n";
  }
  return OS.str();
}

support::Expected<std::map<ModuleId, ModuleSummary>>
analysis::parseSummaries(const std::string &Text, const Design &D,
                         const std::string &FileName) {
  std::map<ModuleId, ModuleSummary> Result;
  std::istringstream Stream(Text);
  std::string Line;
  size_t LineNo = 0;

  const Module *M = nullptr;
  ModuleId CurId = InvalidId;
  ModuleSummary Cur;

  auto fail = [&](const std::string &Msg) {
    return support::Diag(support::DiagCode::WS221_SUMMARY_SYNTAX, Msg)
        .withLoc(support::SrcLoc{FileName, LineNo, 0});
  };

  auto finishModule = [&]() -> std::optional<std::string> {
    if (!M)
      return std::nullopt;
    // Invert the input-side sets to fill any output sets not declared,
    // and cross-check declared output sets.
    std::map<WireId, std::vector<WireId>> Inverted;
    for (WireId Out : M->Outputs)
      Inverted[Out] = {};
    for (const auto &[In, Outs] : Cur.OutputPortSets)
      for (WireId Out : Outs) {
        if (!Inverted.count(Out))
          return "module '" + M->Name +
                 "': output-port-set names non-output wire";
        Inverted[Out].push_back(In);
      }
    for (auto &[Out, Ins] : Inverted)
      std::sort(Ins.begin(), Ins.end());
    for (WireId Out : M->Outputs) {
      auto It = Cur.InputPortSets.find(Out);
      if (It == Cur.InputPortSets.end())
        return "module '" + M->Name + "': output '" +
               M->wire(Out).Name + "' missing";
      if (It->second != Inverted[Out])
        return "module '" + M->Name + "': output '" +
               M->wire(Out).Name +
               "' set inconsistent with input declarations";
    }
    for (WireId In : M->Inputs)
      if (!Cur.OutputPortSets.count(In))
        return "module '" + M->Name + "': input '" + M->wire(In).Name +
               "' missing";
    Result[CurId] = std::move(Cur);
    M = nullptr;
    return std::nullopt;
  };

  while (std::getline(Stream, Line)) {
    ++LineNo;
    std::istringstream LS(Line);
    std::string Tok;
    if (!(LS >> Tok) || Tok[0] == '#')
      continue;

    if (Tok == "module") {
      if (M)
        return fail("missing 'end' before new module");
      std::string Name;
      if (!(LS >> Name))
        return fail("module expects a name");
      ModuleId Id = D.findModule(Name);
      if (Id == InvalidId)
        return fail("unknown module '" + Name + "'");
      M = &D.module(Id);
      CurId = Id;
      Cur = ModuleSummary();
      Cur.Id = Id;
      Cur.ModuleName = Name;
      continue;
    }
    if (Tok == "end") {
      if (!M)
        return fail("'end' without module");
      if (auto Err = finishModule())
        return fail(*Err);
      continue;
    }
    if (Tok != "input" && Tok != "output")
      return fail("expected input/output/module/end, got '" + Tok + "'");
    if (!M)
      return fail("port line outside a module block");

    bool IsInput = Tok == "input";
    std::string PortName, SortToken;
    if (!(LS >> PortName >> SortToken))
      return fail("port line expects a name and a sort");
    WireId Port = M->findPort(PortName);
    if (Port == InvalidId)
      return fail("module '" + M->Name + "' has no port '" + PortName +
                  "'");
    if (M->isInput(Port) != IsInput)
      return fail("port '" + PortName + "' direction mismatch");

    // Rest of line: either a subsort keyword or a {set}.
    std::string Rest;
    std::getline(LS, Rest);
    SubSort Sub = SubSort::None;
    std::vector<WireId> Set;
    size_t Open = Rest.find('{');
    if (Open != std::string::npos) {
      size_t Close = Rest.find('}', Open);
      if (Close == std::string::npos)
        return fail("unterminated port set");
      std::string Inner = Rest.substr(Open + 1, Close - Open - 1);
      std::replace(Inner.begin(), Inner.end(), ',', ' ');
      std::istringstream SetStream(Inner);
      std::string Member;
      while (SetStream >> Member) {
        WireId W = M->findPort(Member);
        if (W == InvalidId)
          return fail("unknown port '" + Member + "' in set");
        Set.push_back(W);
      }
      std::sort(Set.begin(), Set.end());
      Set.erase(std::unique(Set.begin(), Set.end()), Set.end());
    } else {
      std::istringstream SubStream(Rest);
      std::string SubTok;
      if (SubStream >> SubTok) {
        if (SubTok == "direct")
          Sub = SubSort::Direct;
        else if (SubTok == "indirect")
          Sub = SubSort::Indirect;
        else
          return fail("expected direct/indirect, got '" + SubTok + "'");
      }
    }

    if (IsInput) {
      if (SortToken == "to-sync") {
        if (!Set.empty())
          return fail("to-sync input must not carry a port set");
        Cur.OutputPortSets[Port] = {};
        Cur.SubSorts[Port] = Sub == SubSort::None ? SubSort::Indirect : Sub;
      } else if (SortToken == "to-port") {
        if (Set.empty())
          return fail("to-port input needs a nonempty port set");
        Cur.OutputPortSets[Port] = std::move(Set);
        Cur.SubSorts[Port] = SubSort::None;
      } else {
        return fail("input sort must be to-sync or to-port");
      }
    } else {
      if (SortToken == "from-sync") {
        if (!Set.empty())
          return fail("from-sync output must not carry a port set");
        Cur.InputPortSets[Port] = {};
        Cur.SubSorts[Port] = Sub == SubSort::None ? SubSort::Indirect : Sub;
      } else if (SortToken == "from-port") {
        if (Set.empty())
          return fail("from-port output needs a nonempty port set");
        Cur.InputPortSets[Port] = std::move(Set);
        Cur.SubSorts[Port] = SubSort::None;
      } else {
        return fail("output sort must be from-sync or from-port");
      }
    }
  }
  if (M)
    return fail("missing final 'end'");
  return Result;
}
