//===- analysis/MemoryChecks.cpp - Sync-memory composition rules ----------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "analysis/MemoryChecks.h"

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

support::DiagList
analysis::checkMemoryContracts(const Circuit &Circ,
                               const std::map<ModuleId, ModuleSummary>
                                   &Summaries) {
  support::DiagList Violations;

  auto report = [&](const Connection &C, std::string Msg) {
    Violations.add(
        support::Diag(support::DiagCode::WS104_CONTRACT_VIOLATION,
                      std::move(Msg))
            .withHop(Circ.instances()[C.From.Inst].Name,
                     Circ.defOf(C.From.Inst).wire(C.From.Port).Name)
            .withHop(Circ.instances()[C.To.Inst].Name,
                     Circ.defOf(C.To.Inst).wire(C.To.Port).Name));
  };

  for (const Connection &C : Circ.connections()) {
    const Module &FromDef = Circ.defOf(C.From.Inst);
    const Module &ToDef = Circ.defOf(C.To.Inst);
    const ModuleSummary &FromSummary =
        Summaries.at(Circ.instances()[C.From.Inst].Def);
    const ModuleSummary &ToSummary =
        Summaries.at(Circ.instances()[C.To.Inst].Def);

    // The input side demands a from-sync-direct driver (Figure 8: the
    // read address line of a synchronous memory).
    for (const PortContract &Contract : ToDef.Contracts) {
      if (Contract.Port != C.To.Port || !Contract.RequireDriverFromSyncDirect)
        continue;
      bool Ok = FromSummary.sortOf(C.From.Port) == Sort::FromSync &&
                FromSummary.subSortOf(C.From.Port) == SubSort::Direct;
      if (!Ok)
        report(C, "input '" + Circ.portLabel(C.To) +
                      "' requires a from-sync-direct driver but '" +
                      Circ.portLabel(C.From) + "' is not");
    }

    // The output side demands a to-sync-direct sink (memories whose read
    // data must be fed directly into a register).
    for (const PortContract &Contract : FromDef.Contracts) {
      if (Contract.Port != C.From.Port || !Contract.RequireSinkToSyncDirect)
        continue;
      bool Ok = ToSummary.sortOf(C.To.Port) == Sort::ToSync &&
                ToSummary.subSortOf(C.To.Port) == SubSort::Direct;
      if (!Ok)
        report(C, "output '" + Circ.portLabel(C.From) +
                      "' requires a to-sync-direct sink but '" +
                      Circ.portLabel(C.To) + "' is not");
    }
  }
  return Violations;
}
