//===- analysis/SummaryEngine.cpp - Parallel cached Stage-1 ---------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "analysis/SummaryEngine.h"

#include "analysis/SummaryIO.h"
#include "ir/StructuralHash.h"
#include "support/FailPoint.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

// --- SummaryCache -----------------------------------------------------------

std::optional<ModuleSummary>
SummaryCache::lookup(uint64_t Key, ModuleId Id, const std::string &Name) {
  static trace::Counter &HitCounter = trace::counter("engine.cache_hits");
  static trace::Counter &MissCounter =
      trace::counter("engine.cache_misses");
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    ++Misses;
    MissCounter.add();
    return std::nullopt;
  }
  ++Hits;
  HitCounter.add();
  ModuleSummary S = It->second;
  // Content addressing is design-independent; only the owning design's
  // module id (and, pedantically, the name) need rebinding.
  S.Id = Id;
  S.ModuleName = Name;
  return S;
}

void SummaryCache::insert(uint64_t Key, const ModuleSummary &S) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.emplace(Key, S);
}

size_t SummaryCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}

void SummaryCache::resetCounters() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Hits = Misses = 0;
}

void SummaryCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.clear();
  Hits = Misses = 0;
}

// --- Cache keys -------------------------------------------------------------

namespace {

/// Content hash of a summary, used to key ascribed modules (whose bodies
/// are opaque — the summary IS the content).
uint64_t summaryContentHash(const ModuleSummary &S) {
  uint64_t H = 0x5ca1ab1e;
  for (const auto &[In, Outs] : S.OutputPortSets) {
    H = hashCombine(H, In);
    for (WireId Out : Outs)
      H = hashCombine(H, Out);
    H = hashCombine(H, 0xffffffffULL); // Set delimiter.
  }
  for (const auto &[Out, Ins] : S.InputPortSets) {
    H = hashCombine(H, Out);
    for (WireId In : Ins)
      H = hashCombine(H, In);
    H = hashCombine(H, 0xffffffffULL);
  }
  for (const auto &[Port, Sub] : S.SubSorts)
    H = hashCombine(H, (uint64_t(Port) << 8) | uint64_t(Sub));
  return H;
}

/// FNV-1a 64 of \p Text — the per-record checksum of cache format v2
/// (docs/ROBUSTNESS.md). Not cryptographic; it catches the failure mode
/// a cache actually has (torn writes, bit rot, hand edits), cheaply.
uint64_t recordChecksum(const std::string &Text) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : Text) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

/// Runs inference for one module with panic containment: a throw —
/// injected via the engine.module.throw failpoint or genuine — becomes a
/// WS604_WORKER_PANIC diagnostic attributed to the module, instead of
/// unwinding into the pool (worst case std::terminate).
InferenceResult
inferContained(const Design &D, ModuleId Id,
               const std::map<ModuleId, ModuleSummary> &Subs,
               const support::Deadline *DL, bool &Panicked) {
  auto panic = [&](const char *What) {
    Panicked = true;
    return support::Diag(support::DiagCode::WS604_WORKER_PANIC,
                         "worker panic while summarizing module '" +
                             D.module(Id).Name + "'")
        .withNote("module", D.module(Id).Name)
        .withNote("what", What);
  };
  try {
    if (WS_FAILPOINT("engine.module.throw"))
      throw std::runtime_error("injected fault: engine.module.throw");
    return inferSummary(D, Id, Subs, DL);
  } catch (const std::exception &E) {
    return panic(E.what());
  } catch (...) {
    return panic("unknown exception");
  }
}

/// Scheduler state for one analyze() call. All mutable members are
/// guarded by Mutex once the parallel phase starts; Out is pre-populated
/// with every module id so tasks read/write disjoint mapped values
/// without ever mutating the map structure.
struct Run {
  const Design &D;
  const std::map<ModuleId, ModuleSummary> &Ascribed;
  std::map<ModuleId, ModuleSummary> &Out;
  SummaryCache *Cache; // Null when the cache is disabled.
  const std::vector<uint64_t> &Keys;

  enum class State : uint8_t {
    Waiting,
    Done,
    Looped,
    Skipped,
    Cancelled, ///< Abandoned to the deadline (or an injected cancel).
    Panicked,  ///< Worker threw; contained as WS604.
  };

  std::vector<State> States;
  std::vector<uint32_t> DepsLeft;
  std::vector<std::vector<ModuleId>> Dependents;
  /// Per-module diagnostics (loops, panics; empty for clean modules).
  /// Indexed by module id, which is also the order the final list is
  /// emitted in — the thread schedule can never reorder it.
  std::vector<support::DiagList> Loops;
  size_t Hits = 0, Inferred = 0, AscribedCount = 0;
  /// Latched once the deadline fires (or engine.cancel injects); from
  /// then on no new module starts. Guarded by Mutex.
  bool CancelFlag = false;

  std::mutex Mutex;

  Run(const Design &D, const std::map<ModuleId, ModuleSummary> &Ascribed,
      std::map<ModuleId, ModuleSummary> &Out, SummaryCache *Cache,
      const std::vector<uint64_t> &Keys)
      : D(D), Ascribed(Ascribed), Out(Out), Cache(Cache), Keys(Keys) {}

  /// Distinct instantiated definitions of module \p Id.
  static std::vector<ModuleId> depsOf(const Module &M) {
    std::vector<ModuleId> Deps;
    for (const SubInstance &Inst : M.Instances)
      Deps.push_back(Inst.Def);
    std::sort(Deps.begin(), Deps.end());
    Deps.erase(std::unique(Deps.begin(), Deps.end()), Deps.end());
    return Deps;
  }

  /// Polls deadline + injected cancellation, latching CancelFlag. Caller
  /// holds Mutex.
  bool checkCancel(const support::Deadline &DL) {
    if (CancelFlag)
      return true;
    if (DL.expired() || WS_FAILPOINT("engine.cancel"))
      CancelFlag = true;
    return CancelFlag;
  }

  /// How a module was resolved without running inference.
  enum class Cheap : uint8_t { No, Ascribed, Hit };

  /// Resolves \p Id without inference (ascription or cache hit) if
  /// possible. Caller holds Mutex.
  Cheap tryResolveCheaply(ModuleId Id) {
    auto AscIt = Ascribed.find(Id);
    if (AscIt != Ascribed.end()) {
      Out[Id] = AscIt->second;
      ++AscribedCount;
      return Cheap::Ascribed;
    }
    if (Cache) {
      if (auto Hit =
              Cache->lookup(Keys[Id], Id, D.module(Id).Name)) {
        Out[Id] = std::move(*Hit);
        ++Hits;
        return Cheap::Hit;
      }
    }
    return Cheap::No;
  }

  /// Marks \p Id finished and returns the dependents that became ready.
  /// Caller holds Mutex.
  std::vector<ModuleId> finish(ModuleId Id, State S) {
    States[Id] = S;
    std::vector<ModuleId> Ready;
    for (ModuleId Dep : Dependents[Id]) {
      // A dependent of an unsummarizable module can never be summarized
      // itself. Cancellation taints transitively as Cancelled (so the
      // WS601 tally reflects everything the deadline cost); any other
      // failure taints as Skipped (the root cause is already reported).
      if (S == State::Cancelled)
        States[Dep] = State::Cancelled;
      else if (S != State::Done && States[Dep] != State::Cancelled)
        States[Dep] = State::Skipped;
      if (--DepsLeft[Dep] == 0)
        Ready.push_back(Dep);
    }
    return Ready;
  }
};

} // namespace

// --- SummaryEngine ----------------------------------------------------------

std::vector<uint64_t>
SummaryEngine::computeKeys(const Design &D,
                           const std::map<ModuleId, ModuleSummary> &Ascribed) {
  // Cache keys, serially in dependency order (cheap: one hash pass over
  // the design). A module's key folds the keys of its instantiated
  // definitions in instance order, so content addressing is transitive.
  std::optional<std::vector<ModuleId>> Order = D.topologicalModuleOrder();
  assert(Order && "module instantiation must be acyclic");
  std::vector<uint64_t> Keys(D.numModules(), 0);
  for (ModuleId Id : *Order) {
    auto AscIt = Ascribed.find(Id);
    if (AscIt != Ascribed.end()) {
      Keys[Id] = hashCombine(0xa5c81bed, summaryContentHash(AscIt->second));
      continue;
    }
    const Module &M = D.module(Id);
    uint64_t Key = structuralHash(M);
    for (const SubInstance &Inst : M.Instances)
      Key = hashCombine(Key, Keys[Inst.Def]);
    Keys[Id] = Key;
  }
  return Keys;
}

const std::vector<uint64_t> &
SummaryEngine::primeKeys(const Design &D,
                         const std::map<ModuleId, ModuleSummary> &Ascribed) {
  Keys = computeKeys(D, Ascribed);
  return Keys;
}

support::Status
SummaryEngine::analyze(const Design &D,
                       std::map<ModuleId, ModuleSummary> &Out,
                       const std::map<ModuleId, ModuleSummary> &Ascribed) {
  return analyze(D, Out, Ascribed,
                 LegacyTimeoutMs != 0
                     ? support::Deadline::afterMs(LegacyTimeoutMs)
                     : support::Deadline());
}

support::Status
SummaryEngine::analyze(const Design &D,
                       std::map<ModuleId, ModuleSummary> &Out,
                       const std::map<ModuleId, ModuleSummary> &Ascribed,
                       const support::Deadline &DL) {
  AnalyzeOutcome Outcome;
  support::Status Verdict = analyzeShared(D, Out, Ascribed, DL, Outcome);
  Stats = Outcome.Stats;
  Keys = std::move(Outcome.Keys);
  return Verdict;
}

support::Status
SummaryEngine::analyzeShared(const Design &D,
                             std::map<ModuleId, ModuleSummary> &Out,
                             const std::map<ModuleId, ModuleSummary> &Ascribed,
                             const support::Deadline &DL,
                             AnalyzeOutcome &Outcome) {
  Timer T;
  // Everything below writes through these aliases; no engine member is
  // touched except the thread-safe Cache, keeping this path re-entrant.
  EngineStats &Stats = Outcome.Stats;
  Stats = EngineStats();
  Stats.Modules = D.numModules();

  trace::Span AnalyzeSpan("engine.analyze", "engine");
  AnalyzeSpan.note("modules", static_cast<uint64_t>(D.numModules()));
  // Registry mirrors of EngineStats (docs/OBSERVABILITY.md). The cache
  // hit/miss counters live in SummaryCache::lookup.
  static trace::Histogram &InferUs = trace::histogram("engine.infer_us");
  static trace::Counter &ModulesC = trace::counter("engine.modules");
  static trace::Counter &InferredC = trace::counter("engine.inferred");
  static trace::Counter &AscribedC = trace::counter("engine.ascribed");
  static trace::Counter &CancelledC =
      trace::counter("fault.cancelled_modules");

  std::optional<std::vector<ModuleId>> Order =
      D.topologicalModuleOrder();
  assert(Order && "module instantiation must be acyclic");

  Outcome.Keys = computeKeys(D, Ascribed);
  const std::vector<uint64_t> &Keys = Outcome.Keys;

  // --- Scheduler state.
  Out.clear();
  for (ModuleId Id = 0; Id != D.numModules(); ++Id)
    Out[Id]; // Pre-insert every slot: map structure stays frozen below.

  Run R(D, Ascribed, Out, Cfg.UseCache ? &Cache : nullptr, Keys);
  R.States.assign(D.numModules(), Run::State::Waiting);
  R.DepsLeft.assign(D.numModules(), 0);
  R.Dependents.assign(D.numModules(), {});
  R.Loops.assign(D.numModules(), {});
  for (ModuleId Id = 0; Id != D.numModules(); ++Id) {
    std::vector<ModuleId> Deps = Run::depsOf(D.module(Id));
    R.DepsLeft[Id] = static_cast<uint32_t>(Deps.size());
    for (ModuleId Dep : Deps)
      R.Dependents[Dep].push_back(Id);
  }

  unsigned Threads = Cfg.Threads != 0
                         ? Cfg.Threads
                         : std::max(1u, std::thread::hardware_concurrency());
  Stats.ThreadsUsed = Threads;

  const support::Deadline *DLPtr = DL.active() ? &DL : nullptr;
  std::vector<std::exception_ptr> Escaped;

  // Folds one inference result into the scheduler. Caller holds R.Mutex;
  // returns the dependents that became ready.
  auto settle = [&](ModuleId Id, InferenceResult &Result,
                    bool Panicked) -> std::vector<ModuleId> {
    if (Result) {
      ModuleSummary &S = *Result;
      if (R.Cache)
        R.Cache->insert(Keys[Id], S);
      R.Out[Id] = std::move(S);
      ++R.Inferred;
      return R.finish(Id, Run::State::Done);
    }
    if (Panicked) {
      R.Loops[Id] = Result.diags();
      return R.finish(Id, Run::State::Panicked);
    }
    if (Result.diags().firstError().code() ==
        support::DiagCode::WS601_CANCELLED) {
      // Inference noticed the deadline mid-module; the module is
      // abandoned, not failed — the one WS601 appended to the verdict
      // covers it.
      R.CancelFlag = true;
      return R.finish(Id, Run::State::Cancelled);
    }
    R.Loops[Id] = Result.diags();
    return R.finish(Id, Run::State::Looped);
  };

  if (Threads <= 1) {
    // Serial path: plain topological sweep, no pool, no locking beyond
    // the shared helpers' discipline. Kept separate both as the baseline
    // the determinism suite compares against and because it is what a
    // 1-thread engine should cost.
    for (ModuleId Id : *Order) {
      if (R.States[Id] == Run::State::Skipped) {
        R.finish(Id, Run::State::Skipped); // Propagate to dependents.
        continue;
      }
      if (R.States[Id] == Run::State::Cancelled || R.checkCancel(DL)) {
        R.finish(Id, Run::State::Cancelled);
        continue;
      }
      trace::Span MSpan("engine.module", "engine");
      MSpan.note("module", D.module(Id).Name);
      if (Run::Cheap C = R.tryResolveCheaply(Id); C != Run::Cheap::No) {
        MSpan.note("result", C == Run::Cheap::Hit ? "hit" : "ascribed");
        R.finish(Id, Run::State::Done);
        continue;
      }
      Timer InferTimer;
      bool Panicked = false;
      InferenceResult Result =
          inferContained(D, Id, Out, DLPtr, Panicked);
      InferUs.record(
          static_cast<uint64_t>(InferTimer.seconds() * 1e6));
      MSpan.note("result", Result ? "miss"
                                  : (Panicked ? "panic" : "loop"));
      settle(Id, Result, Panicked);
    }
  } else {
    ThreadPool Pool(Threads);

    // Submitting a module either resolves it on the spot (ascribed /
    // cache hit / already-skipped / cancelled) or hands inference to the
    // pool; the completion path re-enters schedule() for the dependents
    // it releases. The worklist keeps resolution iterative: a chain of a
    // thousand cache hits must not recurse a thousand frames deep.
    std::function<void(std::vector<ModuleId>)> schedule =
        [&](std::vector<ModuleId> Work) {
          std::vector<ModuleId> ToInfer;
          {
            std::lock_guard<std::mutex> Lock(R.Mutex);
            while (!Work.empty()) {
              ModuleId Id = Work.back();
              Work.pop_back();
              if (R.States[Id] == Run::State::Skipped) {
                std::vector<ModuleId> Ready =
                    R.finish(Id, Run::State::Skipped);
                Work.insert(Work.end(), Ready.begin(), Ready.end());
                continue;
              }
              if (R.States[Id] == Run::State::Cancelled ||
                  R.checkCancel(DL)) {
                std::vector<ModuleId> Ready =
                    R.finish(Id, Run::State::Cancelled);
                Work.insert(Work.end(), Ready.begin(), Ready.end());
                continue;
              }
              if (Run::Cheap C = R.tryResolveCheaply(Id);
                  C != Run::Cheap::No) {
                // Zero-width marker span: cheap resolutions cost ~no
                // time but still show up in the trace with their
                // hit/ascribed attribute.
                trace::Span CheapSpan("engine.module", "engine");
                CheapSpan.note("module", R.D.module(Id).Name)
                    .note("result",
                          C == Run::Cheap::Hit ? "hit" : "ascribed");
                std::vector<ModuleId> Ready =
                    R.finish(Id, Run::State::Done);
                Work.insert(Work.end(), Ready.begin(), Ready.end());
                continue;
              }
              ToInfer.push_back(Id);
            }
          }
          for (ModuleId Id : ToInfer)
            Pool.submit([&, Id] {
              // The module may have been queued before a cancel latched;
              // re-check at task start so a timed-out run drains fast.
              {
                std::vector<ModuleId> Ready;
                bool CancelledHere = false;
                {
                  std::lock_guard<std::mutex> Lock(R.Mutex);
                  if (R.States[Id] == Run::State::Cancelled ||
                      R.checkCancel(DL)) {
                    Ready = R.finish(Id, Run::State::Cancelled);
                    CancelledHere = true;
                  }
                }
                if (CancelledHere) {
                  if (!Ready.empty())
                    schedule(std::move(Ready));
                  return;
                }
              }
              trace::Span MSpan("engine.module", "engine");
              MSpan.note("module", R.D.module(Id).Name);
              // Reads dep slots of Out; they were written before this
              // task was submitted (happens-before via R.Mutex and the
              // pool queue), and the map structure is frozen.
              Timer InferTimer;
              bool Panicked = false;
              InferenceResult Result =
                  inferContained(R.D, Id, R.Out, DLPtr, Panicked);
              InferUs.record(
                  static_cast<uint64_t>(InferTimer.seconds() * 1e6));
              MSpan.note("result",
                         Result ? "miss" : (Panicked ? "panic" : "loop"));
              std::vector<ModuleId> Ready;
              {
                std::lock_guard<std::mutex> Lock(R.Mutex);
                Ready = settle(Id, Result, Panicked);
              }
              if (!Ready.empty())
                schedule(std::move(Ready));
            });
        };

    std::vector<ModuleId> Roots;
    for (ModuleId Id = 0; Id != D.numModules(); ++Id)
      if (R.DepsLeft[Id] == 0)
        Roots.push_back(Id);
    schedule(std::move(Roots));
    Pool.wait();
    Escaped = Pool.drainExceptions();
  }

  // --- Verdict: every failed module's diagnostics, in module-id order —
  // --- the same list serial analyzeDesign emits, whatever the schedule.
  support::Status Verdict;
  for (ModuleId Id = 0; Id != D.numModules(); ++Id)
    Verdict.append(R.Loops[Id]);

  // Backstop: the engine contains throws per-module, so nothing should
  // reach the pool's catch-all; if something does (a throw outside
  // inferContained), it is still a structured error, not a terminate.
  for (std::exception_ptr &P : Escaped) {
    const char *What = "unknown exception";
    try {
      std::rethrow_exception(P);
    } catch (const std::exception &E) {
      What = E.what();
      Verdict.add(support::Diag(support::DiagCode::WS604_WORKER_PANIC,
                                "worker panic escaped containment")
                      .withNote("what", What));
      continue;
    } catch (...) {
    }
    Verdict.add(support::Diag(support::DiagCode::WS604_WORKER_PANIC,
                              "worker panic escaped containment")
                    .withNote("what", What));
  }

  size_t DoneCount = 0, CancelledCount = 0, PanickedCount = 0;
  for (ModuleId Id = 0; Id != D.numModules(); ++Id) {
    switch (R.States[Id]) {
    case Run::State::Done:
      ++DoneCount;
      break;
    case Run::State::Cancelled:
      ++CancelledCount;
      break;
    case Run::State::Panicked:
      ++PanickedCount;
      break;
    default:
      break;
    }
  }
  if (R.CancelFlag || CancelledCount != 0) {
    CancelledC.add(CancelledCount);
    Verdict.add(
        support::Diag(support::DiagCode::WS601_CANCELLED,
                      "analysis cancelled before completion")
            .withNote("completed", std::to_string(DoneCount))
            .withNote("cancelled", std::to_string(CancelledCount))
            .withNote("modules", std::to_string(D.numModules())));
  }

  // Unresolved slots (failed/cancelled modules and their transitive
  // dependents) must not leak placeholder summaries; completed modules
  // survive even in a cancelled run (partial progress warms the cache).
  for (ModuleId Id = 0; Id != D.numModules(); ++Id)
    if (R.States[Id] != Run::State::Done)
      Out.erase(Id);

  Stats.CacheHits = R.Hits;
  Stats.Inferred = R.Inferred;
  Stats.Ascribed = R.AscribedCount;
  Stats.Cancelled = CancelledCount;
  Stats.Panicked = PanickedCount;
  Stats.Seconds = T.seconds();
  ModulesC.add(Stats.Modules);
  InferredC.add(Stats.Inferred);
  AscribedC.add(Stats.Ascribed);
  return Verdict;
}

// --- Disk persistence -------------------------------------------------------

namespace {

/// Cache payload schema version carried by the StreamBegin record.
/// v1/v2 were the text sidecar formats; v3 is the first binary one.
constexpr uint64_t CachePayloadVersion = 3;

/// Composes a cache-v3 wire stream: StreamBegin(Cache, 3), then one
/// CacheEntry record (8-byte key + name-based summary body) per entry,
/// then StreamEnd. The framing's FNV-1a record checksums replace the
/// v2 "# key" checksum lines.
std::string
composeCachePayload(const Design &D,
                    const std::vector<std::pair<uint64_t,
                                                const ModuleSummary *>>
                        &Entries) {
  support::wire::Writer W;
  W.beginStream(support::wire::StreamKind::Cache, CachePayloadVersion);
  for (const auto &[Key, S] : Entries) {
    W.beginRecord(support::wire::RecordKind::CacheEntry);
    W.putFixed64(Key);
    analysis::detail::encodeSummaryBody(W, D.module(S->Id), *S);
    W.endRecord();
  }
  W.finish();
  return W.take();
}

/// The crash-safe atomic write shared by saveCache and the v2→v3
/// migration: compose in memory, write Path+".tmp", fsync, rename.
/// \p PartialSite is the torn-write crash failpoint for this caller
/// ("cache.save.partial" / "cache.migrate.partial") — it writes half
/// the payload and dies without the rename, so Path keeps its previous
/// content (CrashRecoveryTest's property).
support::Status atomicWriteCache(const std::string &Path,
                                 const std::string &Payload,
                                 const char *PartialSite) {
  static trace::Counter &RetriesC = trace::counter("fault.retries");
  const std::string Tmp = Path + ".tmp";

  auto ioFail = [](const char *Op, const std::string &P) {
    return support::Diag(support::DiagCode::WS602_CACHE_IO,
                         std::string("cannot save summary cache: ") + Op +
                             " failed",
                         support::Severity::Warning)
        .withNote("path", P)
        .withNote("detail", std::strerror(errno));
  };

  // Transient failures retry with backoff; persistent ones degrade to a
  // warning (the verdict never depends on the cache).
  support::Status LastFailure;
  for (int Attempt = 0; Attempt != 3; ++Attempt) {
    if (Attempt != 0) {
      RetriesC.add();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(1u << Attempt));
    }

    int Fd;
    if (WS_FAILPOINT("cache.save.open")) {
      errno = EIO;
      Fd = -1;
    } else {
      Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    }
    if (Fd < 0) {
      LastFailure = ioFail("open", Tmp);
      continue;
    }

    // Crash simulation: write a torn prefix and die without the rename.
    // The recovery property (CrashRecoveryTest) is that Path still
    // holds the previous cache — the torn bytes only ever live in .tmp.
    if (support::failpoint::site(PartialSite).shouldFire()) {
      (void)!::write(Fd, Payload.data(), Payload.size() / 2);
      ::_exit(125);
    }

    bool WriteFailed = false;
    size_t Off = 0;
    while (Off != Payload.size()) {
      if (WS_FAILPOINT("cache.save.write")) {
        errno = EIO;
        WriteFailed = true;
        break;
      }
      ssize_t N =
          ::write(Fd, Payload.data() + Off, Payload.size() - Off);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        WriteFailed = true;
        break;
      }
      Off += static_cast<size_t>(N);
    }
    if (WriteFailed) {
      LastFailure = ioFail("write", Tmp);
      ::close(Fd);
      ::unlink(Tmp.c_str());
      continue;
    }

    int FsyncRc;
    if (WS_FAILPOINT("cache.save.fsync")) {
      errno = EIO;
      FsyncRc = -1;
    } else {
      FsyncRc = ::fsync(Fd);
    }
    if (FsyncRc != 0) {
      LastFailure = ioFail("fsync", Tmp);
      ::close(Fd);
      ::unlink(Tmp.c_str());
      continue;
    }
    if (::close(Fd) != 0) {
      LastFailure = ioFail("close", Tmp);
      ::unlink(Tmp.c_str());
      continue;
    }

    int RenameRc;
    if (WS_FAILPOINT("cache.save.rename")) {
      errno = EIO;
      ::unlink(Tmp.c_str());
      RenameRc = -1;
    } else {
      RenameRc = ::rename(Tmp.c_str(), Path.c_str());
    }
    if (RenameRc != 0) {
      LastFailure = ioFail("rename", Path);
      ::unlink(Tmp.c_str());
      continue;
    }
    return {};
  }
  return LastFailure;
}

} // namespace

support::Status SummaryEngine::saveCache(
    const std::string &Path, const Design &D,
    const std::map<ModuleId, ModuleSummary> &Summaries) const {
  return saveCache(Path, D, Summaries, Keys);
}

support::Status SummaryEngine::saveCache(
    const std::string &Path, const Design &D,
    const std::map<ModuleId, ModuleSummary> &Summaries,
    const std::vector<uint64_t> &Keys) const {
  std::vector<std::pair<uint64_t, const ModuleSummary *>> Entries;
  Entries.reserve(Summaries.size());
  for (const auto &[Id, S] : Summaries)
    if (Id < Keys.size())
      Entries.emplace_back(Keys[Id], &S);
  return atomicWriteCache(Path, composeCachePayload(D, Entries),
                          "cache.save.partial");
}

support::Expected<CacheLoadResult>
SummaryEngine::loadCache(const std::string &Path, const Design &D) {
  static trace::Counter &QuarantinedC =
      trace::counter("fault.quarantined_records");
  CacheLoadResult Res;

  std::ifstream File(Path);
  if (!File)
    return Res; // Cold start: a missing sidecar is not an error.
  if (WS_FAILPOINT("cache.load.read")) {
    // Injected unreadable file: degrade to a cold start with a warning,
    // exactly like a real EIO mid-read would.
    Res.Warnings.add(
        support::Diag(support::DiagCode::WS602_CACHE_IO,
                      "cannot read summary cache; starting cold",
                      support::Severity::Warning)
            .withNote("path", Path)
            .withNote("detail", "injected fault: cache.load.read"));
    return Res;
  }
  std::stringstream SS;
  SS << File.rdbuf();
  std::string Text = SS.str();

  // --- Binary path (cache v3, the current format) ---------------------
  // The sniff byte distinguishes a wire stream from sidecar text
  // unambiguously: 0xD7 can never start a text cache. Framing damage
  // (bad checksum, truncation) quarantines the rest of the stream — a
  // length prefix after a corrupt frame cannot be trusted, so unlike
  // the line-oriented v2 loader there is no per-record resync.
  if (isWireData(Text)) {
    support::wire::Reader R(Text);
    std::string Why;
    auto formatError = [&](const std::string &Msg) {
      return support::Diag(support::DiagCode::WS502_CACHE_FORMAT, Msg)
          .withLoc(support::SrcLoc{Path, 0, 0});
    };
    if (!R.readHeader(&Why))
      return formatError("not a loadable summary cache: " + Why);

    auto quarantineRest = [&](size_t Offset, const std::string &Reason) {
      ++Res.Quarantined;
      QuarantinedC.add();
      Res.Warnings.add(
          support::Diag(support::DiagCode::WS603_CACHE_CORRUPT,
                        "corrupt cache stream quarantined from damaged "
                        "record onward; affected modules will be "
                        "re-inferred",
                        support::Severity::Warning)
              .withLoc(support::SrcLoc{Path, 0, 0})
              .withNote("offset", std::to_string(Offset))
              .withNote("detail", Reason));
    };

    bool SawBegin = false;
    for (;;) {
      support::wire::Reader::Record Rec;
      switch (R.next(Rec)) {
      case support::wire::Reader::Item::End:
        return Res;
      case support::wire::Reader::Item::Exhausted:
        quarantineRest(Rec.Offset, "stream truncated before StreamEnd");
        return Res;
      case support::wire::Reader::Item::Truncated:
        quarantineRest(Rec.Offset, "record truncated");
        return Res;
      case support::wire::Reader::Item::Corrupt:
        quarantineRest(Rec.Offset, "record checksum mismatch");
        return Res;
      case support::wire::Reader::Item::Record:
        break;
      }
      if (Rec.Kind == support::wire::RecordKind::StreamBegin) {
        support::wire::Reader::Cursor C(Rec, R);
        uint8_t Kind = 0;
        uint64_t Version = 0;
        if (!C.getByte(Kind) || !C.getVarint(Version) ||
            Kind != static_cast<uint8_t>(support::wire::StreamKind::Cache))
          return formatError(
              "not a summary cache stream (wrong stream kind)");
        if (Version > CachePayloadVersion)
          return formatError("cache format version " +
                             std::to_string(Version) +
                             " is newer than this build understands");
        SawBegin = true;
        continue;
      }
      if (Rec.Kind != support::wire::RecordKind::CacheEntry)
        continue; // Forward compat: skip record kinds we don't know.
      if (!SawBegin)
        return formatError("cache record before StreamBegin");
      if (WS_FAILPOINT("cache.load.corrupt")) {
        quarantineRest(Rec.Offset, "injected fault: cache.load.corrupt");
        return Res;
      }
      support::wire::Reader::Cursor C(Rec, R);
      uint64_t Key = 0;
      ModuleSummary S;
      std::string DecodeWhy;
      // The record passed its checksum, so a body that no longer
      // resolves is provably *stale*, not corrupt — the design evolved
      // past it (module renamed away, interface changed). Stale entries
      // never hit, so skipping silently loses nothing.
      if (!C.getFixed64(Key) || !detail::decodeSummaryBody(C, D, S, DecodeWhy))
        continue;
      Cache.insert(Key, S);
      ++Res.Loaded;
    }
  }

  // --- Text path (formats v1/v2, read-and-migrate) --------------------
  // Keys are recorded as "# key <module-name> <key> [<checksum>]"
  // comment lines, which parseSummaries skips; v1 files lack the
  // checksum. Collect them, and split the rest of the file into
  // module...end blocks (remembering each block's start line). Each
  // block is then vetted on its own: a cache's job is to never block a
  // check, so a record that fails its recorded checksum or no longer
  // parses is *quarantined* — skipped with a WS603 warning naming its
  // sidecar line — and a record with no checksum that no longer
  // resolves (stale v1, foreign design) is skipped silently, since
  // stale entries never hit anyway. Only a file that is not
  // sidecar-shaped at all (content outside any block, an unterminated
  // block) is an error: that means --cache points at something else.
  struct KeyRec {
    uint64_t Key = 0;
    bool HasCrc = false;
    uint64_t Crc = 0;
  };
  std::map<std::string, KeyRec> KeyOfName;
  struct BlockRec {
    std::string Text;
    std::string Name;
    size_t StartLine = 0;
  };
  std::vector<BlockRec> Blocks;
  BlockRec Block;
  bool InBlock = false;
  size_t LineNo = 0;
  std::istringstream Lines(Text);
  std::string Line;
  while (std::getline(Lines, Line)) {
    ++LineNo;
    std::istringstream LS(Line);
    std::string First;
    if (!(LS >> First))
      continue; // Blank.
    if (First[0] == '#') {
      std::string KeyWord, Name;
      KeyRec Rec;
      if (First == "#" && LS >> KeyWord && KeyWord == "key" &&
          LS >> Name >> std::hex >> Rec.Key) {
        if (LS >> Rec.Crc)
          Rec.HasCrc = true;
        KeyOfName[Name] = Rec;
      }
      continue;
    }
    if (!InBlock) {
      if (First != "module") {
        return support::Diag(support::DiagCode::WS502_CACHE_FORMAT,
                             "expected 'module', got '" + First + "'")
            .withLoc(support::SrcLoc{Path, LineNo, 0});
      }
      Block.StartLine = LineNo;
      std::string Name;
      LS >> Name;
      Block.Name = Name;
    }
    InBlock = First != "end";
    Block.Text += Line;
    Block.Text += '\n';
    if (!InBlock) {
      Blocks.push_back(std::move(Block));
      Block = BlockRec();
    }
  }
  if (InBlock) {
    return support::Diag(support::DiagCode::WS502_CACHE_FORMAT,
                         "unterminated module block (missing 'end')")
        .withLoc(support::SrcLoc{Path, 0, 0});
  }

  std::vector<std::pair<uint64_t, ModuleSummary>> Migrated;
  for (const BlockRec &B : Blocks) {
    auto KeyIt = KeyOfName.find(B.Name);
    const KeyRec *Rec =
        KeyIt != KeyOfName.end() ? &KeyIt->second : nullptr;

    auto quarantine = [&](const std::string &Reason) {
      ++Res.Quarantined;
      QuarantinedC.add();
      Res.Warnings.add(
          support::Diag(support::DiagCode::WS603_CACHE_CORRUPT,
                        "corrupt cache record quarantined; module will "
                        "be re-inferred",
                        support::Severity::Warning)
              .withLoc(support::SrcLoc{Path, B.StartLine, 0})
              .withNote("module", B.Name)
              .withNote("detail", Reason));
    };

    if (Rec && Rec->HasCrc &&
        (recordChecksum(B.Text) != Rec->Crc ||
         WS_FAILPOINT("cache.load.corrupt"))) {
      quarantine("checksum mismatch");
      continue;
    }

    // A record that passes (or never carried) its checksum but fails to
    // parse is provably *stale*, not corrupt — the bytes are exactly
    // what the writer wrote, the design just evolved past them (module
    // renamed away, interface changed). Stale entries never hit, so
    // skipping silently loses nothing.
    auto Parsed = parseSummaries(B.Text, D, Path);
    if (!Parsed)
      continue;
    for (const auto &[Id, S] : *Parsed) {
      if (!Rec || D.module(Id).Name != B.Name)
        continue;
      Cache.insert(Rec->Key, S);
      ++Res.Loaded;
      Migrated.emplace_back(Rec->Key, S);
    }
  }

  // A legacy text cache that loaded cleanly is upgraded in place, so
  // the v3 fast path serves every subsequent run. The write goes
  // through the same compose/tmp/fsync/rename machinery as saveCache —
  // a crash mid-migration (cache.migrate.partial) leaves the v2 file
  // byte-identical, and the next run simply migrates again
  // (CrashRecoveryTest). A failed write degrades to the usual WS602
  // warning: migration, like every cache operation, never blocks a
  // check.
  if (!Text.empty()) {
    std::vector<std::pair<uint64_t, const ModuleSummary *>> Entries;
    Entries.reserve(Migrated.size());
    for (const auto &[Key, S] : Migrated)
      Entries.emplace_back(Key, &S);
    support::Status W = atomicWriteCache(
        Path, composeCachePayload(D, Entries), "cache.migrate.partial");
    if (!W.empty()) {
      Res.Warnings.append(W);
    } else {
      Res.Warnings.add(
          support::Diag(support::DiagCode::WS605_CACHE_MIGRATED,
                        "summary cache migrated to format v3",
                        support::Severity::Note)
              .withNote("path", Path)
              .withNote("records", std::to_string(Migrated.size())));
    }
  }
  return Res;
}
