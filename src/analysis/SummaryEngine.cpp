//===- analysis/SummaryEngine.cpp - Parallel cached Stage-1 ---------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "analysis/SummaryEngine.h"

#include "analysis/SummaryIO.h"
#include "ir/StructuralHash.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <sstream>
#include <vector>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

// --- SummaryCache -----------------------------------------------------------

std::optional<ModuleSummary>
SummaryCache::lookup(uint64_t Key, ModuleId Id, const std::string &Name) {
  static trace::Counter &HitCounter = trace::counter("engine.cache_hits");
  static trace::Counter &MissCounter =
      trace::counter("engine.cache_misses");
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Entries.find(Key);
  if (It == Entries.end()) {
    ++Misses;
    MissCounter.add();
    return std::nullopt;
  }
  ++Hits;
  HitCounter.add();
  ModuleSummary S = It->second;
  // Content addressing is design-independent; only the owning design's
  // module id (and, pedantically, the name) need rebinding.
  S.Id = Id;
  S.ModuleName = Name;
  return S;
}

void SummaryCache::insert(uint64_t Key, const ModuleSummary &S) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.emplace(Key, S);
}

size_t SummaryCache::size() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Entries.size();
}

void SummaryCache::resetCounters() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Hits = Misses = 0;
}

void SummaryCache::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Entries.clear();
  Hits = Misses = 0;
}

// --- Cache keys -------------------------------------------------------------

namespace {

/// Content hash of a summary, used to key ascribed modules (whose bodies
/// are opaque — the summary IS the content).
uint64_t summaryContentHash(const ModuleSummary &S) {
  uint64_t H = 0x5ca1ab1e;
  for (const auto &[In, Outs] : S.OutputPortSets) {
    H = hashCombine(H, In);
    for (WireId Out : Outs)
      H = hashCombine(H, Out);
    H = hashCombine(H, 0xffffffffULL); // Set delimiter.
  }
  for (const auto &[Out, Ins] : S.InputPortSets) {
    H = hashCombine(H, Out);
    for (WireId In : Ins)
      H = hashCombine(H, In);
    H = hashCombine(H, 0xffffffffULL);
  }
  for (const auto &[Port, Sub] : S.SubSorts)
    H = hashCombine(H, (uint64_t(Port) << 8) | uint64_t(Sub));
  return H;
}

/// Scheduler state for one analyze() call. All mutable members are
/// guarded by Mutex once the parallel phase starts; Out is pre-populated
/// with every module id so tasks read/write disjoint mapped values
/// without ever mutating the map structure.
struct Run {
  const Design &D;
  const std::map<ModuleId, ModuleSummary> &Ascribed;
  std::map<ModuleId, ModuleSummary> &Out;
  SummaryCache *Cache; // Null when the cache is disabled.
  const std::vector<uint64_t> &Keys;

  enum class State : uint8_t { Waiting, Done, Looped, Skipped };

  std::vector<State> States;
  std::vector<uint32_t> DepsLeft;
  std::vector<std::vector<ModuleId>> Dependents;
  /// Per-module loop diagnostics (empty for clean modules). Indexed by
  /// module id, which is also the order the final list is emitted in —
  /// the thread schedule can never reorder it.
  std::vector<support::DiagList> Loops;
  size_t Hits = 0, Inferred = 0, AscribedCount = 0;

  std::mutex Mutex;

  Run(const Design &D, const std::map<ModuleId, ModuleSummary> &Ascribed,
      std::map<ModuleId, ModuleSummary> &Out, SummaryCache *Cache,
      const std::vector<uint64_t> &Keys)
      : D(D), Ascribed(Ascribed), Out(Out), Cache(Cache), Keys(Keys) {}

  /// Distinct instantiated definitions of module \p Id.
  static std::vector<ModuleId> depsOf(const Module &M) {
    std::vector<ModuleId> Deps;
    for (const SubInstance &Inst : M.Instances)
      Deps.push_back(Inst.Def);
    std::sort(Deps.begin(), Deps.end());
    Deps.erase(std::unique(Deps.begin(), Deps.end()), Deps.end());
    return Deps;
  }

  /// How a module was resolved without running inference.
  enum class Cheap : uint8_t { No, Ascribed, Hit };

  /// Resolves \p Id without inference (ascription or cache hit) if
  /// possible. Caller holds Mutex.
  Cheap tryResolveCheaply(ModuleId Id) {
    auto AscIt = Ascribed.find(Id);
    if (AscIt != Ascribed.end()) {
      Out[Id] = AscIt->second;
      ++AscribedCount;
      return Cheap::Ascribed;
    }
    if (Cache) {
      if (auto Hit =
              Cache->lookup(Keys[Id], Id, D.module(Id).Name)) {
        Out[Id] = std::move(*Hit);
        ++Hits;
        return Cheap::Hit;
      }
    }
    return Cheap::No;
  }

  /// Marks \p Id finished and returns the dependents that became ready.
  /// Caller holds Mutex.
  std::vector<ModuleId> finish(ModuleId Id, State S) {
    States[Id] = S;
    std::vector<ModuleId> Ready;
    for (ModuleId Dep : Dependents[Id]) {
      // A dependent of an unsummarizable module can never be summarized
      // itself; the skip propagates transitively when the dependent is
      // later "finished" as Skipped (which releases its own dependents).
      if (S != State::Done)
        States[Dep] = State::Skipped;
      if (--DepsLeft[Dep] == 0)
        Ready.push_back(Dep);
    }
    return Ready;
  }
};

} // namespace

// --- SummaryEngine ----------------------------------------------------------

support::Status
SummaryEngine::analyze(const Design &D,
                       std::map<ModuleId, ModuleSummary> &Out,
                       const std::map<ModuleId, ModuleSummary> &Ascribed) {
  Timer T;
  Stats = EngineStats();
  Stats.Modules = D.numModules();

  trace::Span AnalyzeSpan("engine.analyze", "engine");
  AnalyzeSpan.note("modules", static_cast<uint64_t>(D.numModules()));
  // Registry mirrors of EngineStats (docs/OBSERVABILITY.md). The cache
  // hit/miss counters live in SummaryCache::lookup.
  static trace::Histogram &InferUs = trace::histogram("engine.infer_us");
  static trace::Counter &ModulesC = trace::counter("engine.modules");
  static trace::Counter &InferredC = trace::counter("engine.inferred");
  static trace::Counter &AscribedC = trace::counter("engine.ascribed");

  std::optional<std::vector<ModuleId>> Order =
      D.topologicalModuleOrder();
  assert(Order && "module instantiation must be acyclic");

  // --- Cache keys, serially in dependency order (cheap: one hash pass
  // --- over the design). A module's key folds the keys of its
  // --- instantiated definitions in instance order, so content
  // --- addressing is transitive.
  Keys.assign(D.numModules(), 0);
  for (ModuleId Id : *Order) {
    auto AscIt = Ascribed.find(Id);
    if (AscIt != Ascribed.end()) {
      Keys[Id] = hashCombine(0xa5c81bed, summaryContentHash(AscIt->second));
      continue;
    }
    const Module &M = D.module(Id);
    uint64_t Key = structuralHash(M);
    for (const SubInstance &Inst : M.Instances)
      Key = hashCombine(Key, Keys[Inst.Def]);
    Keys[Id] = Key;
  }

  // --- Scheduler state.
  Out.clear();
  for (ModuleId Id = 0; Id != D.numModules(); ++Id)
    Out[Id]; // Pre-insert every slot: map structure stays frozen below.

  Run R(D, Ascribed, Out, Opts.UseCache ? &Cache : nullptr, Keys);
  R.States.assign(D.numModules(), Run::State::Waiting);
  R.DepsLeft.assign(D.numModules(), 0);
  R.Dependents.assign(D.numModules(), {});
  R.Loops.assign(D.numModules(), {});
  for (ModuleId Id = 0; Id != D.numModules(); ++Id) {
    std::vector<ModuleId> Deps = Run::depsOf(D.module(Id));
    R.DepsLeft[Id] = static_cast<uint32_t>(Deps.size());
    for (ModuleId Dep : Deps)
      R.Dependents[Dep].push_back(Id);
  }

  unsigned Threads = Opts.Threads != 0
                         ? Opts.Threads
                         : std::max(1u, std::thread::hardware_concurrency());
  Stats.ThreadsUsed = Threads;

  if (Threads <= 1) {
    // Serial path: plain topological sweep, no pool, no locking. Kept
    // separate both as the baseline the determinism suite compares
    // against and because it is what a 1-thread engine should cost.
    for (ModuleId Id : *Order) {
      if (R.States[Id] == Run::State::Skipped) {
        R.finish(Id, Run::State::Skipped); // Propagate to dependents.
        continue;
      }
      trace::Span MSpan("engine.module", "engine");
      MSpan.note("module", D.module(Id).Name);
      if (Run::Cheap C = R.tryResolveCheaply(Id); C != Run::Cheap::No) {
        MSpan.note("result", C == Run::Cheap::Hit ? "hit" : "ascribed");
        R.finish(Id, Run::State::Done);
        continue;
      }
      Timer InferTimer;
      InferenceResult Result = inferSummary(D, Id, Out);
      InferUs.record(
          static_cast<uint64_t>(InferTimer.seconds() * 1e6));
      if (!Result) {
        MSpan.note("result", "loop");
        R.Loops[Id] = Result.diags();
        R.finish(Id, Run::State::Looped);
        continue;
      }
      MSpan.note("result", "miss");
      ModuleSummary &S = *Result;
      if (R.Cache)
        R.Cache->insert(Keys[Id], S);
      Out[Id] = std::move(S);
      ++R.Inferred;
      R.finish(Id, Run::State::Done);
    }
  } else {
    ThreadPool Pool(Threads);

    // Submitting a module either resolves it on the spot (ascribed /
    // cache hit / already-skipped) or hands inference to the pool; the
    // completion path re-enters schedule() for the dependents it
    // releases. The worklist keeps resolution iterative: a chain of a
    // thousand cache hits must not recurse a thousand frames deep.
    std::function<void(std::vector<ModuleId>)> schedule =
        [&](std::vector<ModuleId> Work) {
          std::vector<ModuleId> ToInfer;
          {
            std::lock_guard<std::mutex> Lock(R.Mutex);
            while (!Work.empty()) {
              ModuleId Id = Work.back();
              Work.pop_back();
              if (R.States[Id] == Run::State::Skipped) {
                std::vector<ModuleId> Ready =
                    R.finish(Id, Run::State::Skipped);
                Work.insert(Work.end(), Ready.begin(), Ready.end());
                continue;
              }
              if (Run::Cheap C = R.tryResolveCheaply(Id);
                  C != Run::Cheap::No) {
                // Zero-width marker span: cheap resolutions cost ~no
                // time but still show up in the trace with their
                // hit/ascribed attribute.
                trace::Span CheapSpan("engine.module", "engine");
                CheapSpan.note("module", R.D.module(Id).Name)
                    .note("result",
                          C == Run::Cheap::Hit ? "hit" : "ascribed");
                std::vector<ModuleId> Ready =
                    R.finish(Id, Run::State::Done);
                Work.insert(Work.end(), Ready.begin(), Ready.end());
                continue;
              }
              ToInfer.push_back(Id);
            }
          }
          for (ModuleId Id : ToInfer)
            Pool.submit([&, Id] {
              trace::Span MSpan("engine.module", "engine");
              MSpan.note("module", R.D.module(Id).Name);
              // Reads dep slots of Out; they were written before this
              // task was submitted (happens-before via R.Mutex and the
              // pool queue), and the map structure is frozen.
              Timer InferTimer;
              InferenceResult Result = inferSummary(R.D, Id, R.Out);
              InferUs.record(
                  static_cast<uint64_t>(InferTimer.seconds() * 1e6));
              MSpan.note("result", Result ? "miss" : "loop");
              std::vector<ModuleId> Ready;
              {
                std::lock_guard<std::mutex> Lock(R.Mutex);
                if (!Result) {
                  R.Loops[Id] = Result.diags();
                  Ready = R.finish(Id, Run::State::Looped);
                } else {
                  ModuleSummary &S = *Result;
                  if (R.Cache)
                    R.Cache->insert(Keys[Id], S);
                  R.Out[Id] = std::move(S);
                  ++R.Inferred;
                  Ready = R.finish(Id, Run::State::Done);
                }
              }
              if (!Ready.empty())
                schedule(std::move(Ready));
            });
        };

    std::vector<ModuleId> Roots;
    for (ModuleId Id = 0; Id != D.numModules(); ++Id)
      if (R.DepsLeft[Id] == 0)
        Roots.push_back(Id);
    schedule(std::move(Roots));
    Pool.wait();
  }

  // --- Verdict: every looped module's diagnostics, in module-id order —
  // --- the same list serial analyzeDesign emits, whatever the schedule.
  support::Status Verdict;
  for (ModuleId Id = 0; Id != D.numModules(); ++Id)
    Verdict.append(R.Loops[Id]);

  // Unresolved slots (looped modules and their transitive dependents)
  // must not leak placeholder summaries.
  for (ModuleId Id = 0; Id != D.numModules(); ++Id)
    if (R.States[Id] != Run::State::Done)
      Out.erase(Id);

  Stats.CacheHits = R.Hits;
  Stats.Inferred = R.Inferred;
  Stats.Ascribed = R.AscribedCount;
  Stats.Seconds = T.seconds();
  ModulesC.add(Stats.Modules);
  InferredC.add(Stats.Inferred);
  AscribedC.add(Stats.Ascribed);
  return Verdict;
}

// --- Disk persistence -------------------------------------------------------

bool SummaryEngine::saveCache(
    const std::string &Path, const Design &D,
    const std::map<ModuleId, ModuleSummary> &Summaries) const {
  std::ostringstream OS;
  OS << "# wiresort summary cache (SummaryIO sidecar + content keys)\n";
  for (const auto &[Id, S] : Summaries) {
    (void)S;
    if (Id < Keys.size())
      OS << "# key " << D.module(Id).Name << " " << std::hex << Keys[Id]
         << std::dec << "\n";
  }
  OS << writeSummaries(D, Summaries);
  std::ofstream File(Path);
  if (!File)
    return false;
  File << OS.str();
  return File.good();
}

support::Expected<size_t> SummaryEngine::loadCache(const std::string &Path,
                                                   const Design &D) {
  std::ifstream File(Path);
  if (!File)
    return size_t{0}; // Cold start: a missing sidecar is not an error.
  std::stringstream SS;
  SS << File.rdbuf();
  std::string Text = SS.str();

  // Keys are recorded as "# key <module-name> <hex>" comment lines,
  // which parseSummaries skips. Collect them, and split the rest of the
  // file into module...end blocks. Each block is then parsed on its own:
  // a cache's job is to never block a check, so blocks that no longer
  // resolve against this design (module renamed away, interface changed,
  // bit-rotted text) are simply skipped — they are stale entries, and
  // stale entries never hit. Only a file that is not sidecar-shaped at
  // all (content outside any block, an unterminated block) is an error,
  // since that means --cache points at something else entirely.
  std::map<std::string, uint64_t> KeyOfName;
  std::vector<std::string> Blocks;
  std::string Block;
  bool InBlock = false;
  size_t LineNo = 0;
  std::istringstream Lines(Text);
  std::string Line;
  while (std::getline(Lines, Line)) {
    ++LineNo;
    std::istringstream LS(Line);
    std::string First;
    if (!(LS >> First))
      continue; // Blank.
    if (First[0] == '#') {
      std::string KeyWord, Name;
      uint64_t Key;
      if (First == "#" && LS >> KeyWord && KeyWord == "key" &&
          LS >> Name >> std::hex >> Key)
        KeyOfName[Name] = Key;
      continue;
    }
    if (!InBlock && First != "module") {
      return support::Diag(support::DiagCode::WS502_CACHE_FORMAT,
                           "expected 'module', got '" + First + "'")
          .withLoc(support::SrcLoc{Path, LineNo, 0});
    }
    InBlock = First != "end";
    Block += Line;
    Block += '\n';
    if (!InBlock) {
      Blocks.push_back(std::move(Block));
      Block.clear();
    }
  }
  if (InBlock) {
    return support::Diag(support::DiagCode::WS502_CACHE_FORMAT,
                         "unterminated module block (missing 'end')")
        .withLoc(support::SrcLoc{Path, 0, 0});
  }

  size_t Loaded = 0;
  for (const std::string &B : Blocks) {
    // Stale blocks are skipped, not reported.
    auto Parsed = parseSummaries(B, D);
    if (!Parsed)
      continue;
    for (const auto &[Id, S] : *Parsed) {
      auto It = KeyOfName.find(D.module(Id).Name);
      if (It == KeyOfName.end())
        continue;
      Cache.insert(It->second, S);
      ++Loaded;
    }
  }
  return Loaded;
}
