//===- analysis/Depth.h - Combinational-depth analysis ----------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's named future work ("Our techniques could potentially also
/// reason about properties related to timing", Section 1), realized with
/// the same modular machinery: alongside each port's sort, record the
/// worst-case combinational *depth* (gate levels) between state and the
/// port, and between port pairs. Circuit-level composition then bounds
/// the longest register-to-register path spanning module boundaries —
/// without reopening any module, exactly as well-connectedness checking
/// does.
///
/// Depth is measured in primitive-gate levels of the lowered form:
/// multi-bit RTL operations count as their bit-blasted critical path
/// (e.g. an N-bit ripple adder contributes ~2N levels), Buf is free.
/// Requires an acyclic module/circuit (run the well-connectedness check
/// first).
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_ANALYSIS_DEPTH_H
#define WIRESORT_ANALYSIS_DEPTH_H

#include "analysis/Summary.h"
#include "ir/Circuit.h"

#include <cstdint>
#include <map>
#include <optional>

namespace wiresort::analysis {

/// Per-module worst-case combinational depths, the timing analog of
/// ModuleSummary.
struct DepthSummary {
  ir::ModuleId Id = ir::InvalidId;

  /// Gate levels from input port to output port; present exactly for
  /// the pairs in the sort summary's port sets.
  std::map<std::pair<ir::WireId, ir::WireId>, uint32_t> PairDepth;
  /// Gate levels from state (register Q / memory read) to each output.
  std::map<ir::WireId, uint32_t> FromStateDepth;
  /// Gate levels from each input to the deepest state pin it feeds.
  std::map<ir::WireId, uint32_t> ToStateDepth;
  /// Longest internal register-to-register path.
  uint32_t InternalDepth = 0;

  uint32_t pairDepth(ir::WireId In, ir::WireId Out) const {
    auto It = PairDepth.find({In, Out});
    return It == PairDepth.end() ? 0 : It->second;
  }
};

/// Computes depths for module \p Id; summaries and depth summaries of
/// every instantiated definition must already be present. \returns
/// std::nullopt if the module's combinational graph is cyclic (check
/// well-connectedness first).
std::optional<DepthSummary>
inferDepths(const ir::Design &D, ir::ModuleId Id,
            const std::map<ir::ModuleId, ModuleSummary> &Summaries,
            const std::map<ir::ModuleId, DepthSummary> &SubDepths);

/// Computes depth summaries for every module of \p D in dependency
/// order. \returns std::nullopt on a combinational cycle.
std::optional<std::map<ir::ModuleId, DepthSummary>>
inferAllDepths(const ir::Design &D,
               const std::map<ir::ModuleId, ModuleSummary> &Summaries);

/// The longest register-to-register combinational path through the
/// circuit, crossing module boundaries via the depth summaries. The
/// circuit must be well-connected. \returns the depth in gate levels
/// (0 for an empty or fully registered circuit).
uint32_t
circuitCriticalDepth(const ir::Circuit &Circ,
                     const std::map<ir::ModuleId, ModuleSummary>
                         &Summaries,
                     const std::map<ir::ModuleId, DepthSummary> &Depths);

} // namespace wiresort::analysis

#endif // WIRESORT_ANALYSIS_DEPTH_H
