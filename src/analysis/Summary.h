//===- analysis/Summary.h - Per-module interface summaries ------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ModuleSummary is the paper's Stage-1 artifact (Section 3.5): every
/// port annotated with its sort, and every to-port/from-port wire with its
/// output-port-set / input-port-set. A summary is everything downstream
/// circuit checking ever needs — module internals stay opaque afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_ANALYSIS_SUMMARY_H
#define WIRESORT_ANALYSIS_SUMMARY_H

#include "analysis/Sorts.h"
#include "ir/Ids.h"

#include <map>
#include <string>
#include <vector>

namespace wiresort::analysis {

/// Stage-1 interface annotation of one module definition.
struct ModuleSummary {
  ir::ModuleId Id = ir::InvalidId;
  std::string ModuleName;

  /// output-ports(M, win) per input port (sorted, deduplicated). Inputs
  /// with an empty set are to-sync.
  std::map<ir::WireId, std::vector<ir::WireId>> OutputPortSets;

  /// input-ports(M, wout) per output port (sorted, deduplicated). Outputs
  /// with an empty set are from-sync.
  std::map<ir::WireId, std::vector<ir::WireId>> InputPortSets;

  /// Section 3.7 subsort per port (only sync ports are Direct/Indirect).
  std::map<ir::WireId, SubSort> SubSorts;

  /// Wall-clock seconds spent inferring this summary (benchmark use).
  double InferenceSeconds = 0.0;

  /// \returns the sort of port \p Port (which must be an interface wire
  /// recorded in this summary).
  Sort sortOf(ir::WireId Port) const {
    auto In = OutputPortSets.find(Port);
    if (In != OutputPortSets.end())
      return In->second.empty() ? Sort::ToSync : Sort::ToPort;
    auto Out = InputPortSets.find(Port);
    return Out->second.empty() ? Sort::FromSync : Sort::FromPort;
  }

  SubSort subSortOf(ir::WireId Port) const {
    auto It = SubSorts.find(Port);
    return It == SubSorts.end() ? SubSort::None : It->second;
  }

  const std::vector<ir::WireId> &outputPortSet(ir::WireId Input) const {
    return OutputPortSets.at(Input);
  }
  const std::vector<ir::WireId> &inputPortSet(ir::WireId Output) const {
    return InputPortSets.at(Output);
  }
};

/// Structural equality of two summaries: every field Stage-2/3 checking
/// can observe. InferenceSeconds is excluded (wall-clock, run-dependent),
/// which is what lets the determinism suite demand bitwise-equal results
/// from serial, parallel, and cache-served inference.
inline bool structurallyEqual(const ModuleSummary &A,
                              const ModuleSummary &B) {
  return A.Id == B.Id && A.ModuleName == B.ModuleName &&
         A.OutputPortSets == B.OutputPortSets &&
         A.InputPortSets == B.InputPortSets && A.SubSorts == B.SubSorts;
}

} // namespace wiresort::analysis

#endif // WIRESORT_ANALYSIS_SUMMARY_H
