//===- analysis/Reachability.h - Intra-module comb reachability -*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the paper's reachable(M, w) relation (Section 3.2): the set
/// of wires reachable from w through nets without passing through any
/// register. State elements are absorbing:
///
///  * register D pins and synchronous-memory pins terminate forward
///    traversal (their effects appear only next cycle);
///  * register Q pins, constants, and synchronous-memory read data are
///    sources, never pass-throughs;
///  * asynchronous-memory reads contribute a combinational RAddr -> RData
///    edge.
///
/// Submodule instances are traversed through their ModuleSummary — an
/// instance input combinationally reaches exactly the instance outputs in
/// its definition's output-port-set. This is how Section 3.1's
/// "supermodule" generalization is realized: the internals of instantiated
/// definitions are never revisited.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_ANALYSIS_REACHABILITY_H
#define WIRESORT_ANALYSIS_REACHABILITY_H

#include "analysis/Summary.h"
#include "ir/Module.h"
#include "support/CsrGraph.h"
#include "support/Diag.h"
#include "support/Graph.h"

#include <map>
#include <optional>
#include <vector>

namespace wiresort::analysis {

/// How a wire is driven; used by the Section 3.7 -direct classification.
enum class DriverKind : uint8_t {
  None,     ///< Undriven (inputs, constants treated separately).
  Const,    ///< Constant wire.
  InputPort,///< The wire is a module input.
  NetOut,   ///< Output of a net.
  RegQ,     ///< Register Q pin.
  MemSync,  ///< Synchronous-memory read data.
  MemAsync, ///< Asynchronous-memory read data (combinational).
  InstOut,  ///< Bound to a submodule instance's output port.
};

/// The combinational dependency graph of one module, with submodule
/// instances abstracted by their summaries.
class CombGraph {
public:
  /// Builds the graph. Every instance's definition must have an entry in
  /// \p SubSummaries (guaranteed when summaries are computed in
  /// dependency order; see DesignAnalysis).
  static CombGraph build(const ir::Module &M,
                         const std::map<ir::ModuleId, ModuleSummary>
                             &SubSummaries);

  /// Node ids coincide with WireIds of the module.
  const Graph &graph() const { return G; }

  /// The frozen CSR snapshot of \ref graph, built lazily on first use and
  /// shared by every query that needs the graph's structure settled:
  /// \ref findCombLoop reads its acyclicity verdict and
  /// \ref allOutputPortSets sweeps its condensation, so Stage-1 inference
  /// pays for one freeze (one ordering pass), not one per query. Not
  /// thread-safe: a CombGraph belongs to a single inference task.
  const CsrGraph &frozen() const;

  /// Forward-reachable module \b output ports from \p From, sorted.
  /// This is output-ports(M, From) when \p From is an input port.
  ///
  /// One allocating BFS per call; kept as the differential oracle the
  /// property suites pin \ref allOutputPortSets against. Production
  /// Stage-1 inference uses the batched form.
  std::vector<ir::WireId> reachableOutputPorts(ir::WireId From) const;

  /// output-ports(M, win) for every input port at once, via the
  /// bit-parallel CSR kernel (support/CsrGraph.h): the graph is frozen
  /// once and a module with K inputs costs ceil(K/64) sweeps over the
  /// edge array instead of K BFS traversals. Bit-identical to calling
  /// \ref reachableOutputPorts per input.
  std::map<ir::WireId, std::vector<ir::WireId>> allOutputPortSets() const;

  /// Deadline-aware form: the kernel polls \p DL between node batches
  /// and the call returns std::nullopt when it fires mid-module
  /// (docs/ROBUSTNESS.md) — the caller abandons the module and reports
  /// WS601. A null \p DL never cancels and matches the plain overload.
  std::optional<std::map<ir::WireId, std::vector<ir::WireId>>>
  allOutputPortSets(const support::Deadline *DL) const;

  /// \returns a WS101_COMB_LOOP diagnostic if the module (including
  /// instance summaries) contains a combinational cycle, else
  /// std::nullopt. The witness path is cyclic — hop i feeds hop i+1 and
  /// the last hop feeds the first — with each hop (ModuleName, wireName).
  /// The acyclic fast path is free once the graph is \ref frozen; the
  /// cycle walk (Graph::findCycle) runs only on the error path, where a
  /// readable diagnostic is worth a second traversal.
  std::optional<support::Diag> findCombLoop() const;

  /// Section 3.7: true iff input \p In feeds only state, reached through
  /// nothing but transparent Buf nets — the to-sync-direct test. Only
  /// meaningful when \p In is to-sync.
  bool feedsStateDirectly(ir::WireId In) const;

  /// Section 3.7: true iff output \p Out is driven from state through
  /// nothing but transparent Buf nets — the from-sync-direct test. Only
  /// meaningful when \p Out is from-sync.
  bool drivenByStateDirectly(ir::WireId Out) const;

  DriverKind driverKind(ir::WireId W) const { return Drivers[W].Kind; }

private:
  struct DriverRec {
    DriverKind Kind = DriverKind::None;
    /// NetOut: the net id. InstOut: the instance id.
    uint32_t Index = 0;
    /// InstOut: the definition's output port id.
    ir::WireId DefPort = ir::InvalidId;
  };
  struct FanoutRec {
    /// Nets consuming the wire.
    std::vector<ir::NetId> Nets;
    /// (instance id, definition input port) pairs consuming the wire.
    std::vector<std::pair<uint32_t, ir::WireId>> InstInputs;
    /// Number of state pins consuming the wire (reg D, sync-mem pins).
    uint32_t StatePins = 0;
    /// Number of asynchronous-memory read-address pins consuming it.
    uint32_t AsyncMemAddrPins = 0;
  };

  const ir::Module *M = nullptr;
  const std::map<ir::ModuleId, ModuleSummary> *SubSummaries = nullptr;
  Graph G;
  /// Lazy CSR snapshot; see \ref frozen.
  mutable std::optional<CsrGraph> Frozen;
  std::vector<DriverRec> Drivers;
  std::vector<FanoutRec> Fanouts;
};

} // namespace wiresort::analysis

#endif // WIRESORT_ANALYSIS_REACHABILITY_H
