//===- analysis/Reachability.cpp - Intra-module comb reachability ---------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Reachability.h"

#include <algorithm>
#include <cassert>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

CombGraph CombGraph::build(const Module &M,
                           const std::map<ModuleId, ModuleSummary>
                               &SubSummaries) {
  CombGraph CG;
  CG.M = &M;
  CG.SubSummaries = &SubSummaries;
  CG.G = Graph(M.numWires());
  CG.Drivers.assign(M.numWires(), DriverRec{});
  CG.Fanouts.assign(M.numWires(), FanoutRec{});

  for (WireId W = 0; W != M.numWires(); ++W) {
    switch (M.wire(W).Kind) {
    case WireKind::Const:
      CG.Drivers[W].Kind = DriverKind::Const;
      break;
    case WireKind::Input:
      CG.Drivers[W].Kind = DriverKind::InputPort;
      break;
    default:
      break;
    }
  }

  for (NetId N = 0; N != M.Nets.size(); ++N) {
    const Net &Gate = M.Nets[N];
    CG.Drivers[Gate.Output] = DriverRec{DriverKind::NetOut, N, InvalidId};
    for (WireId In : Gate.Inputs) {
      CG.G.addEdge(In, Gate.Output);
      CG.Fanouts[In].Nets.push_back(N);
    }
  }

  for (const Register &R : M.Registers) {
    CG.Drivers[R.Q].Kind = DriverKind::RegQ;
    CG.Fanouts[R.D].StatePins += 1;
  }

  for (const Memory &Mem : M.Memories) {
    if (Mem.SyncRead) {
      CG.Drivers[Mem.RData].Kind = DriverKind::MemSync;
      CG.Fanouts[Mem.RAddr].StatePins += 1;
    } else {
      CG.Drivers[Mem.RData].Kind = DriverKind::MemAsync;
      CG.G.addEdge(Mem.RAddr, Mem.RData);
      CG.Fanouts[Mem.RAddr].AsyncMemAddrPins += 1;
    }
    CG.Fanouts[Mem.WAddr].StatePins += 1;
    CG.Fanouts[Mem.WData].StatePins += 1;
    CG.Fanouts[Mem.WEnable].StatePins += 1;
  }

  for (uint32_t InstIdx = 0; InstIdx != M.Instances.size(); ++InstIdx) {
    const SubInstance &Inst = M.Instances[InstIdx];
    auto SummaryIt = SubSummaries.find(Inst.Def);
    assert(SummaryIt != SubSummaries.end() &&
           "instance definition must be summarized first");
    const ModuleSummary &Sub = SummaryIt->second;

    // Map the definition's output ports to the local wires bound to them.
    std::map<WireId, WireId> OutLocal;
    for (const auto &[DefPort, Local] : Inst.Bindings) {
      auto OutSet = Sub.InputPortSets.find(DefPort);
      if (OutSet != Sub.InputPortSets.end()) {
        OutLocal[DefPort] = Local;
        CG.Drivers[Local] = DriverRec{DriverKind::InstOut, InstIdx, DefPort};
      }
    }
    for (const auto &[DefPort, Local] : Inst.Bindings) {
      auto It = Sub.OutputPortSets.find(DefPort);
      if (It == Sub.OutputPortSets.end())
        continue; // An output binding.
      CG.Fanouts[Local].InstInputs.emplace_back(InstIdx, DefPort);
      for (WireId DefOut : It->second) {
        auto LocalIt = OutLocal.find(DefOut);
        assert(LocalIt != OutLocal.end() && "output port left unbound");
        CG.G.addEdge(Local, LocalIt->second);
      }
    }
  }
  return CG;
}

std::vector<WireId> CombGraph::reachableOutputPorts(WireId From) const {
  std::vector<bool> Seen = G.reachableFrom(From);
  std::vector<WireId> Result;
  for (WireId Out : M->Outputs)
    if (Seen[Out] && Out != From)
      Result.push_back(Out);
  std::sort(Result.begin(), Result.end());
  return Result;
}

std::optional<LoopDiagnostic> CombGraph::findCombLoop() const {
  std::optional<std::vector<uint32_t>> Cycle = G.findCycle();
  if (!Cycle)
    return std::nullopt;
  LoopDiagnostic Diag;
  for (uint32_t Node : *Cycle)
    Diag.PathLabels.push_back(M->Name + "::" + M->wire(Node).Name);
  return Diag;
}

bool CombGraph::feedsStateDirectly(WireId In) const {
  // BFS over the Buf-closure of In: every consumer must be state, a
  // transparent Buf, or a submodule input port that is itself
  // to-sync-direct.
  std::vector<WireId> Work{In};
  std::vector<bool> Seen(M->numWires(), false);
  Seen[In] = true;
  while (!Work.empty()) {
    WireId W = Work.back();
    Work.pop_back();
    if (M->wire(W).Kind == WireKind::Output)
      return false; // Reaches a port: the wire is not to-sync at all.
    const FanoutRec &F = Fanouts[W];
    if (F.AsyncMemAddrPins != 0)
      return false; // Asynchronous read is combinational logic.
    for (NetId N : F.Nets) {
      const Net &Gate = M->Nets[N];
      if (Gate.Operation != Op::Buf)
        return false; // Real combinational logic in the way.
      if (!Seen[Gate.Output]) {
        Seen[Gate.Output] = true;
        Work.push_back(Gate.Output);
      }
    }
    for (const auto &[InstIdx, DefPort] : F.InstInputs) {
      const ModuleSummary &Sub =
          SubSummaries->at(M->Instances[InstIdx].Def);
      if (Sub.sortOf(DefPort) != Sort::ToSync ||
          Sub.subSortOf(DefPort) != SubSort::Direct)
        return false;
    }
  }
  return true;
}

bool CombGraph::drivenByStateDirectly(WireId Out) const {
  // Walk backward through Buf chains to the originating driver.
  WireId W = Out;
  while (true) {
    const DriverRec &D = Drivers[W];
    switch (D.Kind) {
    case DriverKind::RegQ:
    case DriverKind::Const:
    case DriverKind::MemSync:
      return true;
    case DriverKind::InstOut: {
      const ModuleSummary &Sub =
          SubSummaries->at(M->Instances[D.Index].Def);
      return Sub.sortOf(D.DefPort) == Sort::FromSync &&
             Sub.subSortOf(D.DefPort) == SubSort::Direct;
    }
    case DriverKind::NetOut: {
      const Net &Gate = M->Nets[D.Index];
      if (Gate.Operation != Op::Buf)
        return false;
      W = Gate.Inputs.front();
      continue;
    }
    case DriverKind::InputPort:
    case DriverKind::MemAsync:
    case DriverKind::None:
      return false;
    }
  }
}
