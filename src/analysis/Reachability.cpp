//===- analysis/Reachability.cpp - Intra-module comb reachability ---------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Reachability.h"

#include "support/CsrGraph.h"

#include <algorithm>
#include <bit>
#include <cassert>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

CombGraph CombGraph::build(const Module &M,
                           const std::map<ModuleId, ModuleSummary>
                               &SubSummaries) {
  CombGraph CG;
  CG.M = &M;
  CG.SubSummaries = &SubSummaries;
  CG.G = Graph(M.numWires());
  CG.Drivers.assign(M.numWires(), DriverRec{});
  CG.Fanouts.assign(M.numWires(), FanoutRec{});

  for (WireId W = 0; W != M.numWires(); ++W) {
    switch (M.wire(W).Kind) {
    case WireKind::Const:
      CG.Drivers[W].Kind = DriverKind::Const;
      break;
    case WireKind::Input:
      CG.Drivers[W].Kind = DriverKind::InputPort;
      break;
    default:
      break;
    }
  }

  for (NetId N = 0; N != M.Nets.size(); ++N) {
    const Net &Gate = M.Nets[N];
    CG.Drivers[Gate.Output] = DriverRec{DriverKind::NetOut, N, InvalidId};
    for (WireId In : Gate.Inputs) {
      CG.G.addEdge(In, Gate.Output);
      CG.Fanouts[In].Nets.push_back(N);
    }
  }

  for (const Register &R : M.Registers) {
    CG.Drivers[R.Q].Kind = DriverKind::RegQ;
    CG.Fanouts[R.D].StatePins += 1;
  }

  for (const Memory &Mem : M.Memories) {
    if (Mem.SyncRead) {
      CG.Drivers[Mem.RData].Kind = DriverKind::MemSync;
      CG.Fanouts[Mem.RAddr].StatePins += 1;
    } else {
      CG.Drivers[Mem.RData].Kind = DriverKind::MemAsync;
      CG.G.addEdge(Mem.RAddr, Mem.RData);
      CG.Fanouts[Mem.RAddr].AsyncMemAddrPins += 1;
    }
    CG.Fanouts[Mem.WAddr].StatePins += 1;
    CG.Fanouts[Mem.WData].StatePins += 1;
    CG.Fanouts[Mem.WEnable].StatePins += 1;
  }

  for (uint32_t InstIdx = 0; InstIdx != M.Instances.size(); ++InstIdx) {
    const SubInstance &Inst = M.Instances[InstIdx];
    auto SummaryIt = SubSummaries.find(Inst.Def);
    assert(SummaryIt != SubSummaries.end() &&
           "instance definition must be summarized first");
    const ModuleSummary &Sub = SummaryIt->second;

    // Map the definition's output ports to the local wires bound to them.
    // Definition port ids are dense, so a flat vector sized to the largest
    // bound port beats a map in this hot build loop.
    WireId MaxDefPort = 0;
    for (const auto &[DefPort, Local] : Inst.Bindings)
      MaxDefPort = std::max(MaxDefPort, DefPort);
    std::vector<WireId> OutLocal(MaxDefPort + 1, InvalidId);
    for (const auto &[DefPort, Local] : Inst.Bindings) {
      if (Sub.InputPortSets.count(DefPort)) {
        OutLocal[DefPort] = Local;
        CG.Drivers[Local] = DriverRec{DriverKind::InstOut, InstIdx, DefPort};
      }
    }
    for (const auto &[DefPort, Local] : Inst.Bindings) {
      auto It = Sub.OutputPortSets.find(DefPort);
      if (It == Sub.OutputPortSets.end())
        continue; // An output binding.
      CG.Fanouts[Local].InstInputs.emplace_back(InstIdx, DefPort);
      for (WireId DefOut : It->second) {
        assert(DefOut < OutLocal.size() && OutLocal[DefOut] != InvalidId &&
               "output port left unbound");
        CG.G.addEdge(Local, OutLocal[DefOut]);
      }
    }
  }
  return CG;
}

const CsrGraph &CombGraph::frozen() const {
  if (!Frozen)
    Frozen = CsrGraph::freeze(G, CsrGraph::ForwardOnly);
  return *Frozen;
}

std::vector<WireId> CombGraph::reachableOutputPorts(WireId From) const {
  std::vector<bool> Seen = G.reachableFrom(From);
  std::vector<WireId> Result;
  for (WireId Out : M->Outputs)
    if (Seen[Out] && Out != From)
      Result.push_back(Out);
  std::sort(Result.begin(), Result.end());
  return Result;
}

std::map<WireId, std::vector<WireId>> CombGraph::allOutputPortSets() const {
  // A null deadline never cancels, so the optional is always engaged.
  return *allOutputPortSets(nullptr);
}

std::optional<std::map<WireId, std::vector<WireId>>>
CombGraph::allOutputPortSets(const support::Deadline *DL) const {
  std::map<WireId, std::vector<WireId>> Result;
  // Inputs reaching nothing still get their (empty, i.e. to-sync) set.
  for (WireId In : M->Inputs)
    Result.emplace(In, std::vector<WireId>{});
  if (M->Inputs.empty() || M->Outputs.empty())
    return Result;

  const std::vector<WireId> &Ins = M->Inputs;
  // One sweep-scratch arena per thread: SummaryEngine workers call in
  // once per module, and reusing the arena across modules makes
  // steady-state inference allocation-free here. Lane width scales to
  // the input count (up to 512 sources per sweep), so a wide module
  // pays ceil(K/512) sweeps instead of ceil(K/64).
  static thread_local ReachabilityKernel::Scratch SweepScratch;
  ReachabilityKernel Kernel(frozen(), SweepScratch,
                            ReachabilityKernel::laneWordsFor(Ins.size()));
  const uint32_t Lanes = Kernel.laneCount();
  const uint32_t LaneWords = Kernel.laneWords();
  // Decode each sweep's masks into flat per-lane vectors and move them
  // into the map once per input — a map lookup per (input, output) pair
  // would dominate small modules.
  std::vector<std::vector<WireId>> LaneSets;
  for (size_t Base = 0; Base < Ins.size(); Base += Lanes) {
    const uint32_t Count =
        static_cast<uint32_t>(std::min<size_t>(Lanes, Ins.size() - Base));
    if (!Kernel.sweep(Ins.data() + Base, Count, DL))
      return std::nullopt; // Deadline fired mid-module; abandon it.
    LaneSets.assign(Count, {});
    for (WireId Out : M->Outputs) {
      // Hoist the row pointer: one position lookup per output, not one
      // per (output, lane-word) pair.
      const uint64_t *Row = Kernel.row(Out);
      for (uint32_t Word = 0; Word != LaneWords; ++Word) {
        uint64_t Mask = Row[Word];
        const uint32_t LaneBase = Word * ReachabilityKernel::WordBits;
        while (Mask) {
          const uint32_t K =
              LaneBase + static_cast<uint32_t>(std::countr_zero(Mask));
          Mask &= Mask - 1;
          if (Ins[Base + K] != Out)
            LaneSets[K].push_back(Out);
        }
      }
    }
    for (uint32_t K = 0; K != Count; ++K) {
      std::sort(LaneSets[K].begin(), LaneSets[K].end());
      Result.find(Ins[Base + K])->second = std::move(LaneSets[K]);
    }
  }
  return Result;
}

std::optional<support::Diag> CombGraph::findCombLoop() const {
  if (frozen().isAcyclic())
    return std::nullopt;
  // A loop exists; pay for the cycle walk only on this error path.
  std::optional<std::vector<uint32_t>> Cycle = G.findCycle();
  assert(Cycle && "frozen snapshot says cyclic but no cycle found");
  support::Diag D(support::DiagCode::WS101_COMB_LOOP,
                  "combinational loop in module '" + M->Name + "'");
  for (uint32_t Node : *Cycle)
    D.addHop(M->Name, M->wire(Node).Name);
  return D;
}

bool CombGraph::feedsStateDirectly(WireId In) const {
  // BFS over the Buf-closure of In: every consumer must be state, a
  // transparent Buf, or a submodule input port that is itself
  // to-sync-direct.
  std::vector<WireId> Work{In};
  std::vector<bool> Seen(M->numWires(), false);
  Seen[In] = true;
  while (!Work.empty()) {
    WireId W = Work.back();
    Work.pop_back();
    if (M->wire(W).Kind == WireKind::Output)
      return false; // Reaches a port: the wire is not to-sync at all.
    const FanoutRec &F = Fanouts[W];
    if (F.AsyncMemAddrPins != 0)
      return false; // Asynchronous read is combinational logic.
    for (NetId N : F.Nets) {
      const Net &Gate = M->Nets[N];
      if (Gate.Operation != Op::Buf)
        return false; // Real combinational logic in the way.
      if (!Seen[Gate.Output]) {
        Seen[Gate.Output] = true;
        Work.push_back(Gate.Output);
      }
    }
    for (const auto &[InstIdx, DefPort] : F.InstInputs) {
      const ModuleSummary &Sub =
          SubSummaries->at(M->Instances[InstIdx].Def);
      if (Sub.sortOf(DefPort) != Sort::ToSync ||
          Sub.subSortOf(DefPort) != SubSort::Direct)
        return false;
    }
  }
  return true;
}

bool CombGraph::drivenByStateDirectly(WireId Out) const {
  // Walk backward through Buf chains to the originating driver.
  WireId W = Out;
  while (true) {
    const DriverRec &D = Drivers[W];
    switch (D.Kind) {
    case DriverKind::RegQ:
    case DriverKind::Const:
    case DriverKind::MemSync:
      return true;
    case DriverKind::InstOut: {
      const ModuleSummary &Sub =
          SubSummaries->at(M->Instances[D.Index].Def);
      return Sub.sortOf(D.DefPort) == Sort::FromSync &&
             Sub.subSortOf(D.DefPort) == SubSort::Direct;
    }
    case DriverKind::NetOut: {
      const Net &Gate = M->Nets[D.Index];
      if (Gate.Operation != Op::Buf)
        return false;
      W = Gate.Inputs.front();
      continue;
    }
    case DriverKind::InputPort:
    case DriverKind::MemAsync:
    case DriverKind::None:
      return false;
    }
  }
}
