//===- analysis/Sharded.cpp - Multi-process sharded Stage-1 ---------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Sharded.h"

#include "support/CsrGraph.h"
#include "support/FailPoint.h"
#include "support/Process.h"
#include "support/Timer.h"
#include "support/Trace.h"
#include "support/Wire.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <stdexcept>
#include <thread>
#include <unistd.h>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

namespace {

// --- Shared with the engine: contained inference ----------------------------
//
// Byte-compatible twin of SummaryEngine's containment: the WS604 record a
// panicking worker produces here must render identically to the one the
// in-process engine produces, or the shard-differential byte contract
// would distinguish the paths.

InferenceResult inferContained(const Design &D, ModuleId Id,
                               const std::map<ModuleId, ModuleSummary> &Subs,
                               const support::Deadline *DL, bool &Panicked) {
  auto panic = [&](const char *What) {
    Panicked = true;
    return support::Diag(support::DiagCode::WS604_WORKER_PANIC,
                         "worker panic while summarizing module '" +
                             D.module(Id).Name + "'")
        .withNote("module", D.module(Id).Name)
        .withNote("what", What);
  };
  try {
    if (WS_FAILPOINT("engine.module.throw"))
      throw std::runtime_error("injected fault: engine.module.throw");
    return inferSummary(D, Id, Subs, DL);
  } catch (const std::exception &E) {
    return panic(E.what());
  } catch (...) {
    return panic("unknown exception");
  }
}

// --- Per-module outcome record ----------------------------------------------

enum class ModState : uint8_t {
  Waiting,
  Done,
  Looped,
  Skipped,
  Cancelled,
  Panicked,
};

/// One worker's verdict on one module, produced inside the worker
/// (thread or child process) and merged by the coordinator.
struct ModResult {
  ModuleId Id = InvalidId;
  ModState State = ModState::Panicked;
  ModuleSummary Summary; // Valid when State == Done.
  support::DiagList Diags;
};

/// The worker loop both execution modes share: summarize the owned
/// modules of one wave in id order, honoring deadline/cancel latches.
/// \p Latch is the cross-shard cancel latch (null in fork mode, where
/// each child latches privately).
std::vector<ModResult>
runShardWave(const Design &D, const std::vector<ModuleId> &Mine,
             const std::map<ModuleId, ModuleSummary> &Deps,
             const support::Deadline &DL, std::atomic<bool> *Latch) {
  std::vector<ModResult> Results;
  Results.reserve(Mine.size());
  const support::Deadline *DLPtr = DL.active() ? &DL : nullptr;
  bool LocalCancel = false;
  for (ModuleId Id : Mine) {
    ModResult R;
    R.Id = Id;
    bool Cancelled = LocalCancel || (Latch && Latch->load());
    if (!Cancelled && (DL.expired() || WS_FAILPOINT("engine.cancel")))
      Cancelled = true;
    if (Cancelled) {
      LocalCancel = true;
      if (Latch)
        Latch->store(true);
      R.State = ModState::Cancelled;
      Results.push_back(std::move(R));
      continue;
    }
    bool Panicked = false;
    InferenceResult Result = inferContained(D, Id, Deps, DLPtr, Panicked);
    if (Result) {
      R.State = ModState::Done;
      R.Summary = std::move(*Result);
    } else if (Panicked) {
      R.State = ModState::Panicked;
      R.Diags = Result.diags();
    } else if (Result.diags().firstError().code() ==
               support::DiagCode::WS601_CANCELLED) {
      // Inference noticed the deadline mid-module: abandoned, not failed.
      LocalCancel = true;
      if (Latch)
        Latch->store(true);
      R.State = ModState::Cancelled;
    } else {
      R.State = ModState::Looped;
      R.Diags = Result.diags();
    }
    Results.push_back(std::move(R));
  }
  return Results;
}

// --- Fork-mode pipe protocol ------------------------------------------------
//
// Wire records over the fd (wire format v1, StreamKind::Shard —
// docs/FORMATS.md). The stream is pure framed bytes — liftable onto a
// socket unchanged — written incrementally, one flush per module:
//
//   header | StreamBegin(Shard, v1)
//   ShardModule: id varint | state byte | body
//     Done:             OutputPortSets, InputPortSets, SubSorts (ids
//                       are wire ids — both ends hold the same design)
//     Looped/Panicked:  diag count | wire::putDiag payloads
//     Cancelled:        (empty)
//   StreamEnd
//
// Anything the reader cannot account for — a record cut off mid-frame, a
// checksum mismatch, a missing StreamEnd — makes the affected modules
// *unaccounted*, which the coordinator fails closed as dead-worker
// WS604s.

constexpr uint64_t ShardPayloadVersion = 1;

void encodeResult(support::wire::Writer &W, const ModResult &R) {
  using support::wire::RecordKind;
  W.beginRecord(RecordKind::ShardModule);
  W.putVarint(R.Id);
  W.putByte(static_cast<uint8_t>(R.State));
  switch (R.State) {
  case ModState::Done: {
    W.putVarint(R.Summary.OutputPortSets.size());
    for (const auto &[In, Outs] : R.Summary.OutputPortSets) {
      W.putVarint(In);
      W.putVarint(Outs.size());
      for (WireId Member : Outs)
        W.putVarint(Member);
    }
    W.putVarint(R.Summary.InputPortSets.size());
    for (const auto &[Out, Ins] : R.Summary.InputPortSets) {
      W.putVarint(Out);
      W.putVarint(Ins.size());
      for (WireId Member : Ins)
        W.putVarint(Member);
    }
    W.putVarint(R.Summary.SubSorts.size());
    for (const auto &[Port, Sub] : R.Summary.SubSorts) {
      W.putVarint(Port);
      W.putByte(static_cast<uint8_t>(Sub));
    }
    break;
  }
  case ModState::Looped:
  case ModState::Panicked: {
    W.putVarint(R.Diags.size());
    for (const support::Diag &Dg : R.Diags)
      support::wire::putDiag(W, Dg);
    break;
  }
  case ModState::Cancelled:
    break;
  default:
    assert(false && "worker never emits Waiting/Skipped");
  }
  W.endRecord();
}

/// Decodes one ShardModule payload. \returns false on anything
/// malformed — the caller drops the record and everything after it.
bool decodeResult(support::wire::Reader::Cursor &C, const Design &D,
                  ModResult &R) {
  uint64_t IdVal = 0;
  uint8_t StateByte = 0;
  if (!C.getVarint(IdVal) || IdVal >= D.numModules() ||
      !C.getByte(StateByte))
    return false;
  ModState State = static_cast<ModState>(StateByte);
  if (State != ModState::Done && State != ModState::Looped &&
      State != ModState::Cancelled && State != ModState::Panicked)
    return false;
  R.Id = static_cast<ModuleId>(IdVal);
  R.State = State;
  if (State == ModState::Cancelled)
    return C.atEnd();
  if (State == ModState::Looped || State == ModState::Panicked) {
    uint64_t N = 0;
    if (!C.getVarint(N))
      return false;
    for (uint64_t K = 0; K != N; ++K) {
      support::Diag Dg;
      if (!support::wire::getDiag(C, Dg))
        return false;
      R.Diags.add(std::move(Dg));
    }
    return C.atEnd();
  }
  R.Summary.Id = R.Id;
  R.Summary.ModuleName = D.module(R.Id).Name;
  auto readSets = [&](std::map<WireId, std::vector<WireId>> &Sets) {
    uint64_t Count = 0;
    if (!C.getVarint(Count))
      return false;
    for (uint64_t K = 0; K != Count; ++K) {
      uint64_t Port = 0, N = 0;
      if (!C.getVarint(Port) || !C.getVarint(N))
        return false;
      std::vector<WireId> Ids;
      Ids.reserve(N);
      for (uint64_t J = 0; J != N; ++J) {
        uint64_t Member = 0;
        if (!C.getVarint(Member))
          return false;
        Ids.push_back(static_cast<WireId>(Member));
      }
      Sets[static_cast<WireId>(Port)] = std::move(Ids);
    }
    return true;
  };
  if (!readSets(R.Summary.OutputPortSets) ||
      !readSets(R.Summary.InputPortSets))
    return false;
  uint64_t SubCount = 0;
  if (!C.getVarint(SubCount))
    return false;
  for (uint64_t K = 0; K != SubCount; ++K) {
    uint64_t Port = 0;
    uint8_t Sub = 0;
    if (!C.getVarint(Port) || !C.getByte(Sub) || Sub > 2)
      return false;
    R.Summary.SubSorts[static_cast<WireId>(Port)] =
        static_cast<SubSort>(Sub);
  }
  return C.atEnd();
}

/// Parses a child's full pipe output. Returns only fully-framed records;
/// a truncated or damaged tail is dropped (its modules stay
/// unaccounted). \p CleanEnd reports whether the StreamEnd arrived.
std::vector<ModResult> parseShardOutput(const std::string &Text,
                                        const Design &D, bool &CleanEnd) {
  using support::wire::Reader;
  using support::wire::RecordKind;
  CleanEnd = false;
  std::vector<ModResult> Records;
  Reader R(Text);
  if (!R.readHeader())
    return Records;
  bool SawBegin = false;
  for (;;) {
    Reader::Record Rec;
    switch (R.next(Rec)) {
    case Reader::Item::End:
      CleanEnd = SawBegin;
      return Records;
    case Reader::Item::Exhausted:
    case Reader::Item::Truncated:
    case Reader::Item::Corrupt:
      return Records; // Worker died mid-stream: trust nothing further.
    case Reader::Item::Record:
      break;
    }
    Reader::Cursor C(Rec, R);
    if (Rec.Kind == RecordKind::StreamBegin) {
      uint8_t Kind = 0;
      uint64_t Version = 0;
      if (!C.getByte(Kind) ||
          Kind !=
              static_cast<uint8_t>(support::wire::StreamKind::Shard) ||
          !C.getVarint(Version) || Version > ShardPayloadVersion)
        return Records;
      SawBegin = true;
      continue;
    }
    if (Rec.Kind != RecordKind::ShardModule)
      continue; // Forward compat: skip unknown-but-intact records.
    ModResult Res;
    if (!SawBegin || !decodeResult(C, D, Res))
      return Records;
    Records.push_back(std::move(Res));
  }
}

} // namespace

// --- ShardedEngine ----------------------------------------------------------

ShardedEngine::ShardedEngine(ShardOptions Opts)
    : Opts(std::move(Opts)), Engine(this->Opts.Engine) {
  // The shard count is the parallelism; the per-shard engine paths run
  // single-threaded inference loops.
  this->Opts.Shards = std::max(1u, this->Opts.Shards);
}

support::Status
ShardedEngine::analyze(const Design &D, std::map<ModuleId, ModuleSummary> &Out,
                       const std::map<ModuleId, ModuleSummary> &Ascribed,
                       const support::Deadline &DL) {
  Timer T;
  Stats = ShardStats();
  Stats.Shards = Opts.Shards;
  Stats.Modules = D.numModules();

  trace::Span Span("shard.analyze", "engine");
  Span.note("modules", static_cast<uint64_t>(D.numModules()))
      .note("shards", static_cast<uint64_t>(Opts.Shards));
  static trace::Counter &WavesC = trace::counter("shard.waves");
  static trace::Counter &WorkersC = trace::counter("shard.workers_spawned");
  static trace::Counter &DeathsC = trace::counter("shard.worker_deaths");
  static trace::Counter &InferredC = trace::counter("shard.inferred");
  static trace::Counter &CancelledC =
      trace::counter("fault.cancelled_modules");

  const std::vector<uint64_t> &Keys = Engine.primeKeys(D, Ascribed);
  SummaryCache *Cache = Opts.Engine.UseCache ? &Engine.cache() : nullptr;

  std::optional<std::vector<ModuleId>> Order = D.topologicalModuleOrder();
  assert(Order && "module instantiation must be acyclic");

  // Wave levels: level(m) = 1 + max level over instantiated definitions.
  std::vector<uint32_t> Level(D.numModules(), 0);
  uint32_t MaxLevel = 0;
  for (ModuleId Id : *Order) {
    for (const SubInstance &Inst : D.module(Id).Instances)
      Level[Id] = std::max(Level[Id], Level[Inst.Def] + 1);
    MaxLevel = std::max(MaxLevel, Level[Id]);
  }
  std::vector<std::vector<ModuleId>> Waves(MaxLevel + 1);
  for (ModuleId Id : *Order)
    Waves[Level[Id]].push_back(Id);

  // Dependents, for failure tainting (dedup'd like the engine's).
  std::vector<std::vector<ModuleId>> Dependents(D.numModules());
  for (ModuleId Id = 0; Id != D.numModules(); ++Id) {
    std::vector<ModuleId> Deps;
    for (const SubInstance &Inst : D.module(Id).Instances)
      Deps.push_back(Inst.Def);
    std::sort(Deps.begin(), Deps.end());
    Deps.erase(std::unique(Deps.begin(), Deps.end()), Deps.end());
    for (ModuleId Dep : Deps)
      Dependents[Dep].push_back(Id);
  }

  std::vector<ModState> States(D.numModules(), ModState::Waiting);
  std::vector<support::DiagList> Loops(D.numModules());
  Out.clear();
  bool CancelFlag = false;

  // Mirrors SummaryEngine's taint rules: dependents of a cancelled
  // module are cancelled (the WS601 tally covers everything the deadline
  // cost); dependents of any other failure are skipped silently.
  auto taint = [&](ModuleId Id, ModState S) {
    if (S == ModState::Done)
      return;
    for (ModuleId Dep : Dependents[Id]) {
      if (S == ModState::Cancelled)
        States[Dep] = ModState::Cancelled;
      else if (States[Dep] != ModState::Cancelled)
        States[Dep] = ModState::Skipped;
    }
  };

  auto settle = [&](ModResult &R) {
    States[R.Id] = R.State;
    switch (R.State) {
    case ModState::Done:
      if (Cache)
        Cache->insert(Keys[R.Id], R.Summary);
      Out[R.Id] = std::move(R.Summary);
      ++Stats.Inferred;
      break;
    case ModState::Cancelled:
      CancelFlag = true;
      break;
    case ModState::Looped:
    case ModState::Panicked:
      Loops[R.Id] = std::move(R.Diags);
      break;
    default:
      break;
    }
    taint(R.Id, R.State);
  };

  for (const std::vector<ModuleId> &Wave : Waves) {
    ++Stats.Waves;

    // Coordinator pass: propagate taints, resolve cheap modules, and
    // collect the wave's real work. Order mirrors the engine: skip
    // check, cancel check, then ascription/cache.
    std::vector<ModuleId> Work;
    for (ModuleId Id : Wave) {
      if (States[Id] == ModState::Skipped ||
          States[Id] == ModState::Cancelled) {
        taint(Id, States[Id]);
        continue;
      }
      if (CancelFlag || DL.expired() || WS_FAILPOINT("engine.cancel")) {
        CancelFlag = true;
        States[Id] = ModState::Cancelled;
        taint(Id, ModState::Cancelled);
        continue;
      }
      auto AscIt = Ascribed.find(Id);
      if (AscIt != Ascribed.end()) {
        Out[Id] = AscIt->second;
        States[Id] = ModState::Done;
        ++Stats.Ascribed;
        continue;
      }
      if (Cache) {
        if (auto Hit = Cache->lookup(Keys[Id], Id, D.module(Id).Name)) {
          Out[Id] = std::move(*Hit);
          States[Id] = ModState::Done;
          ++Stats.CacheHits;
          continue;
        }
      }
      Work.push_back(Id);
    }
    if (Work.empty())
      continue;

    // Deterministic ownership: id mod shards. Work arrives in id order
    // (waves are built from the topological order filtered by level,
    // and ids within a level are ascending), so each shard's list is in
    // id order too.
    std::vector<std::vector<ModuleId>> ByShard(Opts.Shards);
    for (ModuleId Id : Work)
      ByShard[Id % Opts.Shards].push_back(Id);

    if (Opts.ExecMode == ShardOptions::Mode::InProcess) {
      std::vector<std::vector<ModResult>> ShardResults(Opts.Shards);
      std::atomic<bool> Latch{CancelFlag};
      std::vector<std::thread> Threads;
      for (unsigned S = 0; S != Opts.Shards; ++S) {
        if (ByShard[S].empty())
          continue;
        Threads.emplace_back([&, S] {
          ShardResults[S] =
              runShardWave(D, ByShard[S], Out, DL, &Latch);
        });
      }
      for (std::thread &Th : Threads)
        Th.join();
      for (unsigned S = 0; S != Opts.Shards; ++S)
        for (ModResult &R : ShardResults[S])
          settle(R);
    } else {
      // Fork mode. Children are forked before any result is merged, so
      // every child sees the same pre-wave coordinator state; pipes are
      // drained fully at join time in shard order, which cannot
      // deadlock (a child blocked on a full pipe simply waits until its
      // join drains it).
      struct Pending {
        unsigned Shard;
        support::ChildProcess Child;
      };
      std::vector<Pending> Children;
      std::vector<unsigned> FailedToSpawn;
      for (unsigned S = 0; S != Opts.Shards; ++S) {
        if (ByShard[S].empty())
          continue;
        const std::vector<ModuleId> &Mine = ByShard[S];
        auto Spawned = support::ChildProcess::spawn([&](int Fd) {
          // One Writer per worker stream: the header + StreamBegin go
          // out first, then one flush per module (take() drains the
          // framed bytes; string interning persists across flushes).
          support::wire::Writer W;
          W.beginStream(support::wire::StreamKind::Shard,
                        ShardPayloadVersion);
          if (!support::writeAll(Fd, W.take()))
            ::_exit(123);
          for (ModuleId Id : Mine) {
            // The shard-soak's worker-kill site: die like a crashed or
            // OOM-killed worker would, mid-protocol.
            if (WS_FAILPOINT("shard.worker.kill"))
              ::_exit(121);
            std::vector<ModResult> One =
                runShardWave(D, {Id}, Out, DL, nullptr);
            encodeResult(W, One.front());
            if (!support::writeAll(Fd, W.take()))
              ::_exit(123);
          }
          W.finish();
          (void)support::writeAll(Fd, W.take());
        });
        if (!Spawned) {
          FailedToSpawn.push_back(S);
          continue;
        }
        ++Stats.WorkersSpawned;
        WorkersC.add();
        Children.push_back(Pending{S, std::move(*Spawned)});
      }

      // Merge in shard order; the final diag order is by module id
      // regardless, so join order only affects wall-clock.
      std::vector<std::vector<ModResult>> ShardResults(Opts.Shards);
      std::vector<bool> ShardHealthy(Opts.Shards, false);
      std::vector<std::string> ShardDeathNote(Opts.Shards);
      for (Pending &P : Children) {
        support::ChildResult CR = P.Child.join();
        bool CleanEnd = false;
        ShardResults[P.Shard] = parseShardOutput(CR.Output, D, CleanEnd);
        ShardHealthy[P.Shard] = CR.cleanExit() && CleanEnd;
        if (!ShardHealthy[P.Shard]) {
          ShardDeathNote[P.Shard] =
              CR.Signalled ? "signal " + std::to_string(CR.Signal)
                           : "exit " + std::to_string(CR.ExitCode);
        }
      }
      for (unsigned S : FailedToSpawn)
        ShardDeathNote[S] = "fork failed";

      for (unsigned S = 0; S != Opts.Shards; ++S) {
        if (ByShard[S].empty())
          continue;
        std::map<ModuleId, ModResult *> BysId;
        for (ModResult &R : ShardResults[S])
          BysId[R.Id] = &R;
        bool Died = false;
        for (ModuleId Id : ByShard[S]) {
          auto It = BysId.find(Id);
          if (It != BysId.end()) {
            settle(*It->second);
            continue;
          }
          // Unaccounted module of a dead/odd worker: fail closed.
          Died = true;
          ModResult R;
          R.Id = Id;
          R.State = ModState::Panicked;
          R.Diags.add(
              support::Diag(support::DiagCode::WS604_WORKER_PANIC,
                            "shard worker died before summarizing "
                            "module '" +
                                D.module(Id).Name + "'")
                  .withNote("module", D.module(Id).Name)
                  .withNote("shard", std::to_string(S))
                  .withNote("worker",
                            ShardDeathNote[S].empty() ? "truncated output"
                                                      : ShardDeathNote[S]));
          settle(R);
        }
        if (Died || (!ShardHealthy[S] && !ByShard[S].empty())) {
          ++Stats.WorkerDeaths;
          DeathsC.add();
        }
      }
    }
  }
  WavesC.add(Stats.Waves);
  InferredC.add(Stats.Inferred);

  // Slice delivery (--shard I/N): everything was computed, but only the
  // owned modules' summaries and diagnostics leave this call.
  const bool Slice = Opts.SliceShard >= 0;
  auto owned = [&](ModuleId Id) {
    return !Slice ||
           Id % Opts.Shards == static_cast<unsigned>(Opts.SliceShard);
  };
  if (Slice)
    for (auto It = Out.begin(); It != Out.end();) {
      if (owned(It->first))
        ++It;
      else
        It = Out.erase(It);
    }

  // Verdict: every failed module's diagnostics in module-id order — the
  // exact list SummaryEngine::analyze produces.
  support::Status Verdict;
  for (ModuleId Id = 0; Id != D.numModules(); ++Id)
    if (owned(Id))
      Verdict.append(Loops[Id]);

  size_t DoneCount = 0, CancelledCount = 0, PanickedCount = 0;
  for (ModuleId Id = 0; Id != D.numModules(); ++Id) {
    switch (States[Id]) {
    case ModState::Done:
      ++DoneCount;
      break;
    case ModState::Cancelled:
      ++CancelledCount;
      break;
    case ModState::Panicked:
      ++PanickedCount;
      break;
    default:
      break;
    }
  }
  if (CancelFlag || CancelledCount != 0) {
    CancelledC.add(CancelledCount);
    Verdict.add(support::Diag(support::DiagCode::WS601_CANCELLED,
                              "analysis cancelled before completion")
                    .withNote("completed", std::to_string(DoneCount))
                    .withNote("cancelled", std::to_string(CancelledCount))
                    .withNote("modules", std::to_string(D.numModules())));
  }

  Stats.Cancelled = CancelledCount;
  Stats.Panicked = PanickedCount;
  Stats.Seconds = T.seconds();
  return Verdict;
}

// --- Sharded Stage-3 --------------------------------------------------------

CircuitCheckResult
analysis::checkCircuitSharded(const Circuit &Circ,
                              const std::map<ModuleId, ModuleSummary>
                                  &Summaries,
                              unsigned Shards) {
  Timer T;
  Shards = std::max(1u, Shards);
  trace::Span CheckSpan("analysis.check_circuit", "analysis");
  CheckSpan.note("circuit", Circ.name())
      .note("mode", "sharded")
      .note("shards", static_cast<uint64_t>(Shards));

  CircuitCheckResult Result;
  PortGraph PG = PortGraph::build(Circ, Summaries);
  const auto &Conns = Circ.connections();
  std::vector<const ModuleSummary *> InstSummary;
  InstSummary.reserve(Circ.instances().size());
  for (const Circuit::Instance &Inst : Circ.instances())
    InstSummary.push_back(&Summaries.at(Inst.Def));

  // Stage 2 on the coordinator (cheap: two sort lookups per connection);
  // the expensive Stage-3 queries are what gets sharded.
  std::vector<uint32_t> Checked;
  std::vector<uint8_t> Failed(Conns.size(), 0);
  for (uint32_t I = 0; I != Conns.size(); ++I) {
    if (classifyConnection(Circ, Summaries, Conns[I]) ==
        ConnectionSafety::SafeBySort) {
      ++Result.SafeBySort;
      continue;
    }
    ++Result.NeedsCheck;
    Checked.push_back(I);
  }

  // Round-robin the checked connections across shard threads. Each
  // shard runs its own bit-parallel kernel over the shared (read-only)
  // port graph and writes only its own connections' Failed slots.
  auto shardBody = [&](unsigned Shard) {
    struct PairQuery {
      uint32_t Conn;
      uint32_t SrcNode;
    };
    std::vector<PairQuery> Queries;
    for (size_t K = Shard; K < Checked.size(); K += Shards) {
      const uint32_t I = Checked[K];
      const Connection &C = Conns[I];
      for (WireId W2 : InstSummary[C.To.Inst]->outputPortSet(C.To.Port))
        Queries.push_back({I, PG.nodeOf(PortRef{C.To.Inst, W2})});
    }
    // Worker threads are short-lived, so the scratch arena lives in the
    // thread_local slot and survives across shard invocations on pool
    // threads; lane width scales to this shard's query count.
    static thread_local ReachabilityKernel::Scratch SweepScratch;
    ReachabilityKernel Kernel(
        PG.csr(), SweepScratch,
        ReachabilityKernel::laneWordsFor(Queries.size()));
    const uint32_t Lanes = Kernel.laneCount();
    std::vector<uint32_t> Sources;
    for (size_t Base = 0; Base < Queries.size(); Base += Lanes) {
      const size_t Count = std::min<size_t>(Lanes, Queries.size() - Base);
      Sources.clear();
      for (size_t K = 0; K != Count; ++K)
        Sources.push_back(Queries[Base + K].SrcNode);
      Kernel.sweep(Sources.data(), static_cast<uint32_t>(Count));
      // Same run-grouped decode as checkCircuitPairwise: queries for a
      // connection are contiguous, so the w1 row lookups hoist out of
      // the per-lane loop and runs are tested with word masks.
      for (size_t RunLo = 0; RunLo != Count;) {
        const uint32_t ConnIdx = Queries[Base + RunLo].Conn;
        size_t RunHi = RunLo + 1;
        while (RunHi != Count && Queries[Base + RunHi].Conn == ConnIdx)
          ++RunHi;
        if (Failed[ConnIdx]) {
          RunLo = RunHi;
          continue;
        }
        const Connection &C = Conns[ConnIdx];
        const ModuleSummary &FromSummary = *InstSummary[C.From.Inst];
        for (WireId W1 : FromSummary.inputPortSet(C.From.Port)) {
          const uint64_t *Row =
              Kernel.row(PG.nodeOf(PortRef{C.From.Inst, W1}));
          const uint32_t WordBits = ReachabilityKernel::WordBits;
          bool Hit = false;
          for (size_t Word = RunLo / WordBits;
               Word != (RunHi + WordBits - 1) / WordBits && !Hit; ++Word) {
            uint64_t Keep = ~uint64_t{0};
            if (Word == RunLo / WordBits)
              Keep &= ~uint64_t{0} << (RunLo % WordBits);
            if (Word == (RunHi - 1) / WordBits && RunHi % WordBits != 0)
              Keep &= ~uint64_t{0} >> (WordBits - RunHi % WordBits);
            Hit = (Row[Word] & Keep) != 0;
          }
          if (Hit) {
            Failed[ConnIdx] = 1;
            break;
          }
        }
        RunLo = RunHi;
      }
    }
  };

  if (Shards == 1 || Checked.size() <= 1) {
    shardBody(0);
  } else {
    std::vector<std::thread> Threads;
    for (unsigned S = 0; S != Shards; ++S)
      Threads.emplace_back(shardBody, S);
    for (std::thread &Th : Threads)
      Th.join();
  }

  // Failure emission in connection order: byte-identical to
  // checkCircuitPairwise whatever the shard count.
  Result.WellConnected = true;
  for (uint32_t I = 0; I != Conns.size(); ++I) {
    if (!Failed[I])
      continue;
    Result.WellConnected = false;
    const Connection &C = Conns[I];
    Result.Diags.add(
        support::Diag(support::DiagCode::WS101_COMB_LOOP,
                      "connection is not well-connected")
            .withHop(Circ.instances()[C.From.Inst].Name,
                     Circ.defOf(C.From.Inst).wire(C.From.Port).Name)
            .withHop(Circ.instances()[C.To.Inst].Name,
                     Circ.defOf(C.To.Inst).wire(C.To.Port).Name));
  }
  Result.Seconds = T.seconds();
  return Result;
}
