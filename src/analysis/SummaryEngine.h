//===- analysis/SummaryEngine.h - Parallel cached Stage-1 -------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The production driver for Stage-1 inference. Section 5.5 argues that
/// per-module summary computation is embarrassingly modular: a summary
/// depends only on the module's own body plus the summaries of its
/// instantiated definitions. The SummaryEngine exploits exactly that
/// factoring twice over:
///
///  * \b Parallelism — the design's module-instantiation DAG is scheduled
///    onto a work-stealing ThreadPool; a module starts as soon as its
///    instantiated definitions are summarized, so independent subtrees of
///    the hierarchy are inferred concurrently.
///  * \b Memoization — results live in a content-addressed SummaryCache.
///    A module's cache key is ir::structuralHash of its body combined
///    with the keys of its instantiated definitions (in instance order),
///    so a hit is a proof that inference would recompute the same
///    summary. Re-checks, incremental sessions, and repeated benchmark
///    sweeps all hit the cache; edits invalidate exactly the changed
///    module and its transitive instantiators.
///
/// Determinism contract: for the same design, analyze() produces
/// structurallyEqual summaries and byte-identical diagnostics regardless
/// of thread count or cache state. On loop-containing designs every
/// module whose dependencies summarized cleanly is analyzed and its loop
/// reported, sorted by module id — exactly the list serial analyzeDesign
/// emits. The differential and property suites under tests/ enforce both
/// halves of this contract.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_ANALYSIS_SUMMARYENGINE_H
#define WIRESORT_ANALYSIS_SUMMARYENGINE_H

#include "analysis/CheckOptions.h"
#include "analysis/SortInference.h"
#include "ir/Design.h"
#include "support/Deadline.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace wiresort::analysis {

/// Thread-safe content-addressed store of module summaries.
///
/// Keys are SummaryEngine cache keys (body hash + sub-summary keys), so
/// equal keys imply structurally identical summaries up to the module id
/// of the owning design, which lookup() patches for the caller.
class SummaryCache {
public:
  /// \returns the cached summary for \p Key with Id/ModuleName rewritten
  /// to \p Id / \p Name, or std::nullopt. Counts a hit or a miss.
  std::optional<ModuleSummary> lookup(uint64_t Key, ir::ModuleId Id,
                                      const std::string &Name);

  /// Memoizes \p S under \p Key (first write wins; a racing duplicate
  /// insert of the same key carries an identical summary by
  /// construction).
  void insert(uint64_t Key, const ModuleSummary &S);

  size_t size() const;
  size_t hits() const { return Hits; }
  size_t misses() const { return Misses; }
  void resetCounters();
  void clear();

private:
  mutable std::mutex Mutex;
  std::map<uint64_t, ModuleSummary> Entries;
  size_t Hits = 0;
  size_t Misses = 0;
};

/// Per-call counters for the most recent analyze(). The same values are
/// mirrored into the support::trace registry (counters "engine.modules",
/// "engine.cache_hits", "engine.inferred", "engine.ascribed", and the
/// "engine.infer_us" per-module histogram — docs/OBSERVABILITY.md)
/// whenever a trace::Session is live; this struct is the per-call
/// snapshot that works even with tracing disabled, the registry is the
/// session-cumulative view.
struct EngineStats {
  size_t Modules = 0;    ///< Modules the design required summaries for.
  size_t CacheHits = 0;  ///< Summaries served from the cache.
  size_t Inferred = 0;   ///< Summaries computed by inferSummary.
  size_t Ascribed = 0;   ///< Summaries taken as-is from the caller.
  size_t Cancelled = 0;  ///< Modules abandoned to a deadline (WS601).
  size_t Panicked = 0;   ///< Modules whose worker threw (WS604).
  double Seconds = 0.0;  ///< Wall-clock time of the whole analyze().
  unsigned ThreadsUsed = 1;
};

/// Everything one analyze pass produced besides the summaries
/// themselves: its counters and the per-module cache keys of the design
/// it ran over. analyzeShared() fills one of these per call instead of
/// mutating engine members, which is what lets a resident engine serve
/// concurrent requests (docs/SERVING.md).
struct AnalyzeOutcome {
  EngineStats Stats;
  std::vector<uint64_t> Keys;
};

/// What loadCache managed to recover from a sidecar. Degradation is the
/// point: corrupt or unreadable records cost warm starts, never the
/// run — Warnings carries the WS602/WS603 evidence (with the sidecar
/// line of each quarantined record) for the caller to surface.
struct CacheLoadResult {
  size_t Loaded = 0;      ///< Summaries seeded into the in-memory cache.
  size_t Quarantined = 0; ///< Records skipped for checksum/parse damage.
  support::DiagList Warnings;
};

/// Scheduler + cache front end replacing serial analyzeDesign on every
/// production path (wiresort-check, circuit checking, the benches).
class SummaryEngine {
public:
  SummaryEngine() = default;
  explicit SummaryEngine(EngineConfig Cfg) : Cfg(Cfg) {}

  /// Deprecated: construct from the flat pre-split options aggregate.
  /// Takes the engine-facing half; TimeoutMs is honored by the
  /// three-argument analyze() for compatibility. Goes away with
  /// CheckOptions itself.
  explicit SummaryEngine(const CheckOptions &Opts)
      : Cfg(Opts.engine()), LegacyTimeoutMs(Opts.TimeoutMs) {}

  /// Engine configuration this instance was built with.
  const EngineConfig &config() const { return Cfg; }

  /// Analyzes every module of \p D, filling \p Out (cleared first) with a
  /// summary per module exactly as serial analyzeDesign would. Modules
  /// present in \p Ascribed are taken as-is (opaque IP; Section 4).
  /// \returns the combinational-loop diagnostics of every module whose
  /// dependencies summarized cleanly, sorted by module id (empty — check
  /// hasError() — on success); dependents of failed modules are skipped
  /// silently and \p Out holds the summaries of everything that did
  /// summarize.
  support::Status
  analyze(const ir::Design &D, std::map<ir::ModuleId, ModuleSummary> &Out,
          const std::map<ir::ModuleId, ModuleSummary> &Ascribed = {});

  /// Like analyze() but bounded by \p DL: when the deadline expires (or
  /// its token is cancelled) no new module is started, every unfinished
  /// module and its dependents are marked Cancelled, and the returned
  /// status carries — after the usual per-module diagnostics — one
  /// WS601_CANCELLED error noting how many modules completed and how
  /// many were abandoned. Summaries of completed modules are still
  /// delivered through \p Out (partial progress is a feature: a caller
  /// can warm the cache even from a timed-out run). An inert deadline
  /// behaves exactly like the two-argument overload.
  support::Status
  analyze(const ir::Design &D, std::map<ir::ModuleId, ModuleSummary> &Out,
          const std::map<ir::ModuleId, ModuleSummary> &Ascribed,
          const support::Deadline &DL);

  /// The re-entrant core of analyze(): identical semantics, but every
  /// per-call artifact (stats, cache keys) is written into \p Outcome
  /// instead of engine members, and the only shared state touched is the
  /// SummaryCache, which is thread-safe. Any number of threads may call
  /// analyzeShared() on the same engine concurrently — the resident
  /// service (src/driver/) runs every request through this entry point.
  /// The member-mutating analyze() overloads are thin wrappers that copy
  /// the outcome back into stats()/keyOf()/saveCache() state and remain
  /// single-caller-at-a-time.
  support::Status
  analyzeShared(const ir::Design &D,
                std::map<ir::ModuleId, ModuleSummary> &Out,
                const std::map<ir::ModuleId, ModuleSummary> &Ascribed,
                const support::Deadline &DL, AnalyzeOutcome &Outcome);

  /// Pure key computation: structuralHash of each module body folded
  /// with the keys of its instantiated definitions in instance order
  /// (ascribed modules key on summary content). The one key function
  /// shared — by construction, not convention — between analyze paths,
  /// the ShardedEngine, and saveCache.
  static std::vector<uint64_t>
  computeKeys(const ir::Design &D,
              const std::map<ir::ModuleId, ModuleSummary> &Ascribed = {});

  /// Computes and retains (for keyOf/saveCache) the cache key of every
  /// module of \p D: structuralHash of the body folded with the keys of
  /// the instantiated definitions in instance order; ascribed modules
  /// key on their summary content instead. analyze() calls this itself;
  /// it is public so the ShardedEngine (analysis/Sharded.h) shares the
  /// exact same key computation — and therefore byte-identical saveCache
  /// output — without running the in-process scheduler.
  const std::vector<uint64_t> &
  primeKeys(const ir::Design &D,
            const std::map<ir::ModuleId, ModuleSummary> &Ascribed = {});

  /// Counters for the most recent analyze() call.
  const EngineStats &stats() const { return Stats; }

  /// The engine's cache (shared across analyze() calls; hand the same
  /// engine to repeated checks to get warm-cache behavior).
  SummaryCache &cache() { return Cache; }

  /// Cache key of module \p Id computed by the last analyze() call.
  uint64_t keyOf(ir::ModuleId Id) const { return Keys.at(Id); }

  /// Persists the last analyze()'s summaries of \p D as a cache-v3 wire
  /// stream (docs/FORMATS.md): one CacheEntry record per module carrying
  /// its cache key and name-based summary body, every record
  /// length-prefixed and FNV-1a-checksummed by the framing. The write is
  /// crash-safe: the whole stream is composed in memory, written to
  /// Path+".tmp", fsync'd, and renamed over \p Path, so an interrupted
  /// save leaves either the old cache or the new one — never a torn
  /// file. Transient I/O failures are retried a bounded number of times
  /// with backoff. \returns an empty Status on success, or a
  /// WS602_CACHE_IO warning naming the failing path and syscall (the
  /// caller keeps its verdict; a failed save only costs the next run its
  /// warm start).
  support::Status
  saveCache(const std::string &Path, const ir::Design &D,
            const std::map<ir::ModuleId, ModuleSummary> &Summaries) const;

  /// Re-entrant saveCache: identical stream bytes, but the per-module
  /// \p Keys come from the caller (an AnalyzeOutcome from analyzeShared)
  /// instead of the engine's last-analyze members.
  support::Status
  saveCache(const std::string &Path, const ir::Design &D,
            const std::map<ir::ModuleId, ModuleSummary> &Summaries,
            const std::vector<uint64_t> &Keys) const;

  /// Seeds the cache from a sidecar written by saveCache, resolving port
  /// names against \p D. The first byte is sniffed: a wire stream loads
  /// through the cache-v3 reader, anything else through the legacy
  /// v1/v2 text parser. Staleness of any kind is harmless: entries whose
  /// recorded key no longer matches the design never hit, and records
  /// that no longer resolve (module renamed away, interface changed) are
  /// skipped rather than loaded. Damage is quarantined, never fatal: a
  /// v2 record failing its recorded checksum is skipped with a
  /// WS603_CACHE_CORRUPT warning; a v3 record failing its framing
  /// checksum (or truncating) quarantines the rest of the stream (the
  /// length prefix after a corrupt frame cannot be trusted) with one
  /// WS603 warning naming the byte offset — either way the run degrades
  /// to cold inference for the affected modules only. A legacy text
  /// cache that loads cleanly is migrated to v3 in place via the same
  /// crash-safe atomic write as saveCache, announced by a
  /// WS605_CACHE_MIGRATED note.
  /// \returns the load tally plus warnings, or a WS502_CACHE_FORMAT
  /// diagnostic when the file is neither a cache stream nor
  /// sidecar-shaped text (--cache pointed at something else). A missing
  /// file is not an error (empty result).
  support::Expected<CacheLoadResult> loadCache(const std::string &Path,
                                               const ir::Design &D);

private:
  EngineConfig Cfg;
  /// Timeout carried over from a deprecated CheckOptions construction;
  /// honored only by the three-argument analyze(). Dies with the shim.
  uint64_t LegacyTimeoutMs = 0;
  SummaryCache Cache;
  EngineStats Stats;
  /// Per-module cache keys of the last analyzed design.
  std::vector<uint64_t> Keys;
};

} // namespace wiresort::analysis

#endif // WIRESORT_ANALYSIS_SUMMARYENGINE_H
