//===- analysis/Sharded.h - Multi-process sharded Stage-1 -------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sharded Stage-1 inference and Stage-3 circuit checking over N workers
/// (docs/SCALE.md). The paper's summary factoring makes the module DAG
/// embarrassingly partitionable: a module's summary depends only on its
/// own body plus the summaries of its instantiated definitions, so any
/// partition that respects dependency order computes the same summaries.
/// The ShardedEngine schedules the DAG in *waves* (topological levels);
/// within a wave every module's dependencies are already summarized, so
/// the wave's modules partition by the deterministic ownership rule
///
///   owner(module) = module-id mod shards
///
/// and run with zero cross-worker communication. Workers are either
/// in-process threads (Mode::InProcess — one result buffer per shard, no
/// shared mutable state) or fork+pipe child processes (Mode::Fork — each
/// worker an isolated address space, results and diagnostics returned
/// over a pipe using analysis/SummaryIO-shaped records and
/// support::encodeDiag lines; a worker death is observed as a truncated
/// stream and fails closed as WS604 for every module it owned).
///
/// Determinism contract (the ShardDifferentialTest invariant): for the
/// same design, analyze() produces structurallyEqual summaries and
/// byte-identical diagnostics regardless of shard count, execution mode,
/// or cache state — the exact list SummaryEngine::analyze and serial
/// analyzeDesign emit, diagnostics sorted by module id. saveCache through
/// the underlying engine() writes byte-identical sidecars too, because
/// the cache keys come from the same SummaryEngine::primeKeys pass.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_ANALYSIS_SHARDED_H
#define WIRESORT_ANALYSIS_SHARDED_H

#include "analysis/SummaryEngine.h"
#include "analysis/WellConnected.h"

#include <cstdint>
#include <map>

namespace wiresort::analysis {

/// How sharded Stage-1 runs its workers.
struct ShardOptions {
  /// Worker count; 0 and 1 both mean one worker (still wave-scheduled).
  unsigned Shards = 2;

  enum class Mode : uint8_t {
    /// One thread per shard, disjoint result buffers, merge on the
    /// coordinating thread. The TSan-checked path.
    InProcess,
    /// fork+pipe child per shard: full address-space isolation, so a
    /// crashing worker can never corrupt the coordinator. The path the
    /// shard-level fault soak kills workers on.
    Fork,
  };
  Mode ExecMode = Mode::InProcess;

  /// Script-level sharding (`wiresort-check --shard I/N`): when >= 0,
  /// analyze() still summarizes the whole design (a slice's modules need
  /// their dependencies regardless) but *delivers* only the slice owned
  /// by this shard — summaries of modules with id mod Shards == SliceShard
  /// in \c Out, and only those modules' diagnostics in the verdict. A
  /// run-wide WS601 cancellation diag is kept in every slice (fail
  /// closed). The N slices partition the serial output exactly: merging
  /// their diag lists by module id reproduces the serial list byte for
  /// byte, and their summary sidecars are disjoint and jointly complete.
  int SliceShard = -1;

  /// Configuration of the underlying SummaryEngine: UseCache governs
  /// the summary cache. (Threads is ignored here — the shard count is
  /// the parallelism; deadlines come in per analyze() call.)
  EngineConfig Engine;
};

/// Counters for the most recent ShardedEngine::analyze call. Mirrored
/// into the trace registry as shard.* counters (docs/OBSERVABILITY.md).
struct ShardStats {
  unsigned Shards = 0;
  size_t Modules = 0;
  size_t Waves = 0;        ///< Topological levels scheduled.
  size_t Inferred = 0;     ///< Summaries computed by workers.
  size_t CacheHits = 0;    ///< Summaries served from the cache.
  size_t Ascribed = 0;     ///< Summaries taken from the caller.
  size_t Cancelled = 0;    ///< Modules abandoned to the deadline.
  size_t Panicked = 0;     ///< Worker panics (incl. dead fork workers).
  size_t WorkersSpawned = 0; ///< Fork-mode children actually forked.
  size_t WorkerDeaths = 0; ///< Fork-mode children that died mid-wave.
  double Seconds = 0.0;
};

/// Wave-scheduled sharded front end over SummaryEngine. One instance is
/// reusable across designs; the summary cache persists across calls
/// (hand the same ShardedEngine repeated designs for warm-cache runs).
class ShardedEngine {
public:
  explicit ShardedEngine(ShardOptions Opts = {});

  /// Sharded Stage-1 over every module of \p D: same outputs as
  /// SummaryEngine::analyze (see the determinism contract above), with
  /// the additional failure mode that a dead fork worker fails closed —
  /// each module it owned is reported as a WS604 error and its
  /// dependents are skipped, never silently trusted.
  support::Status
  analyze(const ir::Design &D, std::map<ir::ModuleId, ModuleSummary> &Out,
          const std::map<ir::ModuleId, ModuleSummary> &Ascribed = {},
          const support::Deadline &DL = {});

  const ShardStats &stats() const { return Stats; }

  /// The underlying engine: its cache() seeds/collects warm summaries
  /// and its saveCache/loadCache move them through the crash-safe v2
  /// sidecar; keys are primed by analyze() so sidecars are
  /// byte-identical to single-process runs.
  SummaryEngine &engine() { return Engine; }

private:
  ShardOptions Opts;
  SummaryEngine Engine;
  ShardStats Stats;
};

/// Stage-3 sharded circuit check: partitions the connection list of
/// \p Circ round-robin across \p Shards worker threads, each running the
/// Definition 3.1 pairwise check (bit-parallel kernel sweeps) over the
/// shared port graph, and merges failures in connection order. The
/// verdict and diagnostics are byte-identical to checkCircuitPairwise —
/// the equivalence the scale differential suite asserts against
/// checkCircuit as well.
CircuitCheckResult
checkCircuitSharded(const ir::Circuit &Circ,
                    const std::map<ir::ModuleId, ModuleSummary> &Summaries,
                    unsigned Shards);

} // namespace wiresort::analysis

#endif // WIRESORT_ANALYSIS_SHARDED_H
