//===- analysis/Incremental.h - Design-time incremental checks --*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4's design-time checking policy: rather than re-checking the
/// whole circuit after every connection, a check is triggered only when a
/// newly formed connection's forward combinational reachability includes a
/// to-port input \b and its backward reachability includes a from-port
/// output. The paper notes this guarantees (1) a check never runs unless
/// a problem could potentially be found and (2) an actual problem is
/// found as soon as it exists.
///
/// Because the circuit was loop-free before the new connection, any new
/// loop must pass through it, so the triggered check reduces to "is the
/// connection's source reachable from its target".
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_ANALYSIS_INCREMENTAL_H
#define WIRESORT_ANALYSIS_INCREMENTAL_H

#include "analysis/Summary.h"
#include "ir/Circuit.h"
#include "support/Diag.h"

#include <map>
#include <string>
#include <vector>

namespace wiresort::analysis {

class SummaryEngine;

/// Interactive checker that observes a circuit as it is wired up.
class IncrementalChecker {
public:
  /// Verdict for one addConnection call.
  struct Step {
    /// Whether the Section 4 trigger condition fired.
    bool CheckTriggered = false;
    /// WS101_COMB_LOOP diagnostics for loops found (only possible when
    /// CheckTriggered); empty otherwise.
    support::DiagList Diags;
  };

  IncrementalChecker(const ir::Circuit &Circ,
                     const std::map<ir::ModuleId, ModuleSummary> &Summaries)
      : Circ(&Circ), Summaries(&Summaries) {}

  /// Engine-fed flavor: Stage 1 for the circuit's design runs through
  /// \p Engine (parallel + cached — repeated design-time sessions over
  /// the same library hit the engine's summary cache) and the checker
  /// owns the resulting summaries. The design must be loop-free: a
  /// session cannot start from unsummarizable modules (asserted).
  IncrementalChecker(const ir::Circuit &Circ, SummaryEngine &Engine);

  // Summaries may point into OwnedSummaries; copying would dangle.
  IncrementalChecker(const IncrementalChecker &) = delete;
  IncrementalChecker &operator=(const IncrementalChecker &) = delete;

  /// Registers \p C (which the caller has already added to the circuit)
  /// and decides whether to check. State is maintained across calls.
  Step addConnection(const ir::Connection &C);

  /// Statistics: how many connections skipped the check entirely.
  size_t numChecksTriggered() const { return ChecksTriggered; }
  size_t numChecksSkipped() const { return ChecksSkipped; }

private:
  /// Nodes are (inst, port) keys into adjacency built lazily from the
  /// summaries plus the connections seen so far.
  uint64_t keyOf(ir::PortRef Ref) const {
    return (static_cast<uint64_t>(Ref.Inst) << 32) | Ref.Port;
  }

  /// DFS over summary edges + seen connections. \returns true if
  /// \p Target is reachable from \p Start.
  bool reaches(ir::PortRef Start, ir::PortRef Target,
               std::vector<ir::PortRef> *Path) const;

  /// Forward reachability hits some to-port input?
  bool forwardHitsToPort(ir::PortRef Start) const;
  /// Backward reachability hits some from-port output?
  bool backwardHitsFromPort(ir::PortRef Start) const;

  const ir::Circuit *Circ;
  const std::map<ir::ModuleId, ModuleSummary> *Summaries;
  /// Backing storage when constructed from an engine; Summaries points
  /// here in that case.
  std::map<ir::ModuleId, ModuleSummary> OwnedSummaries;
  /// Connections registered so far: out-port key -> in ports, and the
  /// reverse direction for backward walks.
  std::map<uint64_t, std::vector<ir::PortRef>> Fwd;
  std::map<uint64_t, std::vector<ir::PortRef>> Bwd;
  size_t ChecksTriggered = 0;
  size_t ChecksSkipped = 0;
};

} // namespace wiresort::analysis

#endif // WIRESORT_ANALYSIS_INCREMENTAL_H
