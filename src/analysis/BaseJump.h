//===- analysis/BaseJump.h - The helpful/demanding baseline -----*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// BaseJump STL's informal endpoint taxonomy (Section 2.1), formalized
/// exactly as the paper does in Section 3.6:
///
///  * a producer endpoint (ready_in, valid_out, data_out) is \b helpful
///    iff ready_in is not in input-ports(M, valid_out), else demanding;
///  * a consumer endpoint (ready_out, valid_in, data_in) is \b helpful
///    iff valid_in is not in input-ports(M, ready_out), else demanding.
///
/// BaseJump's rule forbids only demanding-demanding connections. The
/// paper shows (Figure 3, Section 3.6) that this is unsound: a
/// helpful-helpful connection can still close a combinational loop
/// through a third module. We implement the classifier so the test and
/// benchmark suites can demonstrate the gap against the wire-sort
/// checker.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_ANALYSIS_BASEJUMP_H
#define WIRESORT_ANALYSIS_BASEJUMP_H

#include "analysis/Summary.h"

#include <cstdint>

namespace wiresort::analysis {

/// BaseJump's two endpoint temperaments.
enum class Temperament : uint8_t { Helpful, Demanding };

inline const char *temperamentName(Temperament T) {
  return T == Temperament::Helpful ? "helpful" : "demanding";
}

/// A ready-valid producer endpoint of a module: sends data out.
struct ProducerEndpoint {
  ir::WireId ReadyIn = ir::InvalidId;
  ir::WireId ValidOut = ir::InvalidId;
  ir::WireId DataOut = ir::InvalidId;
};

/// A ready-valid consumer endpoint of a module: receives data.
struct ConsumerEndpoint {
  ir::WireId ReadyOut = ir::InvalidId;
  ir::WireId ValidIn = ir::InvalidId;
  ir::WireId DataIn = ir::InvalidId;
};

/// Section 3.6: producer is helpful iff ready_in is not in
/// input-ports(M, valid_out).
Temperament classifyProducer(const ModuleSummary &Summary,
                             const ProducerEndpoint &E);

/// Section 3.6: consumer is helpful iff valid_in is not in
/// input-ports(M, ready_out).
Temperament classifyConsumer(const ModuleSummary &Summary,
                             const ConsumerEndpoint &E);

/// BaseJump's connection rule: only demanding-demanding is unsafe.
inline bool baseJumpAllowsConnection(Temperament Producer,
                                     Temperament Consumer) {
  return Producer == Temperament::Helpful ||
         Consumer == Temperament::Helpful;
}

} // namespace wiresort::analysis

#endif // WIRESORT_ANALYSIS_BASEJUMP_H
