//===- analysis/CheckOptions.h - Engine vs per-request knobs ----*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The knob surface for running wire-sort checks, split along the
/// residency boundary the serving layer introduced (docs/SERVING.md):
///
///  * \ref EngineConfig — knobs that configure a *resident engine*
///    (worker threads, whether the content-addressed summary cache is
///    consulted). A long-lived SummaryEngine is built from one of these
///    and then serves many requests.
///  * \ref RequestOptions — knobs that vary *per request* (deadline,
///    output format, cache sidecar path, tracing, fault schedule). A
///    resident engine can serve many differently-configured requests
///    concurrently without copying or re-creating engine state.
///
/// \ref CheckOptions, the previous single flat struct, is kept for one
/// release as a deprecated aggregate of both halves (the same grace
/// period the PR-4 `EngineOptions` alias got before PR 8 removed it):
/// every pre-split call site keeps compiling, and engine()/request()
/// project out the halves for code migrating to the new surface.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_ANALYSIS_CHECKOPTIONS_H
#define WIRESORT_ANALYSIS_CHECKOPTIONS_H

#include <cstdint>
#include <string>

namespace wiresort::analysis {

/// Diagnostic/verdict rendering (docs/DIAGNOSTICS.md).
enum class Format { Text, Json };

/// Configuration of a (possibly resident) SummaryEngine: state that is
/// fixed for the engine's lifetime and shared by every request it
/// serves. See docs/ENGINE.md and docs/SERVING.md.
struct EngineConfig {
  /// Worker threads for SummaryEngine; 0 = hardware concurrency,
  /// 1 = serial (no pool). A resident service usually runs each request
  /// at 1 and gets its parallelism from concurrent requests instead.
  unsigned Threads = 0;

  /// When false, every analyze() call re-infers everything (the
  /// in-memory summary cache is neither consulted nor populated) — the
  /// differential-testing baseline.
  bool UseCache = true;
};

/// Options for one check request. A resident engine serves many of
/// these, each with its own deadline/format/fault schedule, without
/// copying engine state.
struct RequestOptions {
  /// Persistent summary-cache sidecar ("" = in-memory only). Consumed
  /// by the driver/CLI via SummaryEngine::loadCache/saveCache; the
  /// engine itself never opens it implicitly.
  std::string CachePath;

  /// Diagnostic/verdict rendering (docs/DIAGNOSTICS.md).
  Format OutputFormat = Format::Text;

  /// Chrome trace-event JSON destination for a trace::Session ("" = no
  /// tracing). See docs/OBSERVABILITY.md.
  std::string TraceOutPath;

  /// Collect and render the support::trace counter/histogram registry
  /// (wiresort-check --stats).
  bool Stats = false;

  /// Wall-clock budget for this request in milliseconds (0 = none).
  /// The driver turns this into one support::Deadline covering parse +
  /// analysis; a request that exceeds it fails closed with a
  /// WS601_CANCELLED partial-progress diag and exit code 3
  /// (docs/ROBUSTNESS.md).
  uint64_t TimeoutMs = 0;

  /// Fault-injection schedule ("site=mode,..." — support/FailPoint.h),
  /// normally empty. NOTE: the failpoint registry is process-wide, so
  /// in a resident service a request's schedule is visible to requests
  /// running concurrently with it (docs/SERVING.md degradation matrix).
  std::string FailpointSpec;

  /// Seed for probabilistic failpoint triggers, so a (spec, seed) pair
  /// replays byte-identically.
  uint64_t FaultSeed = 0;
};

/// Deprecated aggregate of EngineConfig + RequestOptions, kept for one
/// release so pre-split call sites keep compiling. New code should pass
/// EngineConfig to engines and RequestOptions to the driver; this shim
/// (like the PR-4 `EngineOptions` alias before it) will be removed.
struct CheckOptions {
  using Format = ::wiresort::analysis::Format;

  // EngineConfig half.
  unsigned Threads = 0;
  bool UseCache = true;

  // RequestOptions half.
  std::string CachePath;
  Format OutputFormat = Format::Text;
  std::string TraceOutPath;
  bool Stats = false;
  uint64_t TimeoutMs = 0;
  std::string FailpointSpec;
  uint64_t FaultSeed = 0;

  /// The engine-facing half.
  EngineConfig engine() const { return {Threads, UseCache}; }

  /// The per-request half.
  RequestOptions request() const {
    return {CachePath, OutputFormat, TraceOutPath, Stats,
            TimeoutMs, FailpointSpec, FaultSeed};
  }
};

} // namespace wiresort::analysis

#endif // WIRESORT_ANALYSIS_CHECKOPTIONS_H
