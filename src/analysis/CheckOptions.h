//===- analysis/CheckOptions.h - The one options struct ---------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single knob surface for running a wire-sort check. Before this
/// header the knobs were scattered: EngineOptions{Threads,UseCache} on
/// the engine, a cache-path argument threaded by hand, and ad-hoc
/// --threads/--cache/--format parsing in the CLI. CheckOptions collapses
/// them so the engine, wiresort-check, and the benchmark harnesses all
/// consume one struct — each layer reads the fields that concern it and
/// ignores the rest (the engine does not open files; the CLI owns
/// CachePath/TraceOutPath I/O).
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_ANALYSIS_CHECKOPTIONS_H
#define WIRESORT_ANALYSIS_CHECKOPTIONS_H

#include <cstdint>
#include <string>

namespace wiresort::analysis {

/// Options for one end-to-end check (Stage-1 inference + reporting).
struct CheckOptions {
  /// Worker threads for SummaryEngine; 0 = hardware concurrency,
  /// 1 = serial (no pool).
  unsigned Threads = 0;

  /// When false, every analyze() call re-infers everything (the
  /// in-memory summary cache is neither consulted nor populated) — the
  /// differential-testing baseline.
  bool UseCache = true;

  /// Persistent summary-cache sidecar ("" = in-memory only). Consumed
  /// by the CLI/benches via SummaryEngine::loadCache/saveCache; the
  /// engine itself never opens it implicitly.
  std::string CachePath;

  /// Diagnostic/verdict rendering (docs/DIAGNOSTICS.md).
  enum class Format { Text, Json };
  Format OutputFormat = Format::Text;

  /// Chrome trace-event JSON destination for a trace::Session ("" = no
  /// tracing). See docs/OBSERVABILITY.md.
  std::string TraceOutPath;

  /// Collect and render the support::trace counter/histogram registry
  /// (wiresort-check --stats).
  bool Stats = false;

  /// Wall-clock budget for the whole check in milliseconds (0 = none).
  /// The CLI turns this into one support::Deadline covering parse +
  /// analysis; a run that exceeds it fails closed with a
  /// WS601_CANCELLED partial-progress diag and exit code 3
  /// (docs/ROBUSTNESS.md).
  uint64_t TimeoutMs = 0;

  /// Fault-injection schedule ("site=mode,..." — support/FailPoint.h),
  /// normally empty. Consumed by the CLI (`--failpoints`) and the fault
  /// soak harness; the engine itself never arms sites.
  std::string FailpointSpec;

  /// Seed for probabilistic failpoint triggers, so a (spec, seed) pair
  /// replays byte-identically.
  uint64_t FaultSeed = 0;
};

} // namespace wiresort::analysis

#endif // WIRESORT_ANALYSIS_CHECKOPTIONS_H
