//===- analysis/Ascription.h - Designer sort annotations --------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 4's lightweight syntactic annotations: a designer may declare
/// what they believe a port's sort (and, for port sorts, its
/// output-port-set / input-port-set) should be. Computed sorts are checked
/// against these declarations; opaque modules — whose internals are
/// unavailable, e.g. encrypted IP — must be fully ascribed, and their
/// summaries are constructed from the ascriptions alone.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_ANALYSIS_ASCRIPTION_H
#define WIRESORT_ANALYSIS_ASCRIPTION_H

#include "analysis/Summary.h"
#include "ir/Module.h"
#include "support/Diag.h"

#include <string>
#include <vector>

namespace wiresort::analysis {

/// One designer-supplied port annotation.
struct Ascription {
  ir::WireId Port = ir::InvalidId;
  Sort DeclaredSort = Sort::ToSync;
  /// For to-port: the declared output-port-set; for from-port: the
  /// declared input-port-set. Ignored for sync sorts.
  std::vector<ir::WireId> DeclaredPortSet;
  /// Optional subsort declaration for sync sorts.
  SubSort DeclaredSubSort = SubSort::None;
};

/// Checks \p Declared against the computed \p Summary. Declared port sets
/// must match exactly; a declared sync subsort must match the computed
/// one. Ports without ascriptions are accepted silently (they keep their
/// computed sorts, as in the paper's implementation). \returns one
/// WS102_ASCRIPTION_MISMATCH diagnostic per mismatching port (in
/// declaration order; "module"/"port" notes carry the names), empty when
/// every ascription holds.
support::DiagList
checkAscriptions(const ir::Module &M, const ModuleSummary &Summary,
                 const std::vector<Ascription> &Declared);

/// Builds a summary for an opaque module (ports only, no internals) from
/// full ascriptions. Every port of \p M must be ascribed; for port sorts
/// the port set must be supplied. On incomplete or inconsistent
/// ascriptions (e.g. a declared output-port-set inconsistent with the
/// declared input-port-sets of the outputs it names) the result carries a
/// WS103_ASCRIPTION_INCOMPLETE diagnostic.
support::Expected<ModuleSummary>
summaryFromAscriptions(const ir::Module &M, ir::ModuleId Id,
                       const std::vector<Ascription> &Declared);

} // namespace wiresort::analysis

#endif // WIRESORT_ANALYSIS_ASCRIPTION_H
