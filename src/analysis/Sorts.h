//===- analysis/Sorts.h - The wire-sort taxonomy ----------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's key contribution (Section 3.3): every module interface wire
/// is assigned one of four sorts.
///
///  * An input win is \b to-sync when output-ports(M, win) is empty — it
///    cannot combinationally affect any module output — and \b to-port
///    otherwise.
///  * An output wout is \b from-sync when input-ports(M, wout) is empty —
///    it does not combinationally depend on any module input — and
///    \b from-port otherwise.
///
/// Section 3.7 refines the sync sorts with -direct/-indirect subsorts for
/// synchronous-memory composition: a from-sync-direct output is fed
/// straight from state with no intervening combinational logic, and a
/// to-sync-direct input feeds straight into state.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_ANALYSIS_SORTS_H
#define WIRESORT_ANALYSIS_SORTS_H

#include <cstdint>

namespace wiresort::analysis {

/// The four wire sorts of Section 3.3.
enum class Sort : uint8_t {
  ToSync,   ///< Input; combinationally affects no output port.
  ToPort,   ///< Input; combinationally affects at least one output port.
  FromSync, ///< Output; combinationally depends on no input port.
  FromPort, ///< Output; combinationally depends on at least one input port.
};

/// Section 3.7 subsort refinement; meaningful only for the sync sorts.
enum class SubSort : uint8_t {
  None,     ///< Not a sync sort (to-port / from-port).
  Direct,   ///< No combinational logic between the port and state.
  Indirect, ///< Sync, but through combinational logic.
};

/// \returns "to-sync", "to-port", "from-sync", or "from-port".
const char *sortName(Sort S);

/// \returns the paper's table abbreviation: TS, TP, FS, or FP.
const char *sortAbbrev(Sort S);

/// \returns true for the sorts that can never participate in a
/// combinational loop (Property 1).
inline bool isSyncSort(Sort S) {
  return S == Sort::ToSync || S == Sort::FromSync;
}

/// \returns true for input-side sorts.
inline bool isInputSort(Sort S) {
  return S == Sort::ToSync || S == Sort::ToPort;
}

} // namespace wiresort::analysis

#endif // WIRESORT_ANALYSIS_SORTS_H
