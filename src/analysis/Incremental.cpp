//===- analysis/Incremental.cpp - Design-time incremental checks ----------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Incremental.h"

#include "analysis/SummaryEngine.h"

#include <cassert>
#include <set>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

IncrementalChecker::IncrementalChecker(const ir::Circuit &Circ,
                                       SummaryEngine &Engine)
    : Circ(&Circ), Summaries(&OwnedSummaries) {
  support::Status Stage1 = Engine.analyze(Circ.design(), OwnedSummaries);
  assert(!Stage1.hasError() &&
         "incremental sessions need loop-free module libraries");
  (void)Stage1;
}

namespace {
/// DFS frame used by the path-reconstructing search.
struct Frame {
  PortRef Ref;
  size_t NextSucc = 0;
};
} // namespace

bool IncrementalChecker::reaches(PortRef Start, PortRef Target,
                                 std::vector<PortRef> *Path) const {
  std::set<uint64_t> Seen;
  std::vector<Frame> Stack{Frame{Start}};
  Seen.insert(keyOf(Start));

  auto successorsOf = [&](PortRef Ref) {
    std::vector<PortRef> Out;
    const ModuleSummary &Summary =
        Summaries->at(Circ->instances()[Ref.Inst].Def);
    auto SummaryIt = Summary.OutputPortSets.find(Ref.Port);
    if (SummaryIt != Summary.OutputPortSets.end()) {
      for (WireId OutPort : SummaryIt->second)
        Out.push_back(PortRef{Ref.Inst, OutPort});
    } else {
      auto ConnIt = Fwd.find(keyOf(Ref));
      if (ConnIt != Fwd.end())
        Out = ConnIt->second;
    }
    return Out;
  };

  while (!Stack.empty()) {
    Frame &F = Stack.back();
    if (F.Ref == Target) {
      if (Path) {
        Path->clear();
        for (const Frame &G : Stack)
          Path->push_back(G.Ref);
      }
      return true;
    }
    std::vector<PortRef> Succ = successorsOf(F.Ref);
    if (F.NextSucc >= Succ.size()) {
      Stack.pop_back();
      continue;
    }
    PortRef Next = Succ[F.NextSucc++];
    if (Seen.insert(keyOf(Next)).second)
      Stack.push_back(Frame{Next});
  }
  return false;
}

bool IncrementalChecker::forwardHitsToPort(PortRef Start) const {
  std::set<uint64_t> Seen{keyOf(Start)};
  std::vector<PortRef> Work{Start};
  while (!Work.empty()) {
    PortRef Ref = Work.back();
    Work.pop_back();
    const ModuleSummary &Summary =
        Summaries->at(Circ->instances()[Ref.Inst].Def);
    auto SummaryIt = Summary.OutputPortSets.find(Ref.Port);
    if (SummaryIt != Summary.OutputPortSets.end()) {
      // An input port; to-port iff its output-port-set is nonempty.
      if (!SummaryIt->second.empty())
        return true;
      continue;
    }
    auto ConnIt = Fwd.find(keyOf(Ref));
    if (ConnIt == Fwd.end())
      continue;
    for (PortRef Next : ConnIt->second)
      if (Seen.insert(keyOf(Next)).second)
        Work.push_back(Next);
  }
  return false;
}

bool IncrementalChecker::backwardHitsFromPort(PortRef Start) const {
  std::set<uint64_t> Seen{keyOf(Start)};
  std::vector<PortRef> Work{Start};
  while (!Work.empty()) {
    PortRef Ref = Work.back();
    Work.pop_back();
    const ModuleSummary &Summary =
        Summaries->at(Circ->instances()[Ref.Inst].Def);
    auto SummaryIt = Summary.InputPortSets.find(Ref.Port);
    if (SummaryIt != Summary.InputPortSets.end()) {
      // An output port; from-port iff its input-port-set is nonempty.
      if (!SummaryIt->second.empty())
        return true;
      continue;
    }
    auto ConnIt = Bwd.find(keyOf(Ref));
    if (ConnIt == Bwd.end())
      continue;
    for (PortRef Prev : ConnIt->second)
      if (Seen.insert(keyOf(Prev)).second)
        Work.push_back(Prev);
  }
  return false;
}

IncrementalChecker::Step
IncrementalChecker::addConnection(const Connection &C) {
  Step Result;

  // The forward walk from the target must cross into module summaries, so
  // register the edge first; the trigger condition below is evaluated on
  // the circuit including the new connection, as in Section 4.
  Fwd[keyOf(C.From)].push_back(C.To);
  Bwd[keyOf(C.To)].push_back(C.From);

  // Section 4 trigger: forward reach includes a to-port input and
  // backward reach includes a from-port output.
  if (!forwardHitsToPort(C.To) || !backwardHitsFromPort(C.From)) {
    ++ChecksSkipped;
    return Result;
  }
  Result.CheckTriggered = true;
  ++ChecksTriggered;

  // Any loop introduced by the new connection must pass through it, so it
  // exists iff the target reaches back to the source.
  std::vector<PortRef> Path;
  if (reaches(C.To, C.From, &Path)) {
    support::Diag Diag(support::DiagCode::WS101_COMB_LOOP,
                       "connection closes a combinational loop");
    for (PortRef Ref : Path)
      Diag.addHop(Circ->instances()[Ref.Inst].Name,
                  Circ->defOf(Ref.Inst).wire(Ref.Port).Name);
    Result.Diags.add(std::move(Diag));
  }
  return Result;
}
