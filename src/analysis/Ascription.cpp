//===- analysis/Ascription.cpp - Designer sort annotations ----------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Ascription.h"

#include <algorithm>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

const char *analysis::sortName(Sort S) {
  switch (S) {
  case Sort::ToSync:
    return "to-sync";
  case Sort::ToPort:
    return "to-port";
  case Sort::FromSync:
    return "from-sync";
  case Sort::FromPort:
    return "from-port";
  }
  return "?";
}

const char *analysis::sortAbbrev(Sort S) {
  switch (S) {
  case Sort::ToSync:
    return "TS";
  case Sort::ToPort:
    return "TP";
  case Sort::FromSync:
    return "FS";
  case Sort::FromPort:
    return "FP";
  }
  return "?";
}

support::DiagList
analysis::checkAscriptions(const Module &M, const ModuleSummary &Summary,
                           const std::vector<Ascription> &Declared) {
  support::DiagList Mismatches;
  auto report = [&](WireId Port, std::string Msg) {
    Mismatches.add(
        support::Diag(support::DiagCode::WS102_ASCRIPTION_MISMATCH,
                      std::move(Msg))
            .withNote("module", M.Name)
            .withNote("port", M.wire(Port).Name));
  };

  for (const Ascription &A : Declared) {
    const std::string &PortName = M.wire(A.Port).Name;
    Sort Computed = Summary.sortOf(A.Port);
    if (Computed != A.DeclaredSort) {
      report(A.Port, "port '" + PortName + "' declared " +
                         sortName(A.DeclaredSort) + " but computed " +
                         sortName(Computed));
      continue;
    }
    if (!isSyncSort(Computed)) {
      std::vector<WireId> DeclaredSet = A.DeclaredPortSet;
      std::sort(DeclaredSet.begin(), DeclaredSet.end());
      const std::vector<WireId> &ComputedSet =
          isInputSort(Computed) ? Summary.outputPortSet(A.Port)
                                : Summary.inputPortSet(A.Port);
      if (!DeclaredSet.empty() && DeclaredSet != ComputedSet)
        report(A.Port,
               "port '" + PortName + "' declared port set differs from "
               "the computed one");
      continue;
    }
    if (A.DeclaredSubSort != SubSort::None &&
        A.DeclaredSubSort != Summary.subSortOf(A.Port))
      report(A.Port, "port '" + PortName + "' declared subsort differs "
                     "from the computed one");
  }
  return Mismatches;
}

support::Expected<ModuleSummary>
analysis::summaryFromAscriptions(const Module &M, ModuleId Id,
                                 const std::vector<Ascription> &Declared) {
  ModuleSummary Summary;
  Summary.Id = Id;
  Summary.ModuleName = M.Name;

  auto fail = [&](const std::string &Msg) {
    return support::Diag(support::DiagCode::WS103_ASCRIPTION_INCOMPLETE,
                         Msg)
        .withNote("module", M.Name);
  };

  auto findAscription = [&](WireId Port) -> const Ascription * {
    for (const Ascription &A : Declared)
      if (A.Port == Port)
        return &A;
    return nullptr;
  };

  for (WireId In : M.Inputs) {
    const Ascription *A = findAscription(In);
    if (!A) {
      return fail("opaque module '" + M.Name + "': input '" +
                  M.wire(In).Name + "' lacks an ascription");
    }
    if (!isInputSort(A->DeclaredSort)) {
      return fail("opaque module '" + M.Name + "': input '" +
                  M.wire(In).Name + "' ascribed an output sort");
    }
    std::vector<WireId> Set = A->DeclaredPortSet;
    std::sort(Set.begin(), Set.end());
    if (A->DeclaredSort == Sort::ToPort && Set.empty()) {
      return fail("opaque module '" + M.Name + "': to-port input '" +
                  M.wire(In).Name +
                  "' needs an explicit output-port-set");
    }
    if (A->DeclaredSort == Sort::ToSync)
      Set.clear();
    Summary.OutputPortSets[In] = std::move(Set);
    Summary.SubSorts[In] = A->DeclaredSort == Sort::ToSync
                               ? (A->DeclaredSubSort == SubSort::None
                                      ? SubSort::Indirect
                                      : A->DeclaredSubSort)
                               : SubSort::None;
  }

  for (WireId Out : M.Outputs)
    Summary.InputPortSets[Out] = {};

  for (const auto &[In, Outs] : Summary.OutputPortSets) {
    for (WireId Out : Outs) {
      if (Summary.InputPortSets.find(Out) == Summary.InputPortSets.end()) {
        return fail("opaque module '" + M.Name +
                    "': output-port-set names a non-output wire");
      }
      Summary.InputPortSets[Out].push_back(In);
    }
  }
  for (auto &[Out, Ins] : Summary.InputPortSets)
    std::sort(Ins.begin(), Ins.end());

  for (WireId Out : M.Outputs) {
    const Ascription *A = findAscription(Out);
    if (!A) {
      return fail("opaque module '" + M.Name + "': output '" +
                  M.wire(Out).Name + "' lacks an ascription");
    }
    Sort Derived =
        Summary.InputPortSets[Out].empty() ? Sort::FromSync : Sort::FromPort;
    if (A->DeclaredSort != Derived) {
      return fail("opaque module '" + M.Name + "': output '" +
                  M.wire(Out).Name + "' ascribed " +
                  sortName(A->DeclaredSort) +
                  " but the input ascriptions imply " + sortName(Derived));
    }
    if (Derived == Sort::FromPort && !A->DeclaredPortSet.empty()) {
      std::vector<WireId> DeclaredSet = A->DeclaredPortSet;
      std::sort(DeclaredSet.begin(), DeclaredSet.end());
      if (DeclaredSet != Summary.InputPortSets[Out]) {
        return fail("opaque module '" + M.Name + "': output '" +
                    M.wire(Out).Name + "' declared input-port-set is "
                    "inconsistent with the input ascriptions");
      }
    }
    Summary.SubSorts[Out] = Derived == Sort::FromSync
                                ? (A->DeclaredSubSort == SubSort::None
                                       ? SubSort::Indirect
                                       : A->DeclaredSubSort)
                                : SubSort::None;
  }
  return Summary;
}
