//===- analysis/SortInference.cpp - Stage-1 sort inference ----------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "analysis/SortInference.h"

#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

InferenceResult
analysis::inferSummary(const Design &D, ModuleId Id,
                       const std::map<ModuleId, ModuleSummary>
                           &SubSummaries,
                       const support::Deadline *DL) {
  Timer T;
  const Module &M = D.module(Id);
  auto cancelled = [&] {
    return support::Diag(support::DiagCode::WS601_CANCELLED,
                         "inference of module '" + M.Name +
                             "' cancelled by deadline")
        .withNote("module", M.Name);
  };
  if (DL && DL->expired())
    return cancelled();
  CombGraph CG = CombGraph::build(M, SubSummaries);

  // A module whose internals (or instance summaries) form a cycle can
  // never be summarized; report the loop instead.
  if (std::optional<support::Diag> Loop = CG.findCombLoop())
    return *std::move(Loop);

  ModuleSummary Summary;
  Summary.Id = Id;
  Summary.ModuleName = M.Name;

  // Forward pass, batched 64 input ports per machine word: ceil(K/64)
  // sweeps over the frozen CSR edge array instead of K BFS traversals
  // (bit-identical to the per-port BFS; see docs/KERNEL.md). The sweeps
  // poll the deadline; a fired one abandons the module.
  auto Sets = CG.allOutputPortSets(DL);
  if (!Sets)
    return cancelled();
  Summary.OutputPortSets = *std::move(Sets);

  // Output sets by inversion — no second traversal (Section 5.5.1).
  for (WireId Out : M.Outputs)
    Summary.InputPortSets[Out] = {};
  for (const auto &[In, Outs] : Summary.OutputPortSets)
    for (WireId Out : Outs)
      Summary.InputPortSets[Out].push_back(In);
  for (auto &[Out, Ins] : Summary.InputPortSets)
    std::sort(Ins.begin(), Ins.end());

  // Section 3.7 subsorts for the sync ports. Read the batched results
  // through at(): the sets were fully populated above, and mutating
  // operator[] on a read would grow the map on a port-id typo instead of
  // failing loudly.
  for (WireId In : M.Inputs) {
    if (!Summary.OutputPortSets.at(In).empty())
      Summary.SubSorts[In] = SubSort::None;
    else
      Summary.SubSorts[In] = CG.feedsStateDirectly(In) ? SubSort::Direct
                                                       : SubSort::Indirect;
  }
  for (WireId Out : M.Outputs) {
    if (!Summary.InputPortSets.at(Out).empty())
      Summary.SubSorts[Out] = SubSort::None;
    else
      Summary.SubSorts[Out] = CG.drivenByStateDirectly(Out)
                                  ? SubSort::Direct
                                  : SubSort::Indirect;
  }

  Summary.InferenceSeconds = T.seconds();
  return Summary;
}

support::Status
analysis::analyzeDesign(const Design &D,
                        std::map<ModuleId, ModuleSummary> &Out,
                        const std::map<ModuleId, ModuleSummary> &Ascribed) {
  std::optional<std::vector<ModuleId>> Order = D.topologicalModuleOrder();
  assert(Order && "module instantiation must be acyclic");

  // Analyze every module whose dependencies all summarized; skip (and
  // taint) dependents of failures. Collecting per-module diagnostics and
  // sorting by module id afterwards makes the list independent of the
  // traversal order, which is the determinism contract SummaryEngine's
  // parallel schedule is held to.
  std::set<ModuleId> Failed;
  std::vector<std::pair<ModuleId, support::Diag>> Found;
  for (ModuleId Id : *Order) {
    auto AscribedIt = Ascribed.find(Id);
    if (AscribedIt != Ascribed.end()) {
      Out[Id] = AscribedIt->second;
      continue;
    }
    bool DepFailed = false;
    for (const SubInstance &Inst : D.module(Id).Instances)
      if (Failed.count(Inst.Def))
        DepFailed = true;
    if (DepFailed) {
      Failed.insert(Id);
      continue;
    }
    InferenceResult Result = inferSummary(D, Id, Out);
    if (!Result) {
      Failed.insert(Id);
      for (const support::Diag &Dg : Result.diags())
        Found.emplace_back(Id, Dg);
      continue;
    }
    Out[Id] = std::move(*Result);
  }

  std::stable_sort(Found.begin(), Found.end(),
                   [](const auto &A, const auto &B) {
                     return A.first < B.first;
                   });
  support::Status S;
  for (auto &[Id, Dg] : Found)
    S.add(std::move(Dg));
  return S;
}
