//===- analysis/Dot.cpp - Graphviz export ----------------------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dot.h"

#include <set>
#include <sstream>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

namespace {

const char *sortColor(Sort S) {
  switch (S) {
  case Sort::ToSync:
    return "#8dd3c7"; // Teal: safe inputs.
  case Sort::FromSync:
    return "#b3de69"; // Green: safe outputs.
  case Sort::ToPort:
    return "#fdb462"; // Orange: inputs needing circuit checks.
  case Sort::FromPort:
    return "#fb8072"; // Salmon: outputs needing circuit checks.
  }
  return "white";
}

std::string escape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out.push_back('\\');
    Out.push_back(C);
  }
  return Out;
}

} // namespace

std::string wiresort::moduleDot(const Module &M,
                                const ModuleSummary &Summary) {
  std::ostringstream OS;
  OS << "digraph \"" << escape(M.Name) << "\" {\n"
     << "  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n";
  for (WireId In : M.Inputs)
    OS << "  \"in_" << In << "\" [label=\"" << escape(M.wire(In).Name)
       << "\\n" << sortAbbrev(Summary.sortOf(In))
       << "\" shape=cds style=filled fillcolor=\""
       << sortColor(Summary.sortOf(In)) << "\"];\n";
  for (WireId Out : M.Outputs)
    OS << "  \"out_" << Out << "\" [label=\"" << escape(M.wire(Out).Name)
       << "\\n" << sortAbbrev(Summary.sortOf(Out))
       << "\" shape=cds style=filled fillcolor=\""
       << sortColor(Summary.sortOf(Out)) << "\"];\n";
  // State as one box, with all sync ports attached to it; port-to-port
  // combinational dependencies as direct edges.
  OS << "  state [label=\"state\\n(" << M.Registers.size()
     << " regs, " << M.Memories.size()
     << " mems)\" shape=box3d style=filled fillcolor=\"#d9d9d9\"];\n";
  for (WireId In : M.Inputs) {
    if (Summary.sortOf(In) == Sort::ToSync)
      OS << "  \"in_" << In << "\" -> state;\n";
    else
      for (WireId Out : Summary.outputPortSet(In))
        OS << "  \"in_" << In << "\" -> \"out_" << Out << "\";\n";
  }
  for (WireId Out : M.Outputs)
    if (Summary.sortOf(Out) == Sort::FromSync)
      OS << "  state -> \"out_" << Out << "\";\n";
  OS << "}\n";
  return OS.str();
}

std::string
wiresort::circuitDot(const Circuit &Circ,
                     const std::map<ModuleId, ModuleSummary> &Summaries,
                     const std::vector<std::string> &LoopLabels) {
  std::set<std::string> OnLoop(LoopLabels.begin(), LoopLabels.end());
  std::ostringstream OS;
  OS << "digraph \"" << escape(Circ.name()) << "\" {\n"
     << "  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n";

  auto nodeId = [](InstId Inst, WireId Port) {
    return "p" + std::to_string(Inst) + "_" + std::to_string(Port);
  };

  const auto &Insts = Circ.instances();
  for (InstId Inst = 0; Inst != Insts.size(); ++Inst) {
    const Module &Def = Circ.defOf(Inst);
    const ModuleSummary &Summary = Summaries.at(Insts[Inst].Def);
    OS << "  subgraph \"cluster_" << Inst << "\" {\n"
       << "    label=\"" << escape(Insts[Inst].Name) << " : "
       << escape(Def.Name) << "\";\n    style=rounded;\n";
    for (WireId Port : Def.Inputs) {
      bool Hot = OnLoop.count(Circ.portLabel({Inst, Port})) != 0;
      OS << "    \"" << nodeId(Inst, Port) << "\" [label=\""
         << escape(Def.wire(Port).Name) << "\" style=filled fillcolor=\""
         << (Hot ? "#e31a1c" : sortColor(Summary.sortOf(Port)))
         << "\"];\n";
    }
    for (WireId Port : Def.Outputs) {
      bool Hot = OnLoop.count(Circ.portLabel({Inst, Port})) != 0;
      OS << "    \"" << nodeId(Inst, Port) << "\" [label=\""
         << escape(Def.wire(Port).Name) << "\" style=filled fillcolor=\""
         << (Hot ? "#e31a1c" : sortColor(Summary.sortOf(Port)))
         << "\"];\n";
    }
    // Summary edges inside the cluster, dashed.
    for (const auto &[In, Outs] : Summary.OutputPortSets)
      for (WireId Out : Outs)
        OS << "    \"" << nodeId(Inst, In) << "\" -> \""
           << nodeId(Inst, Out) << "\" [style=dashed];\n";
    OS << "  }\n";
  }
  for (const Connection &C : Circ.connections())
    OS << "  \"" << nodeId(C.From.Inst, C.From.Port) << "\" -> \""
       << nodeId(C.To.Inst, C.To.Port) << "\";\n";
  OS << "}\n";
  return OS.str();
}
