//===- analysis/BaseJump.cpp - The helpful/demanding baseline -------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "analysis/BaseJump.h"

#include <algorithm>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

static bool contains(const std::vector<WireId> &Set, WireId W) {
  return std::binary_search(Set.begin(), Set.end(), W);
}

Temperament analysis::classifyProducer(const ModuleSummary &Summary,
                                       const ProducerEndpoint &E) {
  return contains(Summary.inputPortSet(E.ValidOut), E.ReadyIn)
             ? Temperament::Demanding
             : Temperament::Helpful;
}

Temperament analysis::classifyConsumer(const ModuleSummary &Summary,
                                       const ConsumerEndpoint &E) {
  return contains(Summary.inputPortSet(E.ReadyOut), E.ValidIn)
             ? Temperament::Demanding
             : Temperament::Helpful;
}
