//===- driver/Check.h - The check request/response facade -------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library-level entry point behind every way of running a check:
/// the `wiresort-check` CLI, the `wiresort-served` daemon, and the
/// benches are all thin clients of the same CheckRequest → CheckResult
/// facade, which owns parse dispatch, engine setup, cache I/O, and
/// verdict construction. Byte-identity across clients is therefore a
/// construction property, not a test hope: a daemon `check` response
/// carries exactly the stdout/stderr bytes `wiresort-check` would have
/// printed for the same inputs, because both ran the same function.
///
/// Two grips on the same core:
///
///  * \ref runCheck — one-shot: build an engine, serve one request,
///    tear down. What the CLI uses; cold by definition.
///  * \ref CheckService — resident: one engine (and its
///    content-addressed summary cache) lives across requests, so a
///    re-submitted design re-infers only what actually changed — every
///    unchanged module is a cache hit keyed on structural content
///    (docs/ENGINE.md). run() is thread-safe and re-entrant; the
///    serving layer (driver/Serve.h) multiplexes concurrent requests
///    onto one CheckService.
///
/// Output contract (docs/DIAGNOSTICS.md): CheckResult::Out is the
/// byte-exact stdout of `wiresort-check` for the request (NDJSON diags
/// + verdict line in JSON mode; tables and human one-liners in text
/// mode), CheckResult::Err the byte-exact stderr (human-rendered diags
/// with caret echoes). Exit codes: 0 ok, 1 error diags, 2 usage/IO,
/// 3 cancelled.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_DRIVER_CHECK_H
#define WIRESORT_DRIVER_CHECK_H

#include "analysis/CheckOptions.h"
#include "analysis/SummaryEngine.h"
#include "parse/Blif.h"
#include "support/Deadline.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace wiresort::driver {

/// Everything one check needs, fully parsed — no argv in the library.
/// The CLI fills one from flags; the daemon decodes one from a wire
/// record (driver/Serve.h maps the fields one-to-one).
struct CheckRequest {
  /// Design source. When \c HasInlineText the daemon already shipped
  /// the bytes and \c DesignText is authoritative; otherwise the driver
  /// reads \c DesignPath. Either way \c name() is the string used for
  /// front-end dispatch (.v/.sv = Verilog, else BLIF) and in every
  /// diagnostic, so an inline request diagnoses byte-identically to a
  /// CLI run on the same file.
  std::string DesignPath;
  std::string DesignText;
  bool HasInlineText = false;
  /// Diagnostic/dispatch name for inline text; defaults to DesignPath.
  std::string DesignName;

  /// The per-request knobs (deadline, format, cache sidecar, tracing,
  /// fault schedule) — see analysis/CheckOptions.h.
  analysis::RequestOptions Req;

  /// External cancellation, observed alongside Req.TimeoutMs by the
  /// run's cooperative deadline. Not a wire field: the serving layer
  /// threads its drain-kill token through here so a bounded drain can
  /// cancel in-flight requests (they fail closed — WS601, exit 3). An
  /// inert (default) token costs nothing.
  support::CancellationToken Cancel;

  /// Artifact paths; empty = not requested. Mirrors the CLI flags.
  std::string SummariesOut;  ///< --summaries FILE
  std::string CheckPath;     ///< --check FILE (ascription compare)
  std::string DotPath;       ///< --dot FILE
  std::string ConvertIn;     ///< --convert-summaries FILE
  bool BinarySummaries = false; ///< --summary-format binary

  /// Declared-summary sidecar shipped inline (the daemon's `ascribe`
  /// method); when set, \c CheckPath is only the diagnostic name.
  std::string CheckText;
  bool HasInlineCheckText = false;

  bool Quiet = false;     ///< --quiet
  bool ShowDepth = false; ///< --depth

  /// Sharding: --shards N (isolated workers) / --shard I/N (slice).
  unsigned Shards = 0;
  unsigned SliceShard = 0, SliceOf = 0;
  /// Fork-mode shard workers are only safe while the process is
  /// single-threaded (support/Process.h); the daemon clears this and
  /// sharded requests run in-process instead — byte-identical output
  /// by the shard determinism contract (analysis/Sharded.h).
  bool AllowFork = true;

  const std::string &name() const {
    return DesignName.empty() ? DesignPath : DesignName;
  }
};

/// What one check produced. Out/Err are the full stdout/stderr byte
/// streams (see the file comment); the scalar fields are the structured
/// view the daemon and benches read without re-parsing the text.
struct CheckResult {
  int ExitCode = 0;
  std::string Out;
  std::string Err;
  size_t Errors = 0;   ///< Error-severity diagnostics emitted.
  size_t Modules = 0;  ///< Summaries delivered (0 on failed runs).
  bool Cancelled = false; ///< Deadline fired (WS601; exit 3).
  analysis::EngineStats Stats; ///< Stage-1 counters for this request.
};

/// A resident check core: one SummaryEngine whose summary cache
/// persists across run() calls. Thread-safe — concurrent run() calls
/// share the cache (first writer wins per key) and otherwise touch only
/// request-local state via SummaryEngine::analyzeShared. Requests that
/// open a telemetry window (Stats or TraceOutPath) serialize on an
/// internal mutex, because at most one trace::Session may be live per
/// process.
class CheckService {
public:
  explicit CheckService(analysis::EngineConfig Cfg = {}) : Engine(Cfg) {}

  /// Serves one request. Never throws; every failure mode is a
  /// diagnostic in the result (docs/ROBUSTNESS.md).
  CheckResult run(const CheckRequest &R);

  /// The resident engine (its cache() is the residency).
  analysis::SummaryEngine &engine() { return Engine; }

  /// The parse half of the residency: BLIF `.model` chunks are cached
  /// by content, so a warm request re-tokenizes only edited models —
  /// the same dirtied-only contract the summary cache gives inference
  /// (docs/SERVING.md). A one-shot runCheck starts this cold, so CLI
  /// and daemon bytes cannot diverge on cache state.
  const parse::BlifParseCache &parseCache() const { return ParseCache; }

  /// Requests served since construction (daemon stats).
  size_t requestsServed() const { return Served.load(); }

private:
  analysis::SummaryEngine Engine;
  parse::BlifParseCache ParseCache;
  std::mutex TelemetryMutex;
  std::atomic<size_t> Served{0};
};

/// One-shot convenience: a fresh (cold) CheckService for one request —
/// exactly what a `wiresort-check` process invocation is. \p Cfg is the
/// engine half of the old flat options (--threads and friends).
CheckResult runCheck(const CheckRequest &R, analysis::EngineConfig Cfg = {});

} // namespace wiresort::driver

#endif // WIRESORT_DRIVER_CHECK_H
