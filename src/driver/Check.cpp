//===- driver/Check.cpp - The check request/response facade ---------------===//
//
// Part of the wiresort project.
//
// The body of what used to be the wiresort-check main(), now emitting
// into CheckResult::Out/Err strings instead of stdio so the CLI, the
// daemon, and the benches replay the exact same bytes.
//
//===----------------------------------------------------------------------===//

#include "driver/Check.h"

#include "analysis/Depth.h"
#include "analysis/Dot.h"
#include "analysis/Sharded.h"
#include "analysis/SortInference.h"
#include "analysis/SummaryIO.h"
#include "parse/Blif.h"
#include "parse/Verilog.h"
#include "parse/VerilogReader.h"
#include "support/Deadline.h"
#include "support/Diag.h"
#include "support/FailPoint.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::driver;
using namespace wiresort::ir;

namespace {

/// printf-append onto a string (the Out/Err streams).
void appendf(std::string &S, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));
void appendf(std::string &S, const char *Fmt, ...) {
  va_list Ap;
  va_start(Ap, Fmt);
  va_list Ap2;
  va_copy(Ap2, Ap);
  int N = std::vsnprintf(nullptr, 0, Fmt, Ap);
  va_end(Ap);
  if (N > 0) {
    size_t Old = S.size();
    S.resize(Old + static_cast<size_t>(N) + 1);
    std::vsnprintf(&S[Old], static_cast<size_t>(N) + 1, Fmt, Ap2);
    S.resize(Old + static_cast<size_t>(N));
  }
  va_end(Ap2);
}

/// Routes diagnostics to the requested renderer: human text on the Err
/// stream (with caret echoes when the diagnosed file's source is
/// registered), NDJSON on the Out stream. Tracks the error count for
/// the verdict line.
///
/// Unlike the old CLI emitter — one SourceText pointer for the whole
/// process — source text is keyed per file: a resident service renders
/// many designs' diagnostics through one process, and a --check run
/// holds two buffers (design + sidecar) at once, so each diag's caret
/// must come from the buffer its SrcLoc names, never "whichever buffer
/// was read last".
struct Emitter {
  Format Fmt = Format::Text;
  CheckResult &Res;
  /// Caret-echo source text, keyed by the file name diags carry.
  /// Values point at request-local buffers that outlive the emitter.
  std::map<std::string, const std::string *> Sources;

  explicit Emitter(CheckResult &Res) : Res(Res) {}

  void addSource(const std::string &Name, const std::string &Text) {
    Sources[Name] = &Text;
  }

  const std::string *sourceFor(const support::Diag &D) const {
    if (!D.loc())
      return nullptr;
    auto It = Sources.find(D.loc()->File);
    return It == Sources.end() ? nullptr : It->second;
  }

  void emit(const support::Diag &D) {
    if (D.severity() == support::Severity::Error)
      ++Res.Errors;
    if (Fmt == Format::Json)
      appendf(Res.Out, "%s\n", support::renderJson(D).c_str());
    else
      appendf(Res.Err, "%s\n",
              support::renderText(D, sourceFor(D)).c_str());
  }
  void emit(const support::DiagList &Ds) {
    for (const support::Diag &D : Ds)
      emit(D);
  }

  /// The deterministic success verdict: text keeps its human one-liner
  /// (emitted by the caller, with timing); JSON emits the stable line.
  void verdictOk(size_t Modules) {
    if (Fmt == Format::Json)
      appendf(Res.Out, "{\"verdict\":\"well-connected\",\"modules\":%zu}\n",
              Modules);
  }
  /// The failure verdict; \returns the exit code (1).
  int verdictError() {
    if (Fmt == Format::Json)
      appendf(Res.Out, "{\"verdict\":\"error\",\"errors\":%zu}\n",
              Res.Errors);
    return 1;
  }
  /// The cancelled verdict (the deadline fired); \returns exit code 3.
  int verdictCancelled() {
    Res.Cancelled = true;
    if (Fmt == Format::Json)
      appendf(Res.Out, "{\"verdict\":\"cancelled\",\"errors\":%zu}\n",
              Res.Errors);
    return 3;
  }
};

/// True when \p Ds carries a WS601_CANCELLED diag — the run was cut
/// short by the deadline and exits 3, not 1.
bool wasCancelled(const support::DiagList &Ds) {
  for (const support::Diag &D : Ds)
    if (D.code() == support::DiagCode::WS601_CANCELLED)
      return true;
  return false;
}

int ioError(Emitter &E, const std::string &Why) {
  E.emit(support::Diag(support::DiagCode::WS501_IO_ERROR, Why));
  return 2;
}

std::optional<std::string> readFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

bool writeFile(const std::string &Path, const std::string &Text) {
  std::ofstream Out(Path);
  if (!Out)
    return false;
  Out << Text;
  return Out.good();
}

/// --check: compare a declared sidecar against the computed summaries,
/// one WS102 diag per mismatching port (module-id then port order).
support::DiagList
checkDeclared(const Design &D,
              const std::map<ModuleId, ModuleSummary> &Declared,
              const std::map<ModuleId, ModuleSummary> &Computed) {
  support::DiagList Mismatches;
  for (const auto &[Id, Decl] : Declared) {
    // A --shard slice computes only its owned modules; declared entries
    // for the other slices are theirs to check.
    auto CompIt = Computed.find(Id);
    if (CompIt == Computed.end())
      continue;
    const Module &M = D.module(Id);
    const ModuleSummary &Comp = CompIt->second;
    auto report = [&](WireId Port, const char *What) {
      Mismatches.add(
          support::Diag(support::DiagCode::WS102_ASCRIPTION_MISMATCH,
                        "port '" + M.wire(Port).Name + "': " + What)
              .withNote("module", M.Name)
              .withNote("port", M.wire(Port).Name));
    };
    for (WireId Port : M.Inputs) {
      if (Decl.sortOf(Port) != Comp.sortOf(Port))
        report(Port, "declared sort differs from computed");
      else if (Decl.outputPortSet(Port) != Comp.outputPortSet(Port))
        report(Port, "declared output-port-set differs");
    }
    for (WireId Port : M.Outputs) {
      if (Decl.sortOf(Port) != Comp.sortOf(Port))
        report(Port, "declared sort differs from computed");
      else if (Decl.inputPortSet(Port) != Comp.inputPortSet(Port))
        report(Port, "declared input-port-set differs");
    }
  }
  return Mismatches;
}

} // namespace

CheckResult CheckService::run(const CheckRequest &R) {
  CheckResult Res;
  Emitter Emit(Res);
  Emit.Fmt = R.Req.OutputFormat;
  Served.fetch_add(1);

  // The finished-result path: every return below goes through here so
  // ExitCode is always consistent with what was emitted.
  auto done = [&](int Code) {
    Res.ExitCode = Code;
    return Res;
  };

  // Fault injection arms before any other work so every site in the run
  // is eligible. The registry is process-wide: in a resident service a
  // request's schedule is visible to concurrently running requests
  // (docs/SERVING.md degradation matrix) — which is exactly what the
  // serving soak exploits to hammer fault handling under concurrency.
  if (!R.Req.FailpointSpec.empty()) {
    support::Status Armed =
        support::failpoint::configure(R.Req.FailpointSpec, R.Req.FaultSeed);
    if (Armed.hasError()) {
      Emit.emit(Armed);
      return done(2);
    }
  }

  // One deadline covers parse + Stage-1 analysis (docs/ROBUSTNESS.md);
  // inert when neither a timeout nor an external cancel (the serving
  // layer's drain token) was requested.
  support::Deadline DL =
      (R.Req.TimeoutMs != 0 || R.Cancel.cancellable())
          ? support::Deadline::afterMs(R.Req.TimeoutMs, R.Cancel)
          : support::Deadline();
  const support::Deadline *DLPtr = DL.active() ? &DL : nullptr;

  // The collection window opens before the design is even read so the
  // parse spans land in the trace; it closes (and the stats record is
  // emitted) right before the verdict. At most one trace::Session may
  // be live per process, so telemetry-bearing requests serialize on the
  // service mutex; plain requests pay nothing.
  std::unique_lock<std::mutex> TelemetryLock;
  std::optional<trace::Session> TraceSession;
  if (R.Req.Stats || !R.Req.TraceOutPath.empty()) {
    TelemetryLock = std::unique_lock<std::mutex>(TelemetryMutex);
    TraceSession.emplace(trace::SessionOptions{R.Req.TraceOutPath, true});
  }
  // Closes the session and emits the stats record (before the verdict
  // line, per docs/DIAGNOSTICS.md). \returns false when the trace file
  // cannot be written.
  auto finishTelemetry = [&]() {
    if (!TraceSession)
      return true;
    support::Status Write = TraceSession->finish();
    if (R.Req.Stats) {
      if (Emit.Fmt == Format::Json)
        appendf(Res.Out, "%s\n", TraceSession->statsJson().c_str());
      else
        appendf(Res.Out, "%s", TraceSession->statsText().c_str());
    }
    if (Write.hasError()) {
      Emit.emit(Write);
      return false;
    }
    return true;
  };

  // --- Design text: shipped inline (daemon) or read from disk (CLI).
  std::string Text;
  if (R.HasInlineText) {
    Text = R.DesignText;
  } else {
    std::optional<std::string> FromDisk = readFile(R.DesignPath);
    if (!FromDisk)
      return done(ioError(Emit, "cannot read '" + R.DesignPath + "'"));
    Text = std::move(*FromDisk);
  }
  const std::string &Name = R.name();
  Emit.addSource(Name, Text);

  bool IsVerilog = Name.size() >= 2 &&
                   (Name.rfind(".v") == Name.size() - 2 ||
                    (Name.size() >= 3 && Name.rfind(".sv") == Name.size() - 3));
  std::optional<parse::BlifFile> File;
  if (IsVerilog) {
    auto VFile = parse::parseVerilog(Text, Name, DLPtr);
    if (!VFile) {
      bool Cancelled = wasCancelled(VFile.diags());
      Emit.emit(VFile.diags());
      (void)finishTelemetry();
      return done(Cancelled ? Emit.verdictCancelled() : Emit.verdictError());
    }
    File.emplace();
    File->Design = std::move(VFile->Design);
    File->Top = VFile->Top;
  } else {
    auto BFile = parse::parseBlif(Text, Name, DLPtr, &ParseCache);
    if (!BFile) {
      bool Cancelled = wasCancelled(BFile.diags());
      Emit.emit(BFile.diags());
      (void)finishTelemetry();
      return done(Cancelled ? Emit.verdictCancelled() : Emit.verdictError());
    }
    File = std::move(*BFile);
  }

  // --convert-summaries: re-serialize an existing sidecar (either
  // format, sniffed) in the requested encoding and exit. Port names
  // resolve against the design, so this doubles as a validation pass.
  if (!R.ConvertIn.empty()) {
    std::optional<std::string> InBytes = readFile(R.ConvertIn);
    if (!InBytes)
      return done(ioError(Emit, "cannot read '" + R.ConvertIn + "'"));
    Emit.addSource(R.ConvertIn, *InBytes);
    auto Converted = readSummariesAny(*InBytes, File->Design, R.ConvertIn);
    if (!Converted) {
      Emit.emit(Converted.diags());
      return done(Emit.verdictError());
    }
    const std::string Out =
        R.BinarySummaries ? writeSummariesBinary(File->Design, *Converted)
                          : writeSummaries(File->Design, *Converted);
    if (!writeFile(R.SummariesOut, Out))
      return done(ioError(Emit, "cannot write '" + R.SummariesOut + "'"));
    if (!finishTelemetry())
      return done(2);
    if (Emit.Fmt == Format::Text)
      appendf(Res.Out, "summaries converted to %s\n", R.SummariesOut.c_str());
    return done(0);
  }

  // --- Engine setup. Plain requests run through the *resident* engine
  // via the re-entrant analyzeShared path, so repeated submissions of
  // the same (or a lightly edited) design are mostly cache hits.
  // Sharded and slice requests build a request-local ShardedEngine —
  // exactly what a CLI invocation does — with fork workers degraded to
  // in-process ones when the host process is multi-threaded (the
  // daemon); output is byte-identical either way by the shard
  // determinism contract (analysis/Sharded.h).
  std::optional<ShardedEngine> Sharded;
  if (R.Shards != 0 || R.SliceOf != 0) {
    ShardOptions SOpts;
    SOpts.Shards = R.Shards != 0 ? R.Shards : R.SliceOf;
    SOpts.ExecMode = (R.Shards != 0 && R.AllowFork)
                         ? ShardOptions::Mode::Fork
                         : ShardOptions::Mode::InProcess;
    if (R.SliceOf != 0)
      SOpts.SliceShard = static_cast<int>(R.SliceShard);
    SOpts.Engine = Engine.config();
    Sharded.emplace(SOpts);
  }
  SummaryEngine &Eng = Sharded ? Sharded->engine() : Engine;

  if (!R.Req.CachePath.empty()) {
    support::Expected<CacheLoadResult> Loaded =
        Eng.loadCache(R.Req.CachePath, File->Design);
    if (!Loaded) {
      Emit.emit(Loaded.diags());
      return done(2);
    }
    // Quarantined-record warnings (WS602/WS603) degrade, never fail:
    // the damaged records re-infer cold while the rest stay warm.
    Emit.emit(Loaded->Warnings);
    if (!R.Quiet && Emit.Fmt == Format::Text && Loaded->Loaded)
      appendf(Res.Out, "cache: %zu summaries loaded from %s\n",
              Loaded->Loaded, R.Req.CachePath.c_str());
  }

  Timer T;
  std::map<ModuleId, ModuleSummary> Summaries;
  AnalyzeOutcome Outcome;
  support::Status Stage1 =
      Sharded ? Sharded->analyze(File->Design, Summaries, {}, DL)
              : Engine.analyzeShared(File->Design, Summaries, {}, DL, Outcome);
  double Ms = T.milliseconds();
  if (Sharded) {
    // The sharded front end primes the inner engine's keys/stats
    // itself; mirror what the structured result needs.
    Outcome.Keys = Eng.primeKeys(File->Design);
    Outcome.Stats.Modules = Sharded->stats().Modules;
    Outcome.Stats.Inferred = Sharded->stats().Inferred;
    Outcome.Stats.CacheHits = Sharded->stats().CacheHits;
    Outcome.Stats.Cancelled = Sharded->stats().Cancelled;
    Outcome.Stats.Panicked = Sharded->stats().Panicked;
    Outcome.Stats.Seconds = Sharded->stats().Seconds;
  }
  Res.Stats = Outcome.Stats;

  auto save = [&]() {
    if (R.Req.CachePath.empty())
      return;
    Emit.emit(
        Eng.saveCache(R.Req.CachePath, File->Design, Summaries, Outcome.Keys));
  };

  if (Stage1.hasError()) {
    bool Cancelled = wasCancelled(Stage1);
    Emit.emit(Stage1);
    // A cancelled run still persists what it finished — the next,
    // fully-budgeted invocation starts warm (docs/ROBUSTNESS.md).
    save();
    (void)finishTelemetry();
    return done(Cancelled ? Emit.verdictCancelled() : Emit.verdictError());
  }
  save();

  if (!R.Quiet && Emit.Fmt == Format::Text) {
    for (ModuleId Id = 0; Id != File->Design.numModules(); ++Id) {
      // Slice mode delivers only the owned modules' summaries; the
      // table shows exactly those.
      auto SliceIt = Summaries.find(Id);
      if (SliceIt == Summaries.end())
        continue;
      const Module &M = File->Design.module(Id);
      const ModuleSummary &S = SliceIt->second;
      appendf(Res.Out, "module %s (%zu gates, %zu regs, %zu instances)\n",
              M.Name.c_str(), M.Nets.size(), M.Registers.size(),
              M.Instances.size());
      Table PortTable({"Dir", "Port", "Sort", "Depends on / affects"});
      auto setOf = [&](WireId Port) {
        const auto &Set = M.isInput(Port) ? S.outputPortSet(Port)
                                          : S.inputPortSet(Port);
        std::string Out;
        for (size_t I = 0; I != Set.size(); ++I) {
          if (I)
            Out += ", ";
          Out += M.wire(Set[I]).Name;
        }
        return Out;
      };
      for (WireId In : M.Inputs)
        PortTable.addRow(
            {"in", M.wire(In).Name, sortName(S.sortOf(In)), setOf(In)});
      for (WireId Out : M.Outputs)
        PortTable.addRow(
            {"out", M.wire(Out).Name, sortName(S.sortOf(Out)), setOf(Out)});
      Res.Out += PortTable.str();
      appendf(Res.Out, "\n");
    }
  }
  if (Emit.Fmt == Format::Text) {
    if (Sharded) {
      const ShardStats &Stats = Sharded->stats();
      appendf(Res.Out,
              "well-connected: %zu module(s) analyzed in %.2f ms "
              "(%u shard(s), %zu wave(s), %zu inferred, "
              "%zu cache hit(s))\n",
              Summaries.size(), Ms, Stats.Shards, Stats.Waves,
              Stats.Inferred, Stats.CacheHits);
    } else {
      appendf(Res.Out,
              "well-connected: %zu module(s) analyzed in %.2f ms "
              "(%u thread(s), %zu inferred, %zu cache hit(s))\n",
              File->Design.numModules(), Ms, Outcome.Stats.ThreadsUsed,
              Outcome.Stats.Inferred, Outcome.Stats.CacheHits);
    }
  }

  if (R.ShowDepth && Emit.Fmt == Format::Text) {
    if (Summaries.size() != File->Design.numModules()) {
      appendf(Res.Err, "error: --depth needs the whole design's "
                       "summaries (not a --shard slice)\n");
      return done(2);
    }
    auto Depths = inferAllDepths(File->Design, Summaries);
    if (!Depths) {
      appendf(Res.Err, "error: depth analysis needs an acyclic design\n");
      return done(2);
    }
    Table DepthTable({"Module", "Reg-to-reg depth", "Deepest in->out"});
    for (ModuleId Id = 0; Id != File->Design.numModules(); ++Id) {
      const DepthSummary &Depth = Depths->at(Id);
      uint32_t DeepestPair = 0;
      for (const auto &[Pair, Levels] : Depth.PairDepth)
        DeepestPair = std::max(DeepestPair, Levels);
      DepthTable.addRow({File->Design.module(Id).Name,
                         std::to_string(Depth.InternalDepth),
                         std::to_string(DeepestPair)});
    }
    Res.Out += DepthTable.str();
  }

  if (!R.SummariesOut.empty()) {
    const std::string Out =
        R.BinarySummaries ? writeSummariesBinary(File->Design, Summaries)
                          : writeSummaries(File->Design, Summaries);
    if (!writeFile(R.SummariesOut, Out))
      return done(ioError(Emit, "cannot write '" + R.SummariesOut + "'"));
    if (Emit.Fmt == Format::Text)
      appendf(Res.Out, "summaries written to %s\n", R.SummariesOut.c_str());
  }

  if (!R.CheckPath.empty() || R.HasInlineCheckText) {
    std::string Declared;
    std::string CheckName =
        !R.CheckPath.empty() ? R.CheckPath : std::string("<ascribe>");
    if (R.HasInlineCheckText) {
      Declared = R.CheckText;
    } else {
      std::optional<std::string> FromDisk = readFile(R.CheckPath);
      if (!FromDisk)
        return done(ioError(Emit, "cannot read '" + R.CheckPath + "'"));
      Declared = std::move(*FromDisk);
    }
    // The sidecar text is registered under its own name, so a malformed
    // sidecar's caret echoes the sidecar's lines — and the design's
    // diags keep echoing the design's. (The pre-driver CLI had one
    // source buffer per process and had to drop the echo entirely
    // here.)
    Emit.addSource(CheckName, Declared);
    auto DeclaredSummaries =
        readSummariesAny(Declared, File->Design, CheckName);
    if (!DeclaredSummaries) {
      Emit.emit(DeclaredSummaries.diags());
      return done(Emit.verdictError());
    }
    support::DiagList Mismatches =
        checkDeclared(File->Design, *DeclaredSummaries, Summaries);
    if (Mismatches.hasError()) {
      Emit.emit(Mismatches);
      if (Emit.Fmt == Format::Text)
        appendf(Res.Out, "%zu ascription mismatch(es)\n", Mismatches.size());
      (void)finishTelemetry();
      return done(Emit.verdictError());
    }
    if (Emit.Fmt == Format::Text)
      appendf(Res.Out, "all ascriptions match\n");
  }

  if (!R.DotPath.empty()) {
    if (!Summaries.count(File->Top))
      return done(ioError(Emit, "--dot needs the top module's summary (not "
                                "delivered by this --shard slice)"));
    const Module &Top = File->Design.module(File->Top);
    if (!writeFile(R.DotPath, moduleDot(Top, Summaries.at(File->Top))))
      return done(ioError(Emit, "cannot write '" + R.DotPath + "'"));
    if (Emit.Fmt == Format::Text)
      appendf(Res.Out, "dot written to %s\n", R.DotPath.c_str());
  }

  if (!finishTelemetry())
    return done(2);
  // Summaries.size() == numModules except in slice mode, where the
  // verdict counts the delivered slice.
  Res.Modules = Summaries.size();
  Emit.verdictOk(Summaries.size());
  return done(0);
}

CheckResult wiresort::driver::runCheck(const CheckRequest &R,
                                       EngineConfig Cfg) {
  CheckService OneShot(Cfg);
  return OneShot.run(R);
}
