//===- driver/Serve.cpp - The resident check service ----------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "driver/Serve.h"

#include "support/FailPoint.h"
#include "support/Trace.h"
#include "support/Wire.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <thread>

using namespace wiresort;
using namespace wiresort::driver;
using namespace wiresort::support;

namespace {

/// Serve payload schema version carried by the StreamBegin record
/// (docs/SERVING.md). The framing versions separately (wire format v1).
/// Still 1: the status byte grew values additively (Busy/TimedOut) and
/// old decoders fail closed on them, which is the contract.
constexpr uint64_t ServePayloadVersion = 1;

/// Request flag bits (one byte on the wire).
enum : uint8_t {
  FlagQuiet = 1 << 0,
  FlagShowDepth = 1 << 1,
  FlagBinarySummaries = 1 << 2,
  FlagInlineText = 1 << 3,
  FlagInlineCheckText = 1 << 4,
  FlagStats = 1 << 5,
};

// Overload counters (docs/OBSERVABILITY.md). Like every trace counter
// they only accumulate inside a collection session; the Server keeps
// its own atomics for health/stats reporting.
trace::Counter &admittedC() {
  static trace::Counter &C = trace::counter("serve.admitted");
  return C;
}
trace::Counter &shedC() {
  static trace::Counter &C = trace::counter("serve.shed");
  return C;
}
trace::Counter &timedOutC() {
  static trace::Counter &C = trace::counter("serve.timed_out");
  return C;
}
trace::Histogram &queueDepthH() {
  static trace::Histogram &H = trace::histogram("serve.queue_depth");
  return H;
}

/// Extracts the one payload record of kind \p Want from a serve stream,
/// enforcing the fail-closed rules shared by both directions: correct
/// StreamBegin, exactly one payload record, a clean StreamEnd, and no
/// framing damage anywhere. \returns false with \p Why otherwise.
bool readServeStream(wire::RecordKind Want, wire::Reader &R,
                     wire::Reader::Record &Payload, std::string &Why) {
  if (!R.readHeader(&Why))
    return false;
  bool SawBegin = false, SawPayload = false;
  for (;;) {
    wire::Reader::Record Rec;
    switch (R.next(Rec)) {
    case wire::Reader::Item::End:
      if (!SawPayload)
        Why = "stream ended without a payload record";
      return SawPayload;
    case wire::Reader::Item::Exhausted:
      Why = "stream truncated before StreamEnd";
      return false;
    case wire::Reader::Item::Truncated:
      Why = "record truncated";
      return false;
    case wire::Reader::Item::Corrupt:
      Why = "record checksum mismatch";
      return false;
    case wire::Reader::Item::Record:
      break;
    }
    if (Rec.Kind == wire::RecordKind::StreamBegin) {
      wire::Reader::Cursor C(Rec, R);
      uint8_t Kind = 0;
      uint64_t Version = 0;
      if (!C.getByte(Kind) || !C.getVarint(Version) ||
          Kind != static_cast<uint8_t>(wire::StreamKind::Serve)) {
        Why = "not a serve stream (wrong stream kind)";
        return false;
      }
      if (Version > ServePayloadVersion) {
        Why = "serve protocol version " + std::to_string(Version) +
              " is newer than this build understands";
        return false;
      }
      SawBegin = true;
      continue;
    }
    if (Rec.Kind != Want)
      continue; // Forward compat: skip record kinds we don't know.
    if (!SawBegin) {
      Why = "payload record before StreamBegin";
      return false;
    }
    if (SawPayload) {
      Why = "more than one payload record";
      return false;
    }
    SawPayload = true;
    Payload = Rec;
  }
}

/// A canned non-Ok response stream: exit 2, one stderr line.
std::string cannedResponse(RespStatus Status, const std::string &Line) {
  CheckResult Res;
  Res.ExitCode = 2;
  Res.Errors = 1;
  Res.Err = "wiresort-served: " + Line + "\n";
  return encodeResponse(Res, Status);
}

} // namespace

// --- Codecs -----------------------------------------------------------------

std::string driver::encodeRequest(Method M, const CheckRequest &R) {
  wire::Writer W;
  W.beginStream(wire::StreamKind::Serve, ServePayloadVersion);
  W.beginRecord(wire::RecordKind::ServeRequest);
  W.putByte(static_cast<uint8_t>(M));
  W.putByte(static_cast<uint8_t>(R.Req.OutputFormat));
  uint8_t Flags = 0;
  if (R.Quiet)
    Flags |= FlagQuiet;
  if (R.ShowDepth)
    Flags |= FlagShowDepth;
  if (R.BinarySummaries)
    Flags |= FlagBinarySummaries;
  if (R.HasInlineText)
    Flags |= FlagInlineText;
  if (R.HasInlineCheckText)
    Flags |= FlagInlineCheckText;
  if (R.Req.Stats)
    Flags |= FlagStats;
  W.putByte(Flags);
  W.putVarint(R.Req.TimeoutMs);
  W.putVarint(R.Req.FaultSeed);
  W.putVarint(R.Shards);
  W.putVarint(R.SliceShard);
  W.putVarint(R.SliceOf);
  W.putString(R.DesignPath);
  W.putString(R.DesignName);
  W.putString(R.Req.CachePath);
  W.putString(R.Req.TraceOutPath);
  W.putString(R.Req.FailpointSpec);
  W.putString(R.SummariesOut);
  W.putString(R.CheckPath);
  W.putString(R.DotPath);
  W.putString(R.ConvertIn);
  W.putBytes(R.DesignText);
  W.putBytes(R.CheckText);
  W.endRecord();
  W.finish();
  return W.take();
}

bool driver::decodeRequest(std::string_view Bytes, Method &M, CheckRequest &R,
                           std::string &Why) {
  wire::Reader Reader(Bytes);
  wire::Reader::Record Rec;
  if (!readServeStream(wire::RecordKind::ServeRequest, Reader, Rec, Why))
    return false;
  wire::Reader::Cursor C(Rec, Reader);
  uint8_t Meth = 0, Fmt = 0, Flags = 0;
  uint64_t TimeoutMs = 0, Seed = 0, Shards = 0, SliceShard = 0, SliceOf = 0;
  std::string_view DesignPath, DesignName, CachePath, TraceOut, Failpoints,
      SummariesOut, CheckPath, DotPath, ConvertIn, DesignText, CheckText;
  if (!C.getByte(Meth) || !C.getByte(Fmt) || !C.getByte(Flags) ||
      !C.getVarint(TimeoutMs) || !C.getVarint(Seed) || !C.getVarint(Shards) ||
      !C.getVarint(SliceShard) || !C.getVarint(SliceOf) ||
      !C.getString(DesignPath) || !C.getString(DesignName) ||
      !C.getString(CachePath) || !C.getString(TraceOut) ||
      !C.getString(Failpoints) || !C.getString(SummariesOut) ||
      !C.getString(CheckPath) || !C.getString(DotPath) ||
      !C.getString(ConvertIn) || !C.getBytes(DesignText) ||
      !C.getBytes(CheckText)) {
    Why = "malformed request record";
    return false;
  }
  if (Meth < static_cast<uint8_t>(Method::Check) ||
      Meth > static_cast<uint8_t>(Method::Health)) {
    Why = "unknown method " + std::to_string(Meth);
    return false;
  }
  if (Fmt > static_cast<uint8_t>(analysis::Format::Json)) {
    Why = "unknown output format " + std::to_string(Fmt);
    return false;
  }
  M = static_cast<Method>(Meth);
  R = CheckRequest();
  R.Req.OutputFormat = static_cast<analysis::Format>(Fmt);
  R.Quiet = Flags & FlagQuiet;
  R.ShowDepth = Flags & FlagShowDepth;
  R.BinarySummaries = Flags & FlagBinarySummaries;
  R.HasInlineText = Flags & FlagInlineText;
  R.HasInlineCheckText = Flags & FlagInlineCheckText;
  R.Req.Stats = Flags & FlagStats;
  R.Req.TimeoutMs = TimeoutMs;
  R.Req.FaultSeed = Seed;
  R.Shards = static_cast<unsigned>(Shards);
  R.SliceShard = static_cast<unsigned>(SliceShard);
  R.SliceOf = static_cast<unsigned>(SliceOf);
  R.DesignPath = std::string(DesignPath);
  R.DesignName = std::string(DesignName);
  R.Req.CachePath = std::string(CachePath);
  R.Req.TraceOutPath = std::string(TraceOut);
  R.Req.FailpointSpec = std::string(Failpoints);
  R.SummariesOut = std::string(SummariesOut);
  R.CheckPath = std::string(CheckPath);
  R.DotPath = std::string(DotPath);
  R.ConvertIn = std::string(ConvertIn);
  R.DesignText = std::string(DesignText);
  R.CheckText = std::string(CheckText);
  return true;
}

std::string driver::encodeResponse(const CheckResult &Res, RespStatus Status) {
  wire::Writer W;
  W.beginStream(wire::StreamKind::Serve, ServePayloadVersion);
  W.beginRecord(wire::RecordKind::ServeResponse);
  W.putByte(static_cast<uint8_t>(Status));
  W.putVarint(static_cast<uint64_t>(Res.ExitCode));
  W.putVarint(Res.Errors);
  W.putVarint(Res.Modules);
  W.putByte(Res.Cancelled ? 1 : 0);
  W.putBytes(Res.Out);
  W.putBytes(Res.Err);
  W.endRecord();
  W.finish();
  return W.take();
}

bool driver::decodeResponse(std::string_view Bytes, Response &Out,
                            std::string &Why) {
  wire::Reader Reader(Bytes);
  wire::Reader::Record Rec;
  if (!readServeStream(wire::RecordKind::ServeResponse, Reader, Rec, Why))
    return false;
  wire::Reader::Cursor C(Rec, Reader);
  uint8_t Status = 0, Cancelled = 0;
  uint64_t Exit = 0, Errors = 0, Modules = 0;
  std::string_view Stdout, Stderr;
  if (!C.getByte(Status) || !C.getVarint(Exit) || !C.getVarint(Errors) ||
      !C.getVarint(Modules) || !C.getByte(Cancelled) ||
      !C.getBytes(Stdout) || !C.getBytes(Stderr)) {
    Why = "malformed response record";
    return false;
  }
  if (Status > static_cast<uint8_t>(RespStatus::TimedOut)) {
    // Fail closed on status bytes from the future: a verdict whose
    // disposition we can't name is no verdict.
    Why = "unknown response status " + std::to_string(Status);
    return false;
  }
  Out.Ok = true;
  Out.Rejected = Status == static_cast<uint8_t>(RespStatus::Rejected);
  Out.Busy = Status == static_cast<uint8_t>(RespStatus::Busy);
  Out.TimedOut = Status == static_cast<uint8_t>(RespStatus::TimedOut);
  Out.ExitCode = static_cast<int>(Exit);
  Out.Errors = Errors;
  Out.Modules = Modules;
  Out.Cancelled = Cancelled != 0;
  Out.Out = std::string(Stdout);
  Out.Err = std::string(Stderr);
  return true;
}

// --- Server -----------------------------------------------------------------

Server::Server(ServeOptions Opts)
    : Opts(std::move(Opts)), Service(this->Opts.Engine) {}

Server::~Server() {
  stop();
  if (Acceptor.joinable())
    Acceptor.join();
  // ThreadPool's destructor drains queued connections before joining.
  Pool.reset();
  Listener.close();
}

support::Status Server::start() {
  // A client that hangs up mid-response turns our write into EPIPE, not
  // process death. Process-wide, like every SIG_IGN; the CLI tools never
  // rely on SIGPIPE either.
  std::signal(SIGPIPE, SIG_IGN);
  auto L = sock::Listener::open(Opts.SocketPath);
  if (!L)
    return L.diags();
  Listener = std::move(*L);
  Pool.emplace(Opts.Workers);
  Acceptor = std::thread([this] { acceptLoop(); });
  Started = true;
  return {};
}

void Server::acceptLoop() {
  while (!StopFlag.load(std::memory_order_acquire)) {
    int Fd = Listener.acceptOnce(StopFlag);
    if (Fd < 0)
      break; // Stopped, or the listener went bad: either way, stop.
    Conns.fetch_add(1);
    size_t Depth = InFlight.load(std::memory_order_relaxed);
    // Admission control: past the bound, shed *before* reading the
    // request — a tiny canned Busy write the kernel buffers whole, so
    // even a dead-slow shed client cannot pin this thread for long.
    bool Full = Opts.MaxPending != 0 && Depth >= Opts.MaxPending;
    if (Full || WS_FAILPOINT("serve.admit.full")) {
      Shed.fetch_add(1);
      shedC().add();
      // The shed write+linger runs on this (the acceptor) thread, and
      // shedding happens exactly when admission is hot — so its budget
      // must be tight, or each stalled shed client serializes accept()
      // behind it and the overload protection becomes the bottleneck.
      // 100ms is plenty: the canned response is ~100 bytes the kernel
      // buffers whole; only the lingering drain ever waits.
      Deadline WDL = Deadline::afterMs(
          std::min<uint64_t>(Opts.WriteTimeoutMs ? Opts.WriteTimeoutMs : 100,
                             100));
      (void)sock::writeAll(Fd, cannedResponse(RespStatus::Busy,
                                              "busy: admission queue full"),
                           &WDL);
      // Lingering close: we answered without reading the request, and
      // close-with-unread-bytes resets the peer before it can read the
      // Busy verdict we just buffered. Drain (bounded) until the client
      // half-closes, then close.
      sock::shutdownWrite(Fd);
      sock::discardUntilEof(Fd, &WDL);
      sock::closeFd(Fd);
      continue;
    }
    Admitted.fetch_add(1);
    admittedC().add();
    queueDepthH().record(Depth);
    InFlight.fetch_add(1);
    // Work admitted before draining began is what drain() waits on;
    // connections accepted *during* drain (health probes, and work that
    // will be answered Busy) must not extend the drain.
    bool Work = !Draining.load(std::memory_order_acquire);
    if (Work)
      InFlightWork.fetch_add(1);
    Pool->submit([this, Fd, Work] { serveConnection(Fd, Work); });
  }
}

void Server::serveConnection(int Fd, bool Work) {
  // Always run the read under a live-token deadline: ReadTimeoutMs
  // bounds real stalls, and the serve.read.stall failpoint cancels the
  // token to make "the peer stalled" a deterministic, instant event
  // instead of a slept-through timeout.
  Deadline ReadDL = Deadline::afterMs(Opts.ReadTimeoutMs);
  if (WS_FAILPOINT("serve.read.stall"))
    ReadDL.cancel();
  auto Request = sock::readAll(Fd, &ReadDL, Opts.MaxRequestBytes);
  if (!Request) {
    bool TimedOut =
        Request.diags().hasError() &&
        Request.diags().firstError().code() == DiagCode::WS606_TRANSPORT_TIMEOUT;
    if (TimedOut) {
      // Slow loris: reclaim the worker, tell the peer (it may still be
      // alive and reading), count it. The canned reply gets its own
      // write deadline, starting now.
      TimedOutC.fetch_add(1);
      timedOutC().add();
      Deadline ReplyDL = Deadline::afterMs(Opts.WriteTimeoutMs);
      (void)sock::writeAll(
          Fd, cannedResponse(RespStatus::TimedOut, "request read timed out"),
          &ReplyDL);
      // The request was *not* consumed to EOF (that's why we're here);
      // linger so the close does not reset away the TimedOut verdict.
      sock::shutdownWrite(Fd);
      sock::discardUntilEof(Fd, &ReplyDL);
    }
    // Otherwise the client died mid-request (the soak's
    // kill-mid-request case): there is nobody to answer.
    sock::closeFd(Fd);
    InFlight.fetch_sub(1);
    if (Work)
      InFlightWork.fetch_sub(1);
    return;
  }
  std::string ResponseBytes = handle(*Request);
  // A worker wedged after the work is done (the serve.drain.hang site)
  // must not outlive a bounded drain: it parks until the drain kill
  // token or stop() releases it.
  if (WS_FAILPOINT("serve.drain.hang"))
    while (!DrainKill.cancelled() &&
           !StopFlag.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // WriteTimeoutMs bounds only the response write, so it starts *after*
  // handle() returns: a legitimate request whose compute outlasts the
  // write budget must not reach writeAll with an already-expired
  // deadline (that would silently discard the response and hand the
  // client a non-retryable empty read).
  Deadline WriteDL = Deadline::afterMs(Opts.WriteTimeoutMs);
  // Serving-layer fault sites (docs/SERVING.md degradation matrix): a
  // dropped or truncated response must fail *closed* on the client —
  // transport damage, exit 2 — never decode as a verdict.
  if (WS_FAILPOINT("serve.response.drop")) {
    sock::closeFd(Fd);
  } else if (WS_FAILPOINT("serve.response.truncate")) {
    (void)sock::writeAll(
        Fd, std::string_view(ResponseBytes).substr(0, ResponseBytes.size() / 2),
        &WriteDL);
    sock::closeFd(Fd);
  } else {
    // EPIPE = client gone; a WS606 here = client stopped reading: either
    // way the worker is reclaimed.
    (void)sock::writeAll(Fd, ResponseBytes, &WriteDL);
    // An oversize request was cut off at cap + 1, so its remainder is
    // still inbound; drain it (bounded) so the close does not reset
    // away the Rejected verdict. Fully-consumed requests hit EOF on the
    // first discard read — free.
    sock::shutdownWrite(Fd);
    sock::discardUntilEof(Fd, &WriteDL);
    sock::closeFd(Fd);
  }
  InFlight.fetch_sub(1);
  if (Work)
    InFlightWork.fetch_sub(1);
}

std::string Server::healthJson() const {
  return std::string("{\"type\":\"served-health\",\"state\":\"") +
         (Draining.load() ? "draining" : "ready") +
         "\",\"in_flight\":" + std::to_string(InFlight.load()) +
         ",\"admitted\":" + std::to_string(Admitted.load()) +
         ",\"shed\":" + std::to_string(Shed.load()) +
         ",\"timed_out\":" + std::to_string(TimedOutC.load()) + "}\n";
}

std::string Server::handle(std::string_view RequestBytes) {
  auto reject = [](const std::string &Why) {
    CheckResult Res;
    Res.ExitCode = 2;
    Res.Errors = 1;
    Res.Err = "wiresort-served: request rejected: " + Why + "\n";
    return encodeResponse(Res, RespStatus::Rejected);
  };
  // The transport reader stops at MaxRequestBytes + 1, so an oversize
  // request reaches here as exactly cap + 1 buffered bytes — same
  // verdict bytes as before the cap existed, bounded memory now.
  if (RequestBytes.size() > Opts.MaxRequestBytes)
    return reject("request exceeds " + std::to_string(Opts.MaxRequestBytes) +
                  " bytes");

  Method M = Method::Check;
  CheckRequest R;
  std::string Why;
  if (!decodeRequest(RequestBytes, M, R, Why))
    return reject(Why);

  // Health answers in every state — it is how operators watch a drain.
  if (M == Method::Health) {
    CheckResult Res;
    Res.Out = healthJson();
    return encodeResponse(Res, RespStatus::Ok);
  }
  // A draining server sheds work instead of starting what it might have
  // to cancel; Busy is retryable, and the restarted daemon (or a
  // sibling) will take the retry. Stats still reports, and Shutdown is
  // acknowledged Ok — the daemon *is* stopping, so answering Busy would
  // send `wiresort-client --shutdown` into pointless retries (exit 7)
  // against a dying server.
  if (Draining.load(std::memory_order_acquire) && M != Method::Stats &&
      M != Method::Shutdown) {
    CheckResult Res;
    Res.ExitCode = 2;
    Res.Errors = 1;
    Res.Err = "wiresort-served: busy: draining\n";
    return encodeResponse(Res, RespStatus::Busy);
  }

  switch (M) {
  case Method::Check:
  case Method::Ascribe: {
    // Fork-mode shard workers are unsafe in a threaded process
    // (support/Process.h); requests degrade to in-process shards,
    // byte-identically (analysis/Sharded.h determinism contract).
    R.AllowFork = false;
    // Thread the drain kill through the run: a bounded drain cancels
    // stragglers cooperatively (WS601, exit 3, fail closed).
    R.Cancel = DrainKill;
    CheckResult Res = Service.run(R);
    return encodeResponse(Res, RespStatus::Ok);
  }
  case Method::Stats: {
    CheckResult Res;
    analysis::SummaryCache &Cache = Service.engine().cache();
    Res.Out = "{\"type\":\"served-stats\",\"requests\":" +
              std::to_string(Service.requestsServed()) +
              ",\"connections\":" + std::to_string(Conns.load()) +
              ",\"cache_entries\":" + std::to_string(Cache.size()) +
              ",\"cache_hits\":" + std::to_string(Cache.hits()) +
              ",\"cache_misses\":" + std::to_string(Cache.misses()) +
              ",\"parse_entries\":" +
              std::to_string(Service.parseCache().size()) +
              ",\"parse_hits\":" +
              std::to_string(Service.parseCache().hits()) +
              ",\"parse_misses\":" +
              std::to_string(Service.parseCache().misses()) +
              ",\"admitted\":" + std::to_string(Admitted.load()) +
              ",\"shed\":" + std::to_string(Shed.load()) +
              ",\"timed_out\":" + std::to_string(TimedOutC.load()) +
              ",\"draining\":" + (Draining.load() ? "true" : "false") +
              ",\"workers\":" +
              std::to_string(Pool ? Pool->numThreads() : 0) + "}\n";
    return encodeResponse(Res, RespStatus::Ok);
  }
  case Method::Shutdown: {
    // Flag first, respond second: the accept loop stops while this
    // worker still writes the acknowledgement; in-flight requests
    // drain before wait() returns.
    stop();
    CheckResult Res;
    Res.Out = "wiresort-served: shutting down\n";
    return encodeResponse(Res, RespStatus::Ok);
  }
  case Method::Health:
    break; // Handled above.
  }
  return reject("unreachable method");
}

void Server::stop() {
  StopFlag.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> Lock(StopMutex);
  StopCv.notify_all();
}

void Server::drain() {
  bool Expected = false;
  if (!Draining.compare_exchange_strong(Expected, true))
    return; // Already draining (second SIGTERM): the first drain wins.
  using Clock = std::chrono::steady_clock;
  auto SpinUntil = [this](Clock::time_point End) {
    while (InFlightWork.load(std::memory_order_acquire) != 0 &&
           Clock::now() < End)
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
  };
  // Phase 1: polite — let in-flight work finish on its own.
  SpinUntil(Clock::now() + std::chrono::milliseconds(Opts.DrainDeadlineMs));
  if (InFlightWork.load(std::memory_order_acquire) != 0) {
    // Phase 2: firm — cancel stragglers through the engine's
    // cooperative deadline (they exit 3, WS601) and give them a short
    // grace to unwind; the whole drain stays bounded either way.
    DrainKill.cancel();
    SpinUntil(Clock::now() +
              std::chrono::milliseconds(
                  std::min<uint64_t>(Opts.DrainDeadlineMs, 1000)));
  }
  stop();
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> Lock(StopMutex);
    StopCv.wait(Lock, [this] {
      return StopFlag.load(std::memory_order_acquire);
    });
  }
  if (Acceptor.joinable())
    Acceptor.join();
  // Workers still parked on the drain-hang site must see the kill token
  // even when stop() was reached without drain() (protocol shutdown).
  DrainKill.cancel();
  if (Pool)
    Pool->wait(); // Drain in-flight connections.
  Listener.close(); // Close + unlink: a clean exit leaves no socket file.
}

void driver::internServeCounters() {
  admittedC();
  shedC();
  timedOutC();
  queueDepthH();
}

// --- Client -----------------------------------------------------------------

Response driver::requestOnce(const std::string &SocketPath, Method M,
                             const CheckRequest &R,
                             uint64_t TransportTimeoutMs) {
  Response Out;
  auto Fd = sock::connectTo(SocketPath);
  if (!Fd) {
    Out.Transport.append(Fd.diags());
    return Out;
  }
  Deadline DL = TransportTimeoutMs != 0
                    ? Deadline::afterMs(TransportTimeoutMs)
                    : Deadline();
  const Deadline *DLPtr = DL.active() ? &DL : nullptr;
  std::string RequestBytes = encodeRequest(M, R);
  support::Status W = sock::writeAll(*Fd, RequestBytes, DLPtr);
  sock::shutdownWrite(*Fd);
  // Read even after a broken write: a server that shed (Busy) or
  // rejected early closes without reading our whole request, but its
  // response is already buffered on our side — Unix sockets deliver it
  // despite the EPIPE — and that response, not the pipe error, is the
  // actionable verdict.
  auto ResponseBytes = sock::readAll(*Fd, DLPtr);
  sock::closeFd(*Fd);
  std::string Why;
  if (ResponseBytes && !ResponseBytes->empty() &&
      decodeResponse(*ResponseBytes, Out, Why))
    return Out;
  if (W.hasError()) {
    Out.Ok = false;
    Out.Transport.append(W);
  } else if (!ResponseBytes) {
    Out.Transport.append(ResponseBytes.diags());
  } else {
    // Fail closed: a torn/tampered response is transport damage with
    // the evidence attached, never a verdict.
    Out.Ok = false;
    Out.Transport.add(
        support::Diag(support::DiagCode::WS501_IO_ERROR,
                      "malformed response from wiresort-served")
            .withNote("path", SocketPath)
            .withNote("detail", Why.empty() ? "empty response" : Why));
  }
  if (Out.Transport.hasError() &&
      Out.Transport.firstError().code() == DiagCode::WS606_TRANSPORT_TIMEOUT)
    Out.TimedOut = true;
  return Out;
}

Response driver::requestWithRetry(const std::string &SocketPath, Method M,
                                  const CheckRequest &R,
                                  const sock::RetryPolicy &P,
                                  uint64_t TransportTimeoutMs) {
  unsigned Attempts = std::max(P.MaxAttempts, 1u);
  uint64_t SleepMs = 0;
  for (unsigned A = 0;; ++A) {
    Response Out = requestOnce(SocketPath, M, R, TransportTimeoutMs);
    bool Retryable = false;
    if (Out.Ok) {
      // Busy is the server's explicit "come back later".
      Retryable = Out.Busy;
    } else if (Out.Transport.hasError()) {
      // Same transient set as dialWithRetry: the daemon is restarting.
      std::string E = Out.Transport.firstError().note("errno");
      Retryable = E == "ECONNREFUSED" || E == "ENOENT";
    }
    if (!Retryable || A + 1 >= Attempts)
      return Out;
    SleepMs = sock::nextBackoffMs(P, SleepMs, A);
    std::this_thread::sleep_for(std::chrono::milliseconds(SleepMs));
  }
}
