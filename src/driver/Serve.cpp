//===- driver/Serve.cpp - The resident check service ----------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "driver/Serve.h"

#include "support/FailPoint.h"
#include "support/Wire.h"

#include <csignal>

using namespace wiresort;
using namespace wiresort::driver;
using namespace wiresort::support;

namespace {

/// Serve payload schema version carried by the StreamBegin record
/// (docs/SERVING.md). The framing versions separately (wire format v1).
constexpr uint64_t ServePayloadVersion = 1;

/// Request flag bits (one byte on the wire).
enum : uint8_t {
  FlagQuiet = 1 << 0,
  FlagShowDepth = 1 << 1,
  FlagBinarySummaries = 1 << 2,
  FlagInlineText = 1 << 3,
  FlagInlineCheckText = 1 << 4,
  FlagStats = 1 << 5,
};

/// Extracts the one payload record of kind \p Want from a serve stream,
/// enforcing the fail-closed rules shared by both directions: correct
/// StreamBegin, exactly one payload record, a clean StreamEnd, and no
/// framing damage anywhere. \returns false with \p Why otherwise.
bool readServeStream(wire::RecordKind Want, wire::Reader &R,
                     wire::Reader::Record &Payload, std::string &Why) {
  if (!R.readHeader(&Why))
    return false;
  bool SawBegin = false, SawPayload = false;
  for (;;) {
    wire::Reader::Record Rec;
    switch (R.next(Rec)) {
    case wire::Reader::Item::End:
      if (!SawPayload)
        Why = "stream ended without a payload record";
      return SawPayload;
    case wire::Reader::Item::Exhausted:
      Why = "stream truncated before StreamEnd";
      return false;
    case wire::Reader::Item::Truncated:
      Why = "record truncated";
      return false;
    case wire::Reader::Item::Corrupt:
      Why = "record checksum mismatch";
      return false;
    case wire::Reader::Item::Record:
      break;
    }
    if (Rec.Kind == wire::RecordKind::StreamBegin) {
      wire::Reader::Cursor C(Rec, R);
      uint8_t Kind = 0;
      uint64_t Version = 0;
      if (!C.getByte(Kind) || !C.getVarint(Version) ||
          Kind != static_cast<uint8_t>(wire::StreamKind::Serve)) {
        Why = "not a serve stream (wrong stream kind)";
        return false;
      }
      if (Version > ServePayloadVersion) {
        Why = "serve protocol version " + std::to_string(Version) +
              " is newer than this build understands";
        return false;
      }
      SawBegin = true;
      continue;
    }
    if (Rec.Kind != Want)
      continue; // Forward compat: skip record kinds we don't know.
    if (!SawBegin) {
      Why = "payload record before StreamBegin";
      return false;
    }
    if (SawPayload) {
      Why = "more than one payload record";
      return false;
    }
    SawPayload = true;
    Payload = Rec;
  }
}

} // namespace

// --- Codecs -----------------------------------------------------------------

std::string driver::encodeRequest(Method M, const CheckRequest &R) {
  wire::Writer W;
  W.beginStream(wire::StreamKind::Serve, ServePayloadVersion);
  W.beginRecord(wire::RecordKind::ServeRequest);
  W.putByte(static_cast<uint8_t>(M));
  W.putByte(static_cast<uint8_t>(R.Req.OutputFormat));
  uint8_t Flags = 0;
  if (R.Quiet)
    Flags |= FlagQuiet;
  if (R.ShowDepth)
    Flags |= FlagShowDepth;
  if (R.BinarySummaries)
    Flags |= FlagBinarySummaries;
  if (R.HasInlineText)
    Flags |= FlagInlineText;
  if (R.HasInlineCheckText)
    Flags |= FlagInlineCheckText;
  if (R.Req.Stats)
    Flags |= FlagStats;
  W.putByte(Flags);
  W.putVarint(R.Req.TimeoutMs);
  W.putVarint(R.Req.FaultSeed);
  W.putVarint(R.Shards);
  W.putVarint(R.SliceShard);
  W.putVarint(R.SliceOf);
  W.putString(R.DesignPath);
  W.putString(R.DesignName);
  W.putString(R.Req.CachePath);
  W.putString(R.Req.TraceOutPath);
  W.putString(R.Req.FailpointSpec);
  W.putString(R.SummariesOut);
  W.putString(R.CheckPath);
  W.putString(R.DotPath);
  W.putString(R.ConvertIn);
  W.putBytes(R.DesignText);
  W.putBytes(R.CheckText);
  W.endRecord();
  W.finish();
  return W.take();
}

bool driver::decodeRequest(std::string_view Bytes, Method &M, CheckRequest &R,
                           std::string &Why) {
  wire::Reader Reader(Bytes);
  wire::Reader::Record Rec;
  if (!readServeStream(wire::RecordKind::ServeRequest, Reader, Rec, Why))
    return false;
  wire::Reader::Cursor C(Rec, Reader);
  uint8_t Meth = 0, Fmt = 0, Flags = 0;
  uint64_t TimeoutMs = 0, Seed = 0, Shards = 0, SliceShard = 0, SliceOf = 0;
  std::string_view DesignPath, DesignName, CachePath, TraceOut, Failpoints,
      SummariesOut, CheckPath, DotPath, ConvertIn, DesignText, CheckText;
  if (!C.getByte(Meth) || !C.getByte(Fmt) || !C.getByte(Flags) ||
      !C.getVarint(TimeoutMs) || !C.getVarint(Seed) || !C.getVarint(Shards) ||
      !C.getVarint(SliceShard) || !C.getVarint(SliceOf) ||
      !C.getString(DesignPath) || !C.getString(DesignName) ||
      !C.getString(CachePath) || !C.getString(TraceOut) ||
      !C.getString(Failpoints) || !C.getString(SummariesOut) ||
      !C.getString(CheckPath) || !C.getString(DotPath) ||
      !C.getString(ConvertIn) || !C.getBytes(DesignText) ||
      !C.getBytes(CheckText)) {
    Why = "malformed request record";
    return false;
  }
  if (Meth < static_cast<uint8_t>(Method::Check) ||
      Meth > static_cast<uint8_t>(Method::Shutdown)) {
    Why = "unknown method " + std::to_string(Meth);
    return false;
  }
  if (Fmt > static_cast<uint8_t>(analysis::Format::Json)) {
    Why = "unknown output format " + std::to_string(Fmt);
    return false;
  }
  M = static_cast<Method>(Meth);
  R = CheckRequest();
  R.Req.OutputFormat = static_cast<analysis::Format>(Fmt);
  R.Quiet = Flags & FlagQuiet;
  R.ShowDepth = Flags & FlagShowDepth;
  R.BinarySummaries = Flags & FlagBinarySummaries;
  R.HasInlineText = Flags & FlagInlineText;
  R.HasInlineCheckText = Flags & FlagInlineCheckText;
  R.Req.Stats = Flags & FlagStats;
  R.Req.TimeoutMs = TimeoutMs;
  R.Req.FaultSeed = Seed;
  R.Shards = static_cast<unsigned>(Shards);
  R.SliceShard = static_cast<unsigned>(SliceShard);
  R.SliceOf = static_cast<unsigned>(SliceOf);
  R.DesignPath = std::string(DesignPath);
  R.DesignName = std::string(DesignName);
  R.Req.CachePath = std::string(CachePath);
  R.Req.TraceOutPath = std::string(TraceOut);
  R.Req.FailpointSpec = std::string(Failpoints);
  R.SummariesOut = std::string(SummariesOut);
  R.CheckPath = std::string(CheckPath);
  R.DotPath = std::string(DotPath);
  R.ConvertIn = std::string(ConvertIn);
  R.DesignText = std::string(DesignText);
  R.CheckText = std::string(CheckText);
  return true;
}

std::string driver::encodeResponse(const CheckResult &Res, bool Rejected) {
  wire::Writer W;
  W.beginStream(wire::StreamKind::Serve, ServePayloadVersion);
  W.beginRecord(wire::RecordKind::ServeResponse);
  W.putByte(Rejected ? 1 : 0);
  W.putVarint(static_cast<uint64_t>(Res.ExitCode));
  W.putVarint(Res.Errors);
  W.putVarint(Res.Modules);
  W.putByte(Res.Cancelled ? 1 : 0);
  W.putBytes(Res.Out);
  W.putBytes(Res.Err);
  W.endRecord();
  W.finish();
  return W.take();
}

bool driver::decodeResponse(std::string_view Bytes, Response &Out,
                            std::string &Why) {
  wire::Reader Reader(Bytes);
  wire::Reader::Record Rec;
  if (!readServeStream(wire::RecordKind::ServeResponse, Reader, Rec, Why))
    return false;
  wire::Reader::Cursor C(Rec, Reader);
  uint8_t Status = 0, Cancelled = 0;
  uint64_t Exit = 0, Errors = 0, Modules = 0;
  std::string_view Stdout, Stderr;
  if (!C.getByte(Status) || !C.getVarint(Exit) || !C.getVarint(Errors) ||
      !C.getVarint(Modules) || !C.getByte(Cancelled) ||
      !C.getBytes(Stdout) || !C.getBytes(Stderr)) {
    Why = "malformed response record";
    return false;
  }
  Out.Ok = true;
  Out.Rejected = Status != 0;
  Out.ExitCode = static_cast<int>(Exit);
  Out.Errors = Errors;
  Out.Modules = Modules;
  Out.Cancelled = Cancelled != 0;
  Out.Out = std::string(Stdout);
  Out.Err = std::string(Stderr);
  return true;
}

// --- Server -----------------------------------------------------------------

Server::Server(ServeOptions Opts)
    : Opts(std::move(Opts)), Service(this->Opts.Engine) {}

Server::~Server() {
  stop();
  if (Acceptor.joinable())
    Acceptor.join();
  // ThreadPool's destructor drains queued connections before joining.
  Pool.reset();
  Listener.close();
}

support::Status Server::start() {
  // A client that hangs up mid-response turns our write into EPIPE, not
  // process death. Process-wide, like every SIG_IGN; the CLI tools never
  // rely on SIGPIPE either.
  std::signal(SIGPIPE, SIG_IGN);
  auto L = sock::Listener::open(Opts.SocketPath);
  if (!L)
    return L.diags();
  Listener = std::move(*L);
  Pool.emplace(Opts.Workers);
  Acceptor = std::thread([this] { acceptLoop(); });
  Started = true;
  return {};
}

void Server::acceptLoop() {
  while (!StopFlag.load(std::memory_order_acquire)) {
    int Fd = Listener.acceptOnce(StopFlag);
    if (Fd < 0)
      break; // Stopped, or the listener went bad: either way, stop.
    Conns.fetch_add(1);
    Pool->submit([this, Fd] { serveConnection(Fd); });
  }
}

void Server::serveConnection(int Fd) {
  auto Request = sock::readAll(Fd);
  if (!Request) {
    // Client died mid-request (the soak's kill-mid-request case): there
    // is nobody to answer, so just release the fd.
    sock::closeFd(Fd);
    return;
  }
  std::string ResponseBytes = handle(*Request);
  // Serving-layer fault sites (docs/SERVING.md degradation matrix): a
  // dropped or truncated response must fail *closed* on the client —
  // transport damage, exit 2 — never decode as a verdict.
  if (WS_FAILPOINT("serve.response.drop")) {
    sock::closeFd(Fd);
    return;
  }
  if (WS_FAILPOINT("serve.response.truncate")) {
    (void)sock::writeAll(
        Fd, std::string_view(ResponseBytes).substr(0, ResponseBytes.size() / 2));
    sock::closeFd(Fd);
    return;
  }
  (void)sock::writeAll(Fd, ResponseBytes); // EPIPE = client gone; fine.
  sock::closeFd(Fd);
}

std::string Server::handle(std::string_view RequestBytes) {
  auto reject = [](const std::string &Why) {
    CheckResult Res;
    Res.ExitCode = 2;
    Res.Errors = 1;
    Res.Err = "wiresort-served: request rejected: " + Why + "\n";
    return encodeResponse(Res, /*Rejected=*/true);
  };
  if (RequestBytes.size() > Opts.MaxRequestBytes)
    return reject("request exceeds " + std::to_string(Opts.MaxRequestBytes) +
                  " bytes");

  Method M = Method::Check;
  CheckRequest R;
  std::string Why;
  if (!decodeRequest(RequestBytes, M, R, Why))
    return reject(Why);

  switch (M) {
  case Method::Check:
  case Method::Ascribe: {
    // Fork-mode shard workers are unsafe in a threaded process
    // (support/Process.h); requests degrade to in-process shards,
    // byte-identically (analysis/Sharded.h determinism contract).
    R.AllowFork = false;
    CheckResult Res = Service.run(R);
    return encodeResponse(Res, /*Rejected=*/false);
  }
  case Method::Stats: {
    CheckResult Res;
    analysis::SummaryCache &Cache = Service.engine().cache();
    Res.Out = "{\"type\":\"served-stats\",\"requests\":" +
              std::to_string(Service.requestsServed()) +
              ",\"connections\":" + std::to_string(Conns.load()) +
              ",\"cache_entries\":" + std::to_string(Cache.size()) +
              ",\"cache_hits\":" + std::to_string(Cache.hits()) +
              ",\"cache_misses\":" + std::to_string(Cache.misses()) +
              ",\"parse_entries\":" +
              std::to_string(Service.parseCache().size()) +
              ",\"parse_hits\":" +
              std::to_string(Service.parseCache().hits()) +
              ",\"parse_misses\":" +
              std::to_string(Service.parseCache().misses()) +
              ",\"workers\":" +
              std::to_string(Pool ? Pool->numThreads() : 0) + "}\n";
    return encodeResponse(Res, /*Rejected=*/false);
  }
  case Method::Shutdown: {
    // Flag first, respond second: the accept loop stops while this
    // worker still writes the acknowledgement; in-flight requests
    // drain before wait() returns.
    stop();
    CheckResult Res;
    Res.Out = "wiresort-served: shutting down\n";
    return encodeResponse(Res, /*Rejected=*/false);
  }
  }
  return reject("unreachable method");
}

void Server::stop() {
  StopFlag.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> Lock(StopMutex);
  StopCv.notify_all();
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> Lock(StopMutex);
    StopCv.wait(Lock, [this] {
      return StopFlag.load(std::memory_order_acquire);
    });
  }
  if (Acceptor.joinable())
    Acceptor.join();
  if (Pool)
    Pool->wait(); // Drain in-flight connections.
  Listener.close(); // Close + unlink: a clean exit leaves no socket file.
}

// --- Client -----------------------------------------------------------------

Response driver::requestOnce(const std::string &SocketPath, Method M,
                             const CheckRequest &R) {
  Response Out;
  auto Fd = sock::connectTo(SocketPath);
  if (!Fd) {
    Out.Transport.append(Fd.diags());
    return Out;
  }
  std::string RequestBytes = encodeRequest(M, R);
  if (support::Status W = sock::writeAll(*Fd, RequestBytes); W.hasError()) {
    Out.Transport.append(W);
    sock::closeFd(*Fd);
    return Out;
  }
  sock::shutdownWrite(*Fd);
  auto ResponseBytes = sock::readAll(*Fd);
  sock::closeFd(*Fd);
  if (!ResponseBytes) {
    Out.Transport.append(ResponseBytes.diags());
    return Out;
  }
  std::string Why;
  if (!decodeResponse(*ResponseBytes, Out, Why)) {
    // Fail closed: a torn/tampered response is transport damage with
    // the evidence attached, never a verdict.
    Out.Ok = false;
    Out.Transport.add(
        support::Diag(support::DiagCode::WS501_IO_ERROR,
                      "malformed response from wiresort-served")
            .withNote("path", SocketPath)
            .withNote("detail", Why));
    return Out;
  }
  return Out;
}
