//===- driver/Serve.h - The resident check service --------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer (docs/SERVING.md): a long-lived Server keeps one
/// CheckService — and therefore one SummaryEngine and its
/// content-addressed summary cache — resident, and serves `check` /
/// `ascribe` / `stats` / `health` / `shutdown` requests over a
/// Unix-domain socket. Connections multiplex onto a support::ThreadPool;
/// each request runs under its own support::Deadline (the request's
/// TimeoutMs) through CheckService::run, so a re-submitted edited design
/// re-infers only the modules whose structural content actually changed.
///
/// Protocol (one request per connection):
///
///   client:  wire stream [StreamBegin(Serve,1) | ServeRequest |
///            StreamEnd], then shutdown(SHUT_WR)
///   server:  wire stream [StreamBegin(Serve,1) | ServeResponse |
///            StreamEnd], then close
///
/// Half-close is the message delimiter; the wire framing supplies
/// per-record checksums, so a torn or tampered message fails closed on
/// either side (the client reports transport damage and exits 2, never
/// trusts a partial verdict). Responses to `check`/`ascribe` carry the
/// byte-exact stdout/stderr of `wiresort-check` on the same inputs —
/// identity by construction, both sides run driver::CheckService.
///
/// Overload safety (docs/SERVING.md degradation matrix): every
/// connection read/write runs under a transport deadline, so a stalled
/// peer costs its budget and the worker is reclaimed (the client sees a
/// TimedOut response when the server can still say so). Admission is
/// bounded: past MaxPending in-flight requests the server sheds with a
/// retryable Busy response — written without ever reading the request —
/// and counts it (serve.shed). A draining server (SIGTERM, or drain())
/// likewise answers work requests Busy while in-flight requests finish
/// under a bounded drain deadline; `health` reports ready/draining the
/// whole time. The retrying client (requestWithRetry) treats Busy and
/// connect-refused as transient and backs off with decorrelated jitter.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_DRIVER_SERVE_H
#define WIRESORT_DRIVER_SERVE_H

#include "driver/Check.h"
#include "support/Socket.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

namespace wiresort::driver {

/// Request methods. Values are wire contract (docs/SERVING.md); never
/// renumber.
enum class Method : uint8_t {
  Check = 1,    ///< Run a check; respond with the CLI's bytes.
  Ascribe = 2,  ///< Check + inline declared-summary sidecar compare.
  Stats = 3,    ///< One NDJSON record of daemon/service counters.
  Shutdown = 4, ///< Acknowledge, then stop accepting and drain.
  Health = 5,   ///< Liveness + drain state; served even while draining.
};

/// Response status byte. Wire contract (docs/SERVING.md); never
/// renumber. Decoders fail closed on values they don't know.
enum class RespStatus : uint8_t {
  Ok = 0,       ///< Request ran; the result is the verdict.
  Rejected = 1, ///< Malformed/oversized request; not retryable.
  Busy = 2,     ///< Shed (queue full) or draining; retryable.
  TimedOut = 3, ///< Transport deadline fired server-side; retryable.
};

struct ServeOptions {
  /// Unix-domain socket path (sun_path-limited, ~107 bytes).
  std::string SocketPath;
  /// Resident-engine knobs. Per docs/SERVING.md the daemon gets its
  /// parallelism from concurrent requests, so Threads=1 per request is
  /// the intended configuration.
  analysis::EngineConfig Engine{1, true};
  /// Connection worker threads; 0 picks hardware concurrency.
  unsigned Workers = 0;
  /// Requests larger than this are rejected (status Rejected, exit 2)
  /// instead of parsed — and, since the reader stops at this cap plus
  /// one witness byte, never buffered either.
  uint64_t MaxRequestBytes = 256ull << 20;
  /// Admission bound: with this many requests already in flight, new
  /// connections are shed with a Busy response instead of queued behind
  /// them (0 = unbounded, the pre-overload-safety behavior).
  unsigned MaxPending = 64;
  /// Transport deadline on reading one request (0 = no limit). A peer
  /// that stalls mid-frame is timed out and its worker reclaimed.
  uint64_t ReadTimeoutMs = 10000;
  /// Transport deadline on writing one response (0 = no limit).
  uint64_t WriteTimeoutMs = 10000;
  /// Bound on graceful drain: how long drain() waits for in-flight
  /// requests before cancelling them through the engine's cooperative
  /// deadline machinery (they exit 3, WS601, fail closed).
  uint64_t DrainDeadlineMs = 5000;
};

/// A decoded response (client side). Transport trouble — can't connect,
/// torn stream, checksum mismatch — surfaces as Ok=false with the
/// evidence in Transport, and callers fail closed: exit 2, never a
/// guessed verdict.
struct Response {
  bool Ok = false;
  support::DiagList Transport;
  /// True when the server said "malformed/oversized request" instead of
  /// running one (status Rejected).
  bool Rejected = false;
  /// True when the server shed the request (queue full or draining);
  /// retryable — requestWithRetry backs off and resends.
  bool Busy = false;
  /// True when the server's transport deadline fired mid-request
  /// (status TimedOut), or — with Ok=false — when the *client's* own
  /// transport deadline fired (WS606 in Transport).
  bool TimedOut = false;
  int ExitCode = 2;
  size_t Errors = 0;
  size_t Modules = 0;
  bool Cancelled = false;
  std::string Out;
  std::string Err;
};

/// The daemon core, embeddable in-process (the serving tests run it on
/// a scratch socket inside the test binary — same code path as the
/// wiresort-served tool).
class Server {
public:
  explicit Server(ServeOptions Opts);
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;
  /// stop()s and joins; safe if never started.
  ~Server();

  /// Opens the listener and starts the accept thread + worker pool.
  /// \returns WS501 evidence when the socket cannot be bound.
  support::Status start();

  /// Blocks until a shutdown request arrives (or stop() is called),
  /// then drains in-flight connections and closes/unlinks the socket.
  void wait();

  /// Initiates shutdown from outside the protocol (signal handlers,
  /// tests). Idempotent.
  void stop();

  /// Graceful shutdown (the SIGTERM path): stop admitting work — new
  /// check/ascribe requests get Busy, health keeps answering
  /// "draining" — wait up to DrainDeadlineMs for in-flight work, then
  /// cancel stragglers through the drain token and stop(). Bounded:
  /// returns within roughly 2 * DrainDeadlineMs worst case. Idempotent;
  /// callers still wait() afterwards to join and unlink.
  void drain();

  const std::string &socketPath() const { return Opts.SocketPath; }
  CheckService &service() { return Service; }
  size_t connectionsServed() const { return Conns.load(); }

  /// Observability for tools/tests (also reported by health/stats).
  bool draining() const { return Draining.load(); }
  bool stopRequested() const { return StopFlag.load(); }
  size_t admittedCount() const { return Admitted.load(); }
  size_t shedCount() const { return Shed.load(); }
  size_t timedOutCount() const { return TimedOutC.load(); }
  size_t inFlight() const { return InFlight.load(); }

private:
  void acceptLoop();
  void serveConnection(int Fd, bool Work);
  /// Decode + dispatch one request; \returns the response stream bytes.
  std::string handle(std::string_view RequestBytes);
  std::string healthJson() const;

  ServeOptions Opts;
  CheckService Service;
  support::sock::Listener Listener;
  std::optional<ThreadPool> Pool;
  std::thread Acceptor;
  std::atomic<bool> StopFlag{false};
  std::atomic<bool> Draining{false};
  std::atomic<size_t> Conns{0};
  /// Connections currently inside serveConnection (depth the admission
  /// check sheds on).
  std::atomic<size_t> InFlight{0};
  /// The subset admitted as *work* before draining began — what drain()
  /// waits on. Health checks accepted during drain don't extend it.
  std::atomic<size_t> InFlightWork{0};
  std::atomic<size_t> Admitted{0};
  std::atomic<size_t> Shed{0};
  std::atomic<size_t> TimedOutC{0};
  /// Cancels in-flight engine runs when the drain deadline fires; every
  /// admitted check/ascribe request observes it via CheckRequest::Cancel.
  support::CancellationToken DrainKill = support::CancellationToken::create();
  std::mutex StopMutex;
  std::condition_variable StopCv;
  bool Started = false;
};

/// One client request: connect, send, half-close, read to EOF, decode —
/// fail closed on any transport or framing damage. \p M selects the
/// method; \p R is consulted for Check/Ascribe (ignored for
/// Stats/Shutdown/Health). A nonzero \p TransportTimeoutMs bounds the
/// client-side write and read (WS606 in Transport, TimedOut set, on
/// expiry). If the request write breaks early (EPIPE — the server shed
/// or rejected without reading it all), the already-buffered response is
/// still read and decoded, so Busy/Rejected reach the caller instead of
/// a bare broken pipe.
Response requestOnce(const std::string &SocketPath, Method M,
                     const CheckRequest &R = {},
                     uint64_t TransportTimeoutMs = 0);

/// requestOnce with the transient failures retried under \p P's
/// decorrelated-jitter backoff: connect refused / socket path missing
/// (daemon restarting) and Busy responses (shed or draining). Rejected,
/// TimedOut, and transport damage are not retried — resending a
/// malformed or torn request cannot help. \returns the last attempt's
/// Response; callers distinguish "busy-exhausted" by Ok && Busy.
Response requestWithRetry(const std::string &SocketPath, Method M,
                          const CheckRequest &R,
                          const support::sock::RetryPolicy &P,
                          uint64_t TransportTimeoutMs = 0);

/// Interns the serve.* counters/histograms (serve.admitted, serve.shed,
/// serve.timed_out, serve.queue_depth) so --stats enumerates them at
/// zero before any serving traffic — the same contract
/// wire::internCounters gives the transport counters.
void internServeCounters();

// --- Wire codecs (exposed for the serving tests) ----------------------------

/// Composes the complete request stream for \p M / \p R.
std::string encodeRequest(Method M, const CheckRequest &R);

/// Decodes a request stream. \returns false (with \p Why) on any
/// framing or schema damage — the server rejects, never guesses.
bool decodeRequest(std::string_view Bytes, Method &M, CheckRequest &R,
                   std::string &Why);

/// Composes the complete response stream; \p Status stamps the
/// status byte (Rejected/Busy/TimedOut responses carry the evidence in
/// Res.Err and an exit code of 2).
std::string encodeResponse(const CheckResult &Res, RespStatus Status);

/// Decodes a response stream into \p Out. \returns false (with \p Why)
/// on framing or schema damage — including a status byte this build
/// doesn't know; \p Out is then unusable.
bool decodeResponse(std::string_view Bytes, Response &Out, std::string &Why);

} // namespace wiresort::driver

#endif // WIRESORT_DRIVER_SERVE_H
