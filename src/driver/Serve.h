//===- driver/Serve.h - The resident check service --------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer (docs/SERVING.md): a long-lived Server keeps one
/// CheckService — and therefore one SummaryEngine and its
/// content-addressed summary cache — resident, and serves `check` /
/// `ascribe` / `stats` / `shutdown` requests over a Unix-domain socket.
/// Connections multiplex onto a support::ThreadPool; each request runs
/// under its own support::Deadline (the request's TimeoutMs) through
/// CheckService::run, so a re-submitted edited design re-infers only
/// the modules whose structural content actually changed.
///
/// Protocol (one request per connection):
///
///   client:  wire stream [StreamBegin(Serve,1) | ServeRequest |
///            StreamEnd], then shutdown(SHUT_WR)
///   server:  wire stream [StreamBegin(Serve,1) | ServeResponse |
///            StreamEnd], then close
///
/// Half-close is the message delimiter; the wire framing supplies
/// per-record checksums, so a torn or tampered message fails closed on
/// either side (the client reports transport damage and exits 2, never
/// trusts a partial verdict). Responses to `check`/`ascribe` carry the
/// byte-exact stdout/stderr of `wiresort-check` on the same inputs —
/// identity by construction, both sides run driver::CheckService.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_DRIVER_SERVE_H
#define WIRESORT_DRIVER_SERVE_H

#include "driver/Check.h"
#include "support/Socket.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

namespace wiresort::driver {

/// Request methods. Values are wire contract (docs/SERVING.md); never
/// renumber.
enum class Method : uint8_t {
  Check = 1,    ///< Run a check; respond with the CLI's bytes.
  Ascribe = 2,  ///< Check + inline declared-summary sidecar compare.
  Stats = 3,    ///< One NDJSON record of daemon/service counters.
  Shutdown = 4, ///< Acknowledge, then stop accepting and drain.
};

struct ServeOptions {
  /// Unix-domain socket path (sun_path-limited, ~107 bytes).
  std::string SocketPath;
  /// Resident-engine knobs. Per docs/SERVING.md the daemon gets its
  /// parallelism from concurrent requests, so Threads=1 per request is
  /// the intended configuration.
  analysis::EngineConfig Engine{1, true};
  /// Connection worker threads; 0 picks hardware concurrency.
  unsigned Workers = 0;
  /// Requests larger than this are rejected (status byte 1, exit 2)
  /// instead of parsed — the only bound a local trusted socket needs.
  uint64_t MaxRequestBytes = 256ull << 20;
};

/// A decoded response (client side). Transport trouble — can't connect,
/// torn stream, checksum mismatch — surfaces as Ok=false with the
/// evidence in Transport, and callers fail closed: exit 2, never a
/// guessed verdict.
struct Response {
  bool Ok = false;
  support::DiagList Transport;
  /// True when the server said "malformed/oversized request" instead of
  /// running one (the status-byte-1 path).
  bool Rejected = false;
  int ExitCode = 2;
  size_t Errors = 0;
  size_t Modules = 0;
  bool Cancelled = false;
  std::string Out;
  std::string Err;
};

/// The daemon core, embeddable in-process (the serving tests run it on
/// a scratch socket inside the test binary — same code path as the
/// wiresort-served tool).
class Server {
public:
  explicit Server(ServeOptions Opts);
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;
  /// stop()s and joins; safe if never started.
  ~Server();

  /// Opens the listener and starts the accept thread + worker pool.
  /// \returns WS501 evidence when the socket cannot be bound.
  support::Status start();

  /// Blocks until a shutdown request arrives (or stop() is called),
  /// then drains in-flight connections and closes/unlinks the socket.
  void wait();

  /// Initiates shutdown from outside the protocol (signal handlers,
  /// tests). Idempotent.
  void stop();

  const std::string &socketPath() const { return Opts.SocketPath; }
  CheckService &service() { return Service; }
  size_t connectionsServed() const { return Conns.load(); }

private:
  void acceptLoop();
  void serveConnection(int Fd);
  /// Decode + dispatch one request; \returns the response stream bytes.
  std::string handle(std::string_view RequestBytes);

  ServeOptions Opts;
  CheckService Service;
  support::sock::Listener Listener;
  std::optional<ThreadPool> Pool;
  std::thread Acceptor;
  std::atomic<bool> StopFlag{false};
  std::atomic<size_t> Conns{0};
  std::mutex StopMutex;
  std::condition_variable StopCv;
  bool Started = false;
};

/// One client request: connect, send, half-close, read to EOF, decode —
/// fail closed on any transport or framing damage. \p M selects the
/// method; \p R is consulted for Check/Ascribe (ignored for
/// Stats/Shutdown).
Response requestOnce(const std::string &SocketPath, Method M,
                     const CheckRequest &R = {});

// --- Wire codecs (exposed for the serving tests) ----------------------------

/// Composes the complete request stream for \p M / \p R.
std::string encodeRequest(Method M, const CheckRequest &R);

/// Decodes a request stream. \returns false (with \p Why) on any
/// framing or schema damage — the server rejects, never guesses.
bool decodeRequest(std::string_view Bytes, Method &M, CheckRequest &R,
                   std::string &Why);

/// Composes the complete response stream. \p Rejected is the
/// status-byte-1 "request never ran" path.
std::string encodeResponse(const CheckResult &Res, bool Rejected);

/// Decodes a response stream into \p Out. \returns false (with \p Why)
/// on framing or schema damage; \p Out is then unusable.
bool decodeResponse(std::string_view Bytes, Response &Out, std::string &Why);

} // namespace wiresort::driver

#endif // WIRESORT_DRIVER_SERVE_H
