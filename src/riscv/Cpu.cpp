//===- riscv/Cpu.cpp - Multithreaded RV32I CPU ----------------------------===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//

#include "riscv/Cpu.h"

#include "ir/Builder.h"
#include "riscv/Encoding.h"

#include <cassert>

using namespace wiresort;
using namespace wiresort::ir;
using namespace wiresort::riscv;

namespace {

uint16_t threadIdWidth(const CpuConfig &C) {
  uint16_t W = 1;
  while ((1u << W) < C.NumThreads)
    ++W;
  return W;
}

} // namespace

Module riscv::makeThreadSched(const CpuConfig &C) {
  uint16_t TW = threadIdWidth(C);
  Builder B("thread_sched");
  V Run = B.input("run_i", 1);
  V Thread = B.regLoop("thread", TW);
  V Active = B.regLoop("active", 1);
  V Last = B.eqConst(Thread, C.NumThreads - 1);
  V Next = B.mux(Last, B.lit(0, TW), B.inc(Thread));
  B.drive(Thread, B.mux(Run, Next, Thread));
  B.drive(Active, Run);
  B.output("thread_o", Thread);
  B.output("active_o", Active);
  return B.finish();
}

Module riscv::makePcUnit(const CpuConfig &C) {
  uint16_t TW = threadIdWidth(C);
  Builder B("pc_unit");
  V Thread = B.input("thread_i", TW);
  V NextPc = B.input("next_pc_i", 32);
  V Wen = B.input("wen_i", 1);
  // Per-thread program counters live in a small asynchronous-read array:
  // the active thread's pc is available combinationally (pc_o is
  // from-port {thread_i}).
  V Pc = B.memory("pcs", /*SyncRead=*/false, Thread, Thread, NextPc, Wen);
  B.output("pc_o", Pc);
  return B.finish();
}

Module riscv::makeFetch(const CpuConfig &C) {
  Builder B("fetch");
  V Pc = B.input("pc_i", 32);
  V WAddr = B.input("imem_waddr_i", C.IMemAddrWidth);
  V WData = B.input("imem_wdata_i", 32);
  V Wen = B.input("imem_wen_i", 1);
  V WordAddr = B.slice(Pc, static_cast<uint16_t>(C.IMemAddrWidth + 1), 2);
  V Inst = B.memory("imem", /*SyncRead=*/false, WordAddr, WAddr, WData,
                    Wen);
  B.output("inst_o", Inst);
  return B.finish();
}

Module riscv::makeDecode() {
  Builder B("decode");
  V Inst = B.input("inst_i", 32);

  V Opcode = B.slice(Inst, 6, 0);
  V Rd = B.slice(Inst, 11, 7);
  V Funct3 = B.slice(Inst, 14, 12);
  V Rs1 = B.slice(Inst, 19, 15);
  V Rs2 = B.slice(Inst, 24, 20);
  V Funct7 = B.slice(Inst, 31, 25);

  auto isOpc = [&](uint32_t Opc) { return B.eqConst(Opcode, Opc); };
  V IsLui = isOpc(OpcLui);
  V IsAuipc = isOpc(OpcAuipc);
  V IsJal = isOpc(OpcJal);
  V IsJalr = isOpc(OpcJalr);
  V IsBranch = isOpc(OpcBranch);
  V IsLoad = isOpc(OpcLoad);
  V IsStore = isOpc(OpcStore);
  V IsOpImm = isOpc(OpcOpImm);
  V IsOp = isOpc(OpcOp);

  V RegWrite = B.orv(
      B.orv(B.orv(IsLui, IsAuipc), B.orv(IsJal, IsJalr)),
      B.orv(IsLoad, B.orv(IsOpImm, IsOp)));

  // ALU operation: 0 add, 1 sub, 2 and, 3 or, 4 xor, 5 sll, 6 srl,
  // 7 sra, 8 slt, 9 sltu.
  V F7b5 = B.bit(Funct7, 5);
  V ArithOp =
      B.muxN(Funct3,
             {/*000*/ B.mux(B.andv(IsOp, F7b5), B.lit(1, 4), B.lit(0, 4)),
              /*001*/ B.lit(5, 4),
              /*010*/ B.lit(8, 4),
              /*011*/ B.lit(9, 4),
              /*100*/ B.lit(4, 4),
              /*101*/ B.mux(F7b5, B.lit(7, 4), B.lit(6, 4)),
              /*110*/ B.lit(3, 4),
              /*111*/ B.lit(2, 4)});
  V IsArith = B.orv(IsOp, IsOpImm);
  V AluOp = B.mux(IsArith, ArithOp, B.lit(0, 4)); // Others add.

  // Operand selects: a_sel 0 rs1, 1 pc, 2 zero; b from imm unless OP.
  V ASel = B.mux(B.orv(IsAuipc, IsJal), B.lit(1, 2),
                 B.mux(IsLui, B.lit(2, 2), B.lit(0, 2)));
  V BImm = B.notv(B.orv(IsOp, IsBranch));

  // Writeback select: 0 alu, 1 load, 2 pc+4.
  V WbSel = B.mux(IsLoad, B.lit(1, 2),
                  B.mux(B.orv(IsJal, IsJalr), B.lit(2, 2), B.lit(0, 2)));

  B.output("opcode_o", Opcode);
  B.output("rd_o", Rd);
  B.output("rs1_o", Rs1);
  B.output("rs2_o", Rs2);
  B.output("funct3_o", Funct3);
  B.output("funct7_o", Funct7);
  B.output("reg_write_o", RegWrite);
  B.output("mem_read_o", IsLoad);
  B.output("mem_write_o", IsStore);
  B.output("is_branch_o", IsBranch);
  B.output("is_jal_o", IsJal);
  B.output("is_jalr_o", IsJalr);
  B.output("a_sel_o", ASel);
  B.output("b_imm_o", BImm);
  B.output("wb_sel_o", WbSel);
  B.output("alu_op_o", AluOp);
  return B.finish();
}

Module riscv::makeImmGen() {
  Builder B("imm_gen");
  V Inst = B.input("inst_i", 32);
  V Opcode = B.slice(Inst, 6, 0);
  V Sign = B.bit(Inst, 31);

  V ImmI = B.sext(B.slice(Inst, 31, 20), 32);
  V ImmS = B.sext(B.concat({B.slice(Inst, 31, 25), B.slice(Inst, 11, 7)}),
                  32);
  V ImmB = B.sext(B.concat({Sign, B.bit(Inst, 7), B.slice(Inst, 30, 25),
                            B.slice(Inst, 11, 8), B.lit(0, 1)}),
                  32);
  V ImmU = B.concat({B.slice(Inst, 31, 12), B.lit(0, 12)});
  V ImmJ = B.sext(B.concat({Sign, B.slice(Inst, 19, 12), B.bit(Inst, 20),
                            B.slice(Inst, 30, 21), B.lit(0, 1)}),
                  32);

  auto isOpc = [&](uint32_t Opc) { return B.eqConst(Opcode, Opc); };
  V Imm = B.mux(
      B.orv(isOpc(OpcLui), isOpc(OpcAuipc)), ImmU,
      B.mux(isOpc(OpcJal), ImmJ,
            B.mux(isOpc(OpcBranch), ImmB,
                  B.mux(isOpc(OpcStore), ImmS, ImmI))));
  B.output("imm_o", Imm);
  return B.finish();
}

Module riscv::makeRegFile(const CpuConfig &C) {
  uint16_t TW = threadIdWidth(C);
  uint16_t AW = static_cast<uint16_t>(TW + 5);
  Builder B("regfile");
  V Thread = B.input("thread_i", TW);
  V Rs1 = B.input("rs1_i", 5);
  V Rs2 = B.input("rs2_i", 5);
  V Rd = B.input("rd_i", 5);
  V WData = B.input("wdata_i", 32);
  V Wen = B.input("wen_i", 1);

  V A1 = B.concat({Thread, Rs1});
  V A2 = B.concat({Thread, Rs2});
  V AW3 = B.concat({Thread, Rd});
  V WenEff = B.andv(Wen, B.notv(B.eqConst(Rd, 0)));

  // Two mirrored banks give two asynchronous read ports.
  V R1 = B.memory("bank0", /*SyncRead=*/false, A1, AW3, WData, WenEff);
  V R2 = B.memory("bank1", /*SyncRead=*/false, A2, AW3, WData, WenEff);
  (void)AW;

  V Zero = B.lit(0, 32);
  B.output("rs1_data_o", B.mux(B.eqConst(Rs1, 0), Zero, R1));
  B.output("rs2_data_o", B.mux(B.eqConst(Rs2, 0), Zero, R2));
  return B.finish();
}

Module riscv::makeAlu() {
  Builder B("alu");
  V Rs1Data = B.input("rs1_data_i", 32);
  V Rs2Data = B.input("rs2_data_i", 32);
  V Imm = B.input("imm_i", 32);
  V Pc = B.input("pc_i", 32);
  V ASel = B.input("a_sel_i", 2);
  V BImm = B.input("b_imm_i", 1);
  V Op = B.input("op_i", 4);

  V A = B.muxN(ASel, {Rs1Data, Pc, B.lit(0, 32)});
  V Bop = B.mux(BImm, Imm, Rs2Data);
  V Shamt = B.slice(Bop, 4, 0);

  V Sum = B.add(A, Bop);
  V Diff = B.sub(A, Bop);
  V AndV = B.andv(A, Bop);
  V OrV = B.orv(A, Bop);
  V XorV = B.xorv(A, Bop);
  V Sll = B.shl(A, Shamt);
  V Srl = B.shr(A, Shamt, /*Arithmetic=*/false);
  V Sra = B.shr(A, Shamt, /*Arithmetic=*/true);
  V Slt = B.zext(B.slt(A, Bop), 32);
  V Sltu = B.zext(B.lt(A, Bop), 32);

  V Result = B.muxN(
      Op, {Sum, Diff, AndV, OrV, XorV, Sll, Srl, Sra, Slt, Sltu});
  B.output("result_o", Result);
  return B.finish();
}

Module riscv::makeBranchUnit() {
  Builder B("branch_unit");
  V Rs1Data = B.input("rs1_data_i", 32);
  V Rs2Data = B.input("rs2_data_i", 32);
  V Funct3 = B.input("funct3_i", 3);
  V IsBranch = B.input("is_branch_i", 1);
  V IsJal = B.input("is_jal_i", 1);
  V IsJalr = B.input("is_jalr_i", 1);
  V Pc = B.input("pc_i", 32);
  V Imm = B.input("imm_i", 32);

  V EqV = B.eq(Rs1Data, Rs2Data);
  V LtS = B.slt(Rs1Data, Rs2Data);
  V LtU = B.lt(Rs1Data, Rs2Data);
  V Cond = B.muxN(Funct3, {EqV, B.notv(EqV), B.lit(0, 1), B.lit(0, 1),
                           LtS, B.notv(LtS), LtU, B.notv(LtU)});
  V Taken = B.andv(IsBranch, Cond);

  V PcPlus4 = B.add(Pc, B.lit(4, 32));
  V PcRel = B.add(Pc, Imm);
  V JalrTarget = B.andv(B.add(Rs1Data, Imm),
                        B.notv(B.lit(1, 32))); // Clear bit 0.
  V NextPc = B.mux(IsJal, PcRel,
                   B.mux(IsJalr, JalrTarget,
                         B.mux(Taken, PcRel, PcPlus4)));
  B.output("next_pc_o", NextPc);
  B.output("pc_plus4_o", PcPlus4);
  B.output("taken_o", Taken);
  return B.finish();
}

Module riscv::makeLsu(const CpuConfig &C) {
  Builder B("lsu");
  V Addr = B.input("addr_i", 32);
  V WData = B.input("wdata_i", 32);
  V Funct3 = B.input("funct3_i", 3);
  V MemRead = B.input("mem_read_i", 1);
  V MemWrite = B.input("mem_write_i", 1);
  V En = B.input("en_i", 1);

  V WordAddr = B.slice(Addr, static_cast<uint16_t>(C.DMemAddrWidth + 1), 2);
  V ByteOff = B.slice(Addr, 1, 0);
  V BitShift = B.concat({ByteOff, B.lit(0, 3)}); // off * 8, 5 bits.

  // Sub-word stores are read-modify-write over the addressed word.
  V Size = B.slice(Funct3, 1, 0); // 0 byte, 1 half, 2 word.
  V ByteMask = B.muxN(Size, {B.lit(0xFF, 32), B.lit(0xFFFF, 32),
                             B.lit(0xFFFFFFFF, 32)});
  V Mask = B.shl(ByteMask, BitShift);
  V ShiftedData = B.shl(WData, BitShift);

  // One combinational-read memory serves the load and the read-modify-
  // write store. The store word depends on the currently read word, but
  // the write lands at the clock edge, so there is no combinational
  // cycle. The memory is created with the raw store data and its write
  // pin is re-pointed at the merged word below.
  V Wen = B.andv(MemWrite, En);
  V ReadWord =
      B.memory("dmem", /*SyncRead=*/false, WordAddr, WordAddr, WData, Wen);
  V StoreWord = B.orv(B.andv(ReadWord, B.notv(Mask)),
                      B.andv(ShiftedData, Mask));
  B.raw().Memories[0].WData = StoreWord.Id;

  // Load path: shift down, then size/sign adjust.
  V LoadShifted = B.shr(ReadWord, BitShift);
  V Byte = B.slice(LoadShifted, 7, 0);
  V Half = B.slice(LoadShifted, 15, 0);
  V SignExtend = B.notv(B.bit(Funct3, 2));
  V ByteExt = B.mux(SignExtend, B.sext(Byte, 32), B.zext(Byte, 32));
  V HalfExt = B.mux(SignExtend, B.sext(Half, 32), B.zext(Half, 32));
  V LoadData = B.muxN(Size, {ByteExt, HalfExt, LoadShifted});

  B.output("load_data_o", B.mux(MemRead, LoadData, B.lit(0, 32)));
  return B.finish();
}

Module riscv::makeWriteback() {
  Builder B("writeback");
  V AluResult = B.input("alu_result_i", 32);
  V LoadData = B.input("load_data_i", 32);
  V PcPlus4 = B.input("pc_plus4_i", 32);
  V WbSel = B.input("wb_sel_i", 2);
  V RegWrite = B.input("reg_write_i", 1);
  V En = B.input("en_i", 1);

  B.output("wdata_o", B.muxN(WbSel, {AluResult, LoadData, PcPlus4}));
  B.output("wen_o", B.andv(RegWrite, En));
  return B.finish();
}

Module riscv::makeCsrUnit(const CpuConfig &C) {
  uint16_t TW = threadIdWidth(C);
  Builder B("csr_unit");
  V Thread = B.input("thread_i", TW);
  V Retire = B.input("retire_i", 1);

  V Cycle = B.regLoop("mcycle", 32);
  B.drive(Cycle, B.inc(Cycle));

  // Per-thread retired-instruction counters.
  V Count = B.memory("instret", /*SyncRead=*/false, Thread, Thread,
                     B.lit(0, 32), Retire);
  V Next = B.inc(Count);
  B.raw().Memories[0].WData = Next.Id;

  B.output("cycle_o", Cycle);
  B.output("instret_o", Count);
  return B.finish();
}

Cpu riscv::buildCpu(Design &D, const CpuConfig &C) {
  std::vector<ModuleId> Mods;
  Mods.push_back(D.addModule(makeThreadSched(C)));
  Mods.push_back(D.addModule(makePcUnit(C)));
  Mods.push_back(D.addModule(makeFetch(C)));
  Mods.push_back(D.addModule(makeDecode()));
  Mods.push_back(D.addModule(makeImmGen()));
  Mods.push_back(D.addModule(makeRegFile(C)));
  Mods.push_back(D.addModule(makeAlu()));
  Mods.push_back(D.addModule(makeBranchUnit()));
  Mods.push_back(D.addModule(makeLsu(C)));
  Mods.push_back(D.addModule(makeWriteback()));
  Mods.push_back(D.addModule(makeCsrUnit(C)));

  Circuit Circ(D, "rv32i_mt");
  enum { Sched, PcU, Fetch, Dec, Imm, Rf, Alu, Br, Lsu, Wb, Csr };
  std::vector<InstId> I;
  const char *Names[] = {"sched", "pc_unit", "fetch",  "decode",
                         "imm_gen", "regfile", "alu",   "branch",
                         "lsu",    "writeback", "csr"};
  for (size_t K = 0; K != Mods.size(); ++K)
    I.push_back(Circ.addInstance(Mods[K], Names[K]));

  // Thread selection fans out to every per-thread structure.
  Circ.connect(I[Sched], "thread_o", I[PcU], "thread_i");
  Circ.connect(I[Sched], "thread_o", I[Rf], "thread_i");
  Circ.connect(I[Sched], "thread_o", I[Csr], "thread_i");
  Circ.connect(I[Sched], "active_o", I[PcU], "wen_i");
  Circ.connect(I[Sched], "active_o", I[Lsu], "en_i");
  Circ.connect(I[Sched], "active_o", I[Wb], "en_i");
  Circ.connect(I[Sched], "active_o", I[Csr], "retire_i");

  // Fetch.
  Circ.connect(I[PcU], "pc_o", I[Fetch], "pc_i");
  Circ.connect(I[PcU], "pc_o", I[Br], "pc_i");
  Circ.connect(I[PcU], "pc_o", I[Alu], "pc_i");
  Circ.connect(I[Fetch], "inst_o", I[Dec], "inst_i");
  Circ.connect(I[Fetch], "inst_o", I[Imm], "inst_i");

  // Decode fan-out.
  Circ.connect(I[Dec], "rs1_o", I[Rf], "rs1_i");
  Circ.connect(I[Dec], "rs2_o", I[Rf], "rs2_i");
  Circ.connect(I[Dec], "rd_o", I[Rf], "rd_i");
  Circ.connect(I[Dec], "a_sel_o", I[Alu], "a_sel_i");
  Circ.connect(I[Dec], "b_imm_o", I[Alu], "b_imm_i");
  Circ.connect(I[Dec], "alu_op_o", I[Alu], "op_i");
  Circ.connect(I[Dec], "funct3_o", I[Br], "funct3_i");
  Circ.connect(I[Dec], "is_branch_o", I[Br], "is_branch_i");
  Circ.connect(I[Dec], "is_jal_o", I[Br], "is_jal_i");
  Circ.connect(I[Dec], "is_jalr_o", I[Br], "is_jalr_i");
  Circ.connect(I[Dec], "mem_read_o", I[Lsu], "mem_read_i");
  Circ.connect(I[Dec], "mem_write_o", I[Lsu], "mem_write_i");
  Circ.connect(I[Dec], "reg_write_o", I[Wb], "reg_write_i");
  Circ.connect(I[Dec], "wb_sel_o", I[Wb], "wb_sel_i");

  // Immediate.
  Circ.connect(I[Imm], "imm_o", I[Alu], "imm_i");
  Circ.connect(I[Imm], "imm_o", I[Br], "imm_i");

  // Register data.
  Circ.connect(I[Rf], "rs1_data_o", I[Alu], "rs1_data_i");
  Circ.connect(I[Rf], "rs1_data_o", I[Br], "rs1_data_i");
  Circ.connect(I[Rf], "rs2_data_o", I[Alu], "rs2_data_i");
  Circ.connect(I[Rf], "rs2_data_o", I[Br], "rs2_data_i");
  // LSU funct3 is shared with the branch unit's.
  Circ.connect(I[Dec], "funct3_o", I[Lsu], "funct3_i");

  // Execute and memory.
  Circ.connect(I[Alu], "result_o", I[Lsu], "addr_i");
  Circ.connect(I[Alu], "result_o", I[Wb], "alu_result_i");
  Circ.connect(I[Rf], "rs2_data_o", I[Lsu], "wdata_i");
  Circ.connect(I[Lsu], "load_data_o", I[Wb], "load_data_i");
  Circ.connect(I[Br], "pc_plus4_o", I[Wb], "pc_plus4_i");

  // Writeback and next pc.
  Circ.connect(I[Wb], "wdata_o", I[Rf], "wdata_i");
  Circ.connect(I[Wb], "wen_o", I[Rf], "wen_i");
  Circ.connect(I[Br], "next_pc_o", I[PcU], "next_pc_i");

  Cpu Result(D, std::move(Circ));
  Result.Modules = std::move(Mods);
  Result.Instances = std::move(I);
  Result.Config = C;
  return Result;
}

ModuleId riscv::sealCpu(Cpu &C) { return C.Circ.seal(); }
