//===- riscv/Cpu.h - Multithreaded RV32I CPU --------------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 5.3 case study: a multithreaded single-cycle RISC-V CPU
/// (RV32I base integer instruction set) built out of 11 modules and
/// composed as a Circuit, so the wire-sort pipeline — per-module
/// inference followed by whole-circuit well-connectedness checking — runs
/// on a complete processor. Fine-grained multithreading rotates among
/// NumThreads hardware threads, one instruction per cycle.
///
/// The 11 modules: thread_sched, pc_unit, fetch, decode, imm_gen,
/// regfile, alu, branch_unit, lsu, writeback, csr_unit.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_RISCV_CPU_H
#define WIRESORT_RISCV_CPU_H

#include "ir/Circuit.h"
#include "ir/Design.h"

#include <cstdint>
#include <string>
#include <vector>

namespace wiresort::riscv {

/// CPU configuration.
struct CpuConfig {
  /// Hardware thread count (the paper's case study uses five).
  uint16_t NumThreads = 5;
  /// log2 words of instruction memory.
  uint16_t IMemAddrWidth = 8;
  /// log2 words of data memory.
  uint16_t DMemAddrWidth = 8;
};

/// The built CPU: the definitions, the circuit, and the instance ids of
/// interest for wiring tests and benches.
struct Cpu {
  ir::Design *D = nullptr;
  ir::Circuit Circ;
  /// Module ids in build order (11 entries).
  std::vector<ir::ModuleId> Modules;
  /// Instance ids keyed like Modules.
  std::vector<ir::InstId> Instances;
  CpuConfig Config;

  Cpu(ir::Design &D, ir::Circuit Circ) : D(&D), Circ(std::move(Circ)) {}
};

// Individual module builders (exposed for per-module tests/benches).
ir::Module makeThreadSched(const CpuConfig &C);
ir::Module makePcUnit(const CpuConfig &C);
ir::Module makeFetch(const CpuConfig &C);
ir::Module makeDecode();
ir::Module makeImmGen();
ir::Module makeRegFile(const CpuConfig &C);
ir::Module makeAlu();
ir::Module makeBranchUnit();
ir::Module makeLsu(const CpuConfig &C);
ir::Module makeWriteback();
ir::Module makeCsrUnit(const CpuConfig &C);

/// Builds all 11 modules into \p D and wires the full CPU circuit.
/// External ports (left open in the circuit): instruction-memory load
/// interface (imem_waddr/imem_wdata/imem_wen on fetch), a run enable,
/// and observation outputs (retired counter, current pc, debug result).
Cpu buildCpu(ir::Design &D, const CpuConfig &C = {});

/// Seals the CPU circuit into a module and returns its id (for lowering,
/// simulation, and gate counting).
ir::ModuleId sealCpu(Cpu &C);

} // namespace wiresort::riscv

#endif // WIRESORT_RISCV_CPU_H
