//===- riscv/Encoding.h - RV32I instruction encoders ------------*- C++ -*-===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encoders for the RV32I base integer instruction set, used by the test
/// programs that validate the Section 5.3 CPU case study. Field layouts
/// follow the RISC-V unprivileged ISA specification.
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_RISCV_ENCODING_H
#define WIRESORT_RISCV_ENCODING_H

#include <cstdint>

namespace wiresort::riscv {

// Opcode constants.
inline constexpr uint32_t OpcLui = 0b0110111;
inline constexpr uint32_t OpcAuipc = 0b0010111;
inline constexpr uint32_t OpcJal = 0b1101111;
inline constexpr uint32_t OpcJalr = 0b1100111;
inline constexpr uint32_t OpcBranch = 0b1100011;
inline constexpr uint32_t OpcLoad = 0b0000011;
inline constexpr uint32_t OpcStore = 0b0100011;
inline constexpr uint32_t OpcOpImm = 0b0010011;
inline constexpr uint32_t OpcOp = 0b0110011;
inline constexpr uint32_t OpcMiscMem = 0b0001111;
inline constexpr uint32_t OpcSystem = 0b1110011;

// --- Format encoders --------------------------------------------------------

inline uint32_t encR(uint32_t Funct7, uint32_t Rs2, uint32_t Rs1,
                     uint32_t Funct3, uint32_t Rd, uint32_t Opc) {
  return (Funct7 << 25) | (Rs2 << 20) | (Rs1 << 15) | (Funct3 << 12) |
         (Rd << 7) | Opc;
}

inline uint32_t encI(int32_t Imm, uint32_t Rs1, uint32_t Funct3,
                     uint32_t Rd, uint32_t Opc) {
  return (static_cast<uint32_t>(Imm & 0xFFF) << 20) | (Rs1 << 15) |
         (Funct3 << 12) | (Rd << 7) | Opc;
}

inline uint32_t encS(int32_t Imm, uint32_t Rs2, uint32_t Rs1,
                     uint32_t Funct3, uint32_t Opc) {
  uint32_t U = static_cast<uint32_t>(Imm & 0xFFF);
  return ((U >> 5) << 25) | (Rs2 << 20) | (Rs1 << 15) | (Funct3 << 12) |
         ((U & 0x1F) << 7) | Opc;
}

inline uint32_t encB(int32_t Imm, uint32_t Rs2, uint32_t Rs1,
                     uint32_t Funct3) {
  uint32_t U = static_cast<uint32_t>(Imm);
  return (((U >> 12) & 1) << 31) | (((U >> 5) & 0x3F) << 25) |
         (Rs2 << 20) | (Rs1 << 15) | (Funct3 << 12) |
         (((U >> 1) & 0xF) << 8) | (((U >> 11) & 1) << 7) | OpcBranch;
}

inline uint32_t encU(int32_t Imm, uint32_t Rd, uint32_t Opc) {
  return (static_cast<uint32_t>(Imm) & 0xFFFFF000u) | (Rd << 7) | Opc;
}

inline uint32_t encJ(int32_t Imm, uint32_t Rd) {
  uint32_t U = static_cast<uint32_t>(Imm);
  return (((U >> 20) & 1) << 31) | (((U >> 1) & 0x3FF) << 21) |
         (((U >> 11) & 1) << 20) | (((U >> 12) & 0xFF) << 12) | (Rd << 7) |
         OpcJal;
}

// --- Mnemonic helpers --------------------------------------------------------

inline uint32_t addi(uint32_t Rd, uint32_t Rs1, int32_t Imm) {
  return encI(Imm, Rs1, 0b000, Rd, OpcOpImm);
}
inline uint32_t slti(uint32_t Rd, uint32_t Rs1, int32_t Imm) {
  return encI(Imm, Rs1, 0b010, Rd, OpcOpImm);
}
inline uint32_t sltiu(uint32_t Rd, uint32_t Rs1, int32_t Imm) {
  return encI(Imm, Rs1, 0b011, Rd, OpcOpImm);
}
inline uint32_t xori(uint32_t Rd, uint32_t Rs1, int32_t Imm) {
  return encI(Imm, Rs1, 0b100, Rd, OpcOpImm);
}
inline uint32_t ori(uint32_t Rd, uint32_t Rs1, int32_t Imm) {
  return encI(Imm, Rs1, 0b110, Rd, OpcOpImm);
}
inline uint32_t andi(uint32_t Rd, uint32_t Rs1, int32_t Imm) {
  return encI(Imm, Rs1, 0b111, Rd, OpcOpImm);
}
inline uint32_t slli(uint32_t Rd, uint32_t Rs1, uint32_t Shamt) {
  return encI(static_cast<int32_t>(Shamt & 31), Rs1, 0b001, Rd, OpcOpImm);
}
inline uint32_t srli(uint32_t Rd, uint32_t Rs1, uint32_t Shamt) {
  return encI(static_cast<int32_t>(Shamt & 31), Rs1, 0b101, Rd, OpcOpImm);
}
inline uint32_t srai(uint32_t Rd, uint32_t Rs1, uint32_t Shamt) {
  return encI(static_cast<int32_t>(0x400 | (Shamt & 31)), Rs1, 0b101, Rd,
              OpcOpImm);
}

inline uint32_t add(uint32_t Rd, uint32_t Rs1, uint32_t Rs2) {
  return encR(0, Rs2, Rs1, 0b000, Rd, OpcOp);
}
inline uint32_t sub(uint32_t Rd, uint32_t Rs1, uint32_t Rs2) {
  return encR(0b0100000, Rs2, Rs1, 0b000, Rd, OpcOp);
}
inline uint32_t sll(uint32_t Rd, uint32_t Rs1, uint32_t Rs2) {
  return encR(0, Rs2, Rs1, 0b001, Rd, OpcOp);
}
inline uint32_t slt(uint32_t Rd, uint32_t Rs1, uint32_t Rs2) {
  return encR(0, Rs2, Rs1, 0b010, Rd, OpcOp);
}
inline uint32_t sltu(uint32_t Rd, uint32_t Rs1, uint32_t Rs2) {
  return encR(0, Rs2, Rs1, 0b011, Rd, OpcOp);
}
inline uint32_t xor_(uint32_t Rd, uint32_t Rs1, uint32_t Rs2) {
  return encR(0, Rs2, Rs1, 0b100, Rd, OpcOp);
}
inline uint32_t srl(uint32_t Rd, uint32_t Rs1, uint32_t Rs2) {
  return encR(0, Rs2, Rs1, 0b101, Rd, OpcOp);
}
inline uint32_t sra(uint32_t Rd, uint32_t Rs1, uint32_t Rs2) {
  return encR(0b0100000, Rs2, Rs1, 0b101, Rd, OpcOp);
}
inline uint32_t or_(uint32_t Rd, uint32_t Rs1, uint32_t Rs2) {
  return encR(0, Rs2, Rs1, 0b110, Rd, OpcOp);
}
inline uint32_t and_(uint32_t Rd, uint32_t Rs1, uint32_t Rs2) {
  return encR(0, Rs2, Rs1, 0b111, Rd, OpcOp);
}

inline uint32_t lb(uint32_t Rd, uint32_t Rs1, int32_t Imm) {
  return encI(Imm, Rs1, 0b000, Rd, OpcLoad);
}
inline uint32_t lh(uint32_t Rd, uint32_t Rs1, int32_t Imm) {
  return encI(Imm, Rs1, 0b001, Rd, OpcLoad);
}
inline uint32_t lw(uint32_t Rd, uint32_t Rs1, int32_t Imm) {
  return encI(Imm, Rs1, 0b010, Rd, OpcLoad);
}
inline uint32_t lbu(uint32_t Rd, uint32_t Rs1, int32_t Imm) {
  return encI(Imm, Rs1, 0b100, Rd, OpcLoad);
}
inline uint32_t lhu(uint32_t Rd, uint32_t Rs1, int32_t Imm) {
  return encI(Imm, Rs1, 0b101, Rd, OpcLoad);
}
inline uint32_t sb(uint32_t Rs2, uint32_t Rs1, int32_t Imm) {
  return encS(Imm, Rs2, Rs1, 0b000, OpcStore);
}
inline uint32_t sh(uint32_t Rs2, uint32_t Rs1, int32_t Imm) {
  return encS(Imm, Rs2, Rs1, 0b001, OpcStore);
}
inline uint32_t sw(uint32_t Rs2, uint32_t Rs1, int32_t Imm) {
  return encS(Imm, Rs2, Rs1, 0b010, OpcStore);
}

inline uint32_t beq(uint32_t Rs1, uint32_t Rs2, int32_t Off) {
  return encB(Off, Rs2, Rs1, 0b000);
}
inline uint32_t bne(uint32_t Rs1, uint32_t Rs2, int32_t Off) {
  return encB(Off, Rs2, Rs1, 0b001);
}
inline uint32_t blt(uint32_t Rs1, uint32_t Rs2, int32_t Off) {
  return encB(Off, Rs2, Rs1, 0b100);
}
inline uint32_t bge(uint32_t Rs1, uint32_t Rs2, int32_t Off) {
  return encB(Off, Rs2, Rs1, 0b101);
}
inline uint32_t bltu(uint32_t Rs1, uint32_t Rs2, int32_t Off) {
  return encB(Off, Rs2, Rs1, 0b110);
}
inline uint32_t bgeu(uint32_t Rs1, uint32_t Rs2, int32_t Off) {
  return encB(Off, Rs2, Rs1, 0b111);
}

inline uint32_t lui(uint32_t Rd, int32_t Imm) {
  return encU(Imm, Rd, OpcLui);
}
inline uint32_t auipc(uint32_t Rd, int32_t Imm) {
  return encU(Imm, Rd, OpcAuipc);
}
inline uint32_t jal(uint32_t Rd, int32_t Off) { return encJ(Off, Rd); }
inline uint32_t jalr(uint32_t Rd, uint32_t Rs1, int32_t Imm) {
  return encI(Imm, Rs1, 0b000, Rd, OpcJalr);
}
inline uint32_t nop() { return addi(0, 0, 0); }

} // namespace wiresort::riscv

#endif // WIRESORT_RISCV_ENCODING_H
