//===- bench/bench_engine.cpp - SummaryEngine speedup curves --------------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// Measures the two claims the SummaryEngine exists for (docs/ENGINE.md):
//
//  * Parallel cold runs — Stage-1 inference is embarrassingly modular
//    (Section 5.5), so a design of independent modules should scale with
//    the worker count. Measured serial (1 thread) vs parallel (4
//    threads) on a cold cache. NOTE: real speedup is bounded by the
//    machine's core count, which is printed alongside.
//  * Warm cache re-checks — the content-addressed cache turns a
//    re-analysis of an unchanged design into a hash pass plus lookups.
//    Measured as a warm re-run against the same engine, plus an
//    incremental variant where one module body is edited (only the
//    changed module and its transitive instantiators re-infer).
//
// Families: the gen::Catalog corpus bit-blasted into independent
// gate-level modules (the scalability family: wide, flat DAG) and the
// OPDB stand-ins (deep, shared hierarchy).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "analysis/SummaryEngine.h"
#include "analysis/SummaryIO.h"
#include "gen/Catalog.h"
#include "gen/Fifo.h"
#include "gen/Opdb.h"
#include "support/FailPoint.h"
#include "support/Table.h"
#include "synth/Lower.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <thread>
#include <vector>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::bench;
using namespace wiresort::gen;
using namespace wiresort::ir;

namespace {

constexpr unsigned ParallelThreads = 4;

struct FamilyResult {
  size_t Modules = 0;
  double SerialCold = 0.0;
  double ParallelCold = 0.0;
  double Warm = 0.0;
  size_t WarmHits = 0;
};

/// Runs the serial-cold / parallel-cold / warm protocol over \p D.
/// \returns false when serial and parallel disagree (a bug the
/// determinism suite would catch; the bench refuses to report numbers
/// for a broken engine).
bool runProtocol(const Design &D, FamilyResult &R) {
  R.Modules = D.numModules();

  CheckOptions SerialOpts;
  SerialOpts.Threads = 1;
  SummaryEngine Serial(SerialOpts);
  std::map<ModuleId, ModuleSummary> SerialOut;
  Timer T;
  if (Serial.analyze(D, SerialOut).hasError())
    return false;
  R.SerialCold = T.seconds();

  CheckOptions ParallelOpts;
  ParallelOpts.Threads = ParallelThreads;
  SummaryEngine Parallel(ParallelOpts);
  std::map<ModuleId, ModuleSummary> ParallelOut;
  T.restart();
  if (Parallel.analyze(D, ParallelOut).hasError())
    return false;
  R.ParallelCold = T.seconds();

  for (const auto &[Id, S] : SerialOut)
    if (!structurallyEqual(S, ParallelOut.at(Id)))
      return false;

  // Warm re-check against the parallel engine's now-populated cache.
  std::map<ModuleId, ModuleSummary> WarmOut;
  T.restart();
  if (Parallel.analyze(D, WarmOut).hasError())
    return false;
  R.Warm = T.seconds();
  R.WarmHits = Parallel.stats().CacheHits;
  return true;
}

void addRow(Table &T, const char *Name, const FamilyResult &R) {
  T.addRow({Name, std::to_string(R.Modules),
            Table::secondsStr(R.SerialCold, 3),
            Table::secondsStr(R.ParallelCold, 3),
            Table::speedupStr(R.SerialCold / R.ParallelCold),
            Table::secondsStr(R.Warm, 3),
            Table::speedupStr(R.SerialCold / R.Warm),
            std::to_string(R.WarmHits)});
}

} // namespace

int main(int ArgC, char **ArgV) {
  bool Quick = quickMode(ArgC, ArgV);
  const std::string JsonOut = jsonPath(ArgC, ArgV);

  // With --json the measured sections run inside a metrics-only
  // trace::Session (span collection off, so bookkeeping cannot perturb
  // the timings) and the registry counters land in the report.
  std::optional<trace::Session> Metrics;
  if (!JsonOut.empty())
    Metrics.emplace(trace::SessionOptions{"", /*CollectSpans=*/false});
  std::vector<std::pair<std::string, FamilyResult>> Families;

  std::printf("=== SummaryEngine: serial vs parallel, cold vs warm ===\n"
              "(parallel = %u engine threads on %u hardware thread(s); "
              "parallel speedup is bounded by the hardware)\n\n",
              ParallelThreads, std::thread::hardware_concurrency());

  Table T({"Family", "Modules", "Serial cold (s)", "Parallel cold (s)",
           "Par. speedup", "Warm (s)", "Warm speedup", "Warm hits"});

  // --- Scalability family: independent bit-blasted catalog modules ------
  {
    Design D;
    size_t Count = 0;
    for (const CatalogEntry &E : catalog()) {
      if (Quick && ++Count > 12)
        break;
      Design Tmp;
      ModuleId Id = Tmp.addModule(E.Build());
      D.addModule(synth::lower(Tmp, Id));
    }
    FamilyResult R;
    if (!runProtocol(D, R)) {
      std::printf("catalog family: serial/parallel divergence!\n");
      return 1;
    }
    addRow(T, "catalog (gate-level, independent)", R);
    Families.emplace_back("catalog (gate-level, independent)", R);
  }

  // --- Scalability family: large bit-blasted FIFOs ----------------------
  // Inference is O(|inputs| * |edges|) (Section 5.5.1) while the cache's
  // structural hash is a single O(|edges|) pass, so on wide-port designs
  // this family shows the warm-check advantage at full strength.
  {
    Design D;
    for (uint16_t DepthLog2 : {6, 8, 10, 12}) {
      if (Quick && DepthLog2 > 8)
        break;
      Design Tmp;
      ModuleId Id = Tmp.addModule(
          gen::makeFifo({64, DepthLog2, /*Forwarding=*/true}));
      D.addModule(synth::lower(Tmp, Id));
    }
    FamilyResult R;
    if (!runProtocol(D, R)) {
      std::printf("fifo family: serial/parallel divergence!\n");
      return 1;
    }
    addRow(T, "fifo (gate-level, large)", R);
    Families.emplace_back("fifo (gate-level, large)", R);
  }

  // --- OPDB family: deep shared hierarchy -------------------------------
  {
    OpdbOptions Options;
    Options.ShrinkAddrBits = Quick ? 6 : 4;
    Design D;
    buildOpdb(D, Options);
    FamilyResult R;
    if (!runProtocol(D, R)) {
      std::printf("opdb family: serial/parallel divergence!\n");
      return 1;
    }
    addRow(T, "opdb (hierarchical, shared defs)", R);
    Families.emplace_back("opdb (hierarchical, shared defs)", R);
  }

  T.print();

  // --- Incremental edit: one body changes, the rest stays cached --------
  std::printf("\n=== Warm cache under a single-module edit ===\n\n");
  {
    OpdbOptions Options;
    Options.ShrinkAddrBits = Quick ? 6 : 4;
    Design D;
    buildOpdb(D, Options);

    SummaryEngine Engine;
    std::map<ModuleId, ModuleSummary> Out;
    if (Engine.analyze(D, Out).hasError()) {
      std::printf("opdb: unexpected loop\n");
      return 1;
    }

    // "Edit" one mid-hierarchy module: append a harmless inverter pair.
    ModuleId Edited = D.numModules() / 2;
    Module &M = D.module(Edited);
    WireId A = M.addWire("bench_edit_a", WireKind::Basic, 1);
    WireId B = M.addWire("bench_edit_b", WireKind::Basic, 1);
    WireId C0 = M.addWire("bench_edit_c", WireKind::Const, 1, 0);
    M.addNet(Op::Not, {C0}, A);
    M.addNet(Op::Not, {A}, B);

    Timer T2;
    if (Engine.analyze(D, Out).hasError()) {
      std::printf("opdb after edit: unexpected loop\n");
      return 1;
    }
    const EngineStats &S = Engine.stats();
    std::printf("edited module '%s': re-analysis %.3f s — %zu re-inferred "
                "(changed + transitive instantiators), %zu of %zu served "
                "from cache\n",
                D.module(Edited).Name.c_str(), T2.seconds(), S.Inferred,
                S.CacheHits, S.Modules);
  }

  // --- Cold cache-load: legacy text sidecar vs wire format --------------
  // Every warm start begins by deserializing the summary store
  // (docs/FORMATS.md). The wire format exists to make that cheap:
  // measured here as best-of-N decodes of the same summaries in both
  // encodings, each rep gated on reconstructing structurallyEqual
  // summaries (a faster-but-wrong load may not report a number), plus
  // the full loadCache path on a v3 cache file.
  double TextLoadS = 0.0, BinaryLoadS = 0.0, CacheLoadS = 0.0;
  uint64_t TextBytes = 0, BinaryBytes = 0;
  size_t LoadModules = 0;
  {
    Design D;
    for (uint16_t DepthLog2 : {6, 8, 10, 12}) {
      if (Quick && DepthLog2 > 8)
        break;
      Design Tmp;
      ModuleId Id = Tmp.addModule(
          gen::makeFifo({64, DepthLog2, /*Forwarding=*/true}));
      D.addModule(synth::lower(Tmp, Id));
    }
    CheckOptions O;
    O.Threads = 1;
    SummaryEngine Engine(O);
    std::map<ModuleId, ModuleSummary> Out;
    if (Engine.analyze(D, Out).hasError()) {
      std::printf("cold-load family: unexpected loop\n");
      return 1;
    }
    LoadModules = Out.size();
    const std::string Text = writeSummaries(D, Out);
    const std::string Binary = writeSummariesBinary(D, Out);
    TextBytes = Text.size();
    BinaryBytes = Binary.size();

    auto sameAsOut = [&](const std::map<ModuleId, ModuleSummary> &Got) {
      if (Got.size() != Out.size())
        return false;
      for (const auto &[Id, S] : Out) {
        auto It = Got.find(Id);
        if (It == Got.end() || !structurallyEqual(S, It->second))
          return false;
      }
      return true;
    };
    const int LoadReps = Quick ? 3 : 5;
    bool LoadOk = true;
    auto bestLoad = [&](auto &&Run) {
      double Best = -1.0;
      for (int I = 0; I != LoadReps; ++I) {
        double S = Run();
        if (S < 0.0) {
          LoadOk = false;
          return -1.0;
        }
        Best = Best < 0.0 ? S : std::min(Best, S);
      }
      return Best;
    };
    TextLoadS = bestLoad([&] {
      Timer T2;
      auto Parsed = parseSummaries(Text, D);
      double S = T2.seconds();
      return Parsed.hasValue() && sameAsOut(*Parsed) ? S : -1.0;
    });
    BinaryLoadS = bestLoad([&] {
      Timer T2;
      auto Decoded = readSummariesBinary(Binary, D);
      double S = T2.seconds();
      return Decoded.hasValue() && sameAsOut(*Decoded) ? S : -1.0;
    });
    const std::string CachePath = "bench_engine_coldload.wscache";
    if (!Engine.saveCache(CachePath, D, Out).empty()) {
      std::printf("cold-load family: saveCache failed\n");
      return 1;
    }
    uint64_t CacheBytes = 0;
    if (std::FILE *F = std::fopen(CachePath.c_str(), "rb")) {
      std::fseek(F, 0, SEEK_END);
      CacheBytes = static_cast<uint64_t>(std::ftell(F));
      std::fclose(F);
    }
    CacheLoadS = bestLoad([&] {
      SummaryEngine Fresh(O);
      Timer T2;
      auto Loaded = Fresh.loadCache(CachePath, D);
      double S = T2.seconds();
      return Loaded.hasValue() && Loaded->Loaded == Out.size() &&
                     Loaded->Warnings.empty()
                 ? S
                 : -1.0;
    });
    std::remove(CachePath.c_str());
    if (!LoadOk) {
      std::printf("cold-load family: decode diverged from reference!\n");
      return 1;
    }
    std::printf("\n=== Cold summary load: text sidecar vs wire format "
                "(best of %d, results-identical gated) ===\n\n",
                LoadReps);
    Table LoadT({"Encoding", "Bytes", "Load (ms)", "Speedup vs text"});
    LoadT.addRow({"text sidecar", Table::withCommas(TextBytes),
                  Table::secondsStr(TextLoadS * 1e3, 3),
                  Table::speedupStr(1.0)});
    LoadT.addRow({"wire binary", Table::withCommas(BinaryBytes),
                  Table::secondsStr(BinaryLoadS * 1e3, 3),
                  Table::speedupStr(TextLoadS / BinaryLoadS)});
    LoadT.addRow({"loadCache (v3 file)", Table::withCommas(CacheBytes),
                  Table::secondsStr(CacheLoadS * 1e3, 3),
                  Table::speedupStr(TextLoadS / CacheLoadS)});
    LoadT.print();
  }

  // Close the --json session before the overhead smoke opens its own
  // (at most one trace::Session may be live). finish() leaves the
  // registry values in place for the report below.
  if (Metrics)
    (void)Metrics->finish();

  // --- Tracing overhead smoke -------------------------------------------
  // docs/OBSERVABILITY.md budgets the *disabled* instrumentation (one
  // relaxed load + branch per point) at < 2% on cold engine runs. The
  // smoke measures best-of-N cold serial runs with tracing off and with
  // a metrics-only session on; the delta bounds the enabled-counter
  // cost, and the disabled number is the one the budget governs.
  double SmokeOff = 0.0, SmokeOn = 0.0;
  double FpArmed = 0.0;
  {
    Design D;
    size_t Count = 0;
    for (const CatalogEntry &E : catalog()) {
      if (++Count > 12)
        break;
      Design Tmp;
      ModuleId Id = Tmp.addModule(E.Build());
      D.addModule(synth::lower(Tmp, Id));
    }
    auto coldRun = [&D] {
      CheckOptions O;
      O.Threads = 1;
      O.UseCache = false;
      SummaryEngine E(O);
      std::map<ModuleId, ModuleSummary> Out;
      Timer T2;
      if (E.analyze(D, Out).hasError())
        return -1.0;
      return T2.seconds();
    };
    const int Reps = Quick ? 3 : 5;
    auto bestOf = [&](auto &&Run) {
      double Best = Run(); // Warm-up doubles as the first sample.
      for (int I = 1; I < Reps; ++I)
        Best = std::min(Best, Run());
      return Best;
    };
    SmokeOff = bestOf(coldRun);
    {
      trace::Session S(trace::SessionOptions{"", /*CollectSpans=*/false});
      SmokeOn = bestOf(coldRun);
    }
    std::printf("\n=== Tracing overhead smoke (cold serial, best of %d) "
                "===\n\ntracing disabled: %.3f s; metrics-only session: "
                "%.3f s; delta %+.1f%%\n",
                Reps, SmokeOff, SmokeOn,
                SmokeOff > 0.0 ? (SmokeOn - SmokeOff) / SmokeOff * 100.0
                               : 0.0);

    // --- Failpoint overhead smoke ---------------------------------------
    // docs/ROBUSTNESS.md budgets the disarmed WS_FAILPOINT sites on the
    // engine's hot path (engine.cancel, engine.module.throw) at < 2% —
    // one relaxed load + branch each, same budget as a trace counter.
    // Arming an *irrelevant* site exercises the worst production case:
    // the registry is armed somewhere, yet the sites the engine actually
    // hits must stay on their disarmed fast path.
    support::failpoint::disarmAll();
    if (!support::failpoint::configure("bench.irrelevant=always")
             .empty()) {
      std::fprintf(stderr, "failpoint smoke: configure failed\n");
      return 1;
    }
    FpArmed = bestOf(coldRun);
    support::failpoint::disarmAll();
    std::printf("\n=== Failpoint overhead smoke (cold serial, best of %d) "
                "===\n\nall sites disarmed: %.3f s; irrelevant site "
                "armed: %.3f s; delta %+.1f%%\n",
                Reps, SmokeOff, FpArmed,
                SmokeOff > 0.0 ? (FpArmed - SmokeOff) / SmokeOff * 100.0
                               : 0.0);
  }

  if (!JsonOut.empty()) {
    JsonReport Report;
    for (const auto &[Name, R] : Families)
      Report.beginRecord()
          .field("family", Name)
          .field("modules", static_cast<uint64_t>(R.Modules))
          .field("serial_cold_s", R.SerialCold)
          .field("parallel_cold_s", R.ParallelCold)
          .field("warm_s", R.Warm)
          .field("warm_hits", static_cast<uint64_t>(R.WarmHits));
    Report.beginRecord()
        .field("load", "summary_sidecar")
        .field("modules", static_cast<uint64_t>(LoadModules))
        .field("text_bytes", TextBytes)
        .field("binary_bytes", BinaryBytes)
        .field("text_load_s", TextLoadS)
        .field("binary_load_s", BinaryLoadS)
        .field("cache_load_s", CacheLoadS);
    Report.beginRecord()
        .field("smoke", "trace_overhead")
        .field("disabled_s", SmokeOff)
        .field("metrics_only_s", SmokeOn);
    Report.beginRecord()
        .field("smoke", "failpoint_overhead")
        .field("disarmed_s", SmokeOff)
        .field("irrelevant_armed_s", FpArmed);
    Report.appendTraceRegistry();
    Report.writeTo(JsonOut);
  }
  return 0;
}
