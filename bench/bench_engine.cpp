//===- bench/bench_engine.cpp - SummaryEngine speedup curves --------------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// Measures the two claims the SummaryEngine exists for (docs/ENGINE.md):
//
//  * Parallel cold runs — Stage-1 inference is embarrassingly modular
//    (Section 5.5), so a design of independent modules should scale with
//    the worker count. Measured serial (1 thread) vs parallel (4
//    threads) on a cold cache. NOTE: real speedup is bounded by the
//    machine's core count, which is printed alongside.
//  * Warm cache re-checks — the content-addressed cache turns a
//    re-analysis of an unchanged design into a hash pass plus lookups.
//    Measured as a warm re-run against the same engine, plus an
//    incremental variant where one module body is edited (only the
//    changed module and its transitive instantiators re-infer).
//
// Families: the gen::Catalog corpus bit-blasted into independent
// gate-level modules (the scalability family: wide, flat DAG) and the
// OPDB stand-ins (deep, shared hierarchy).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "analysis/SummaryEngine.h"
#include "analysis/SummaryIO.h"
#include "driver/Check.h"
#include "gen/Catalog.h"
#include "gen/Fifo.h"
#include "gen/Opdb.h"
#include "support/FailPoint.h"
#include "support/Table.h"
#include "synth/Lower.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <thread>
#include <vector>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::bench;
using namespace wiresort::gen;
using namespace wiresort::ir;

namespace {

constexpr unsigned ParallelThreads = 4;

struct FamilyResult {
  size_t Modules = 0;
  double SerialCold = 0.0;
  double ParallelCold = 0.0;
  double Warm = 0.0;
  size_t WarmHits = 0;
};

/// Runs the serial-cold / parallel-cold / warm protocol over \p D.
/// \returns false when serial and parallel disagree (a bug the
/// determinism suite would catch; the bench refuses to report numbers
/// for a broken engine).
bool runProtocol(const Design &D, FamilyResult &R) {
  R.Modules = D.numModules();

  CheckOptions SerialOpts;
  SerialOpts.Threads = 1;
  SummaryEngine Serial(SerialOpts);
  std::map<ModuleId, ModuleSummary> SerialOut;
  Timer T;
  if (Serial.analyze(D, SerialOut).hasError())
    return false;
  R.SerialCold = T.seconds();

  CheckOptions ParallelOpts;
  ParallelOpts.Threads = ParallelThreads;
  SummaryEngine Parallel(ParallelOpts);
  std::map<ModuleId, ModuleSummary> ParallelOut;
  T.restart();
  if (Parallel.analyze(D, ParallelOut).hasError())
    return false;
  R.ParallelCold = T.seconds();

  for (const auto &[Id, S] : SerialOut)
    if (!structurallyEqual(S, ParallelOut.at(Id)))
      return false;

  // Warm re-check against the parallel engine's now-populated cache.
  std::map<ModuleId, ModuleSummary> WarmOut;
  T.restart();
  if (Parallel.analyze(D, WarmOut).hasError())
    return false;
  R.Warm = T.seconds();
  R.WarmHits = Parallel.stats().CacheHits;
  return true;
}

void addRow(Table &T, const char *Name, const FamilyResult &R) {
  T.addRow({Name, std::to_string(R.Modules),
            Table::secondsStr(R.SerialCold, 3),
            Table::secondsStr(R.ParallelCold, 3),
            Table::speedupStr(R.SerialCold / R.ParallelCold),
            Table::secondsStr(R.Warm, 3),
            Table::speedupStr(R.SerialCold / R.Warm),
            std::to_string(R.WarmHits)});
}

} // namespace

int main(int ArgC, char **ArgV) {
  bool Quick = quickMode(ArgC, ArgV);
  const std::string JsonOut = jsonPath(ArgC, ArgV);

  // With --json the measured sections run inside a metrics-only
  // trace::Session (span collection off, so bookkeeping cannot perturb
  // the timings) and the registry counters land in the report.
  std::optional<trace::Session> Metrics;
  if (!JsonOut.empty())
    Metrics.emplace(trace::SessionOptions{"", /*CollectSpans=*/false});
  std::vector<std::pair<std::string, FamilyResult>> Families;

  std::printf("=== SummaryEngine: serial vs parallel, cold vs warm ===\n"
              "(parallel = %u engine threads on %u hardware thread(s); "
              "parallel speedup is bounded by the hardware)\n\n",
              ParallelThreads, std::thread::hardware_concurrency());

  Table T({"Family", "Modules", "Serial cold (s)", "Parallel cold (s)",
           "Par. speedup", "Warm (s)", "Warm speedup", "Warm hits"});

  // --- Scalability family: independent bit-blasted catalog modules ------
  {
    Design D;
    size_t Count = 0;
    for (const CatalogEntry &E : catalog()) {
      if (Quick && ++Count > 12)
        break;
      Design Tmp;
      ModuleId Id = Tmp.addModule(E.Build());
      D.addModule(synth::lower(Tmp, Id));
    }
    FamilyResult R;
    if (!runProtocol(D, R)) {
      std::printf("catalog family: serial/parallel divergence!\n");
      return 1;
    }
    addRow(T, "catalog (gate-level, independent)", R);
    Families.emplace_back("catalog (gate-level, independent)", R);
  }

  // --- Scalability family: large bit-blasted FIFOs ----------------------
  // Inference is O(|inputs| * |edges|) (Section 5.5.1) while the cache's
  // structural hash is a single O(|edges|) pass, so on wide-port designs
  // this family shows the warm-check advantage at full strength.
  {
    Design D;
    for (uint16_t DepthLog2 : {6, 8, 10, 12}) {
      if (Quick && DepthLog2 > 8)
        break;
      Design Tmp;
      ModuleId Id = Tmp.addModule(
          gen::makeFifo({64, DepthLog2, /*Forwarding=*/true}));
      D.addModule(synth::lower(Tmp, Id));
    }
    FamilyResult R;
    if (!runProtocol(D, R)) {
      std::printf("fifo family: serial/parallel divergence!\n");
      return 1;
    }
    addRow(T, "fifo (gate-level, large)", R);
    Families.emplace_back("fifo (gate-level, large)", R);
  }

  // --- OPDB family: deep shared hierarchy -------------------------------
  {
    OpdbOptions Options;
    Options.ShrinkAddrBits = Quick ? 6 : 4;
    Design D;
    buildOpdb(D, Options);
    FamilyResult R;
    if (!runProtocol(D, R)) {
      std::printf("opdb family: serial/parallel divergence!\n");
      return 1;
    }
    addRow(T, "opdb (hierarchical, shared defs)", R);
    Families.emplace_back("opdb (hierarchical, shared defs)", R);
  }

  T.print();

  // --- Incremental edit: one body changes, the rest stays cached --------
  std::printf("\n=== Warm cache under a single-module edit ===\n\n");
  {
    OpdbOptions Options;
    Options.ShrinkAddrBits = Quick ? 6 : 4;
    Design D;
    buildOpdb(D, Options);

    SummaryEngine Engine;
    std::map<ModuleId, ModuleSummary> Out;
    if (Engine.analyze(D, Out).hasError()) {
      std::printf("opdb: unexpected loop\n");
      return 1;
    }

    // "Edit" one mid-hierarchy module: append a harmless inverter pair.
    ModuleId Edited = D.numModules() / 2;
    Module &M = D.module(Edited);
    WireId A = M.addWire("bench_edit_a", WireKind::Basic, 1);
    WireId B = M.addWire("bench_edit_b", WireKind::Basic, 1);
    WireId C0 = M.addWire("bench_edit_c", WireKind::Const, 1, 0);
    M.addNet(Op::Not, {C0}, A);
    M.addNet(Op::Not, {A}, B);

    Timer T2;
    if (Engine.analyze(D, Out).hasError()) {
      std::printf("opdb after edit: unexpected loop\n");
      return 1;
    }
    const EngineStats &S = Engine.stats();
    std::printf("edited module '%s': re-analysis %.3f s — %zu re-inferred "
                "(changed + transitive instantiators), %zu of %zu served "
                "from cache\n",
                D.module(Edited).Name.c_str(), T2.seconds(), S.Inferred,
                S.CacheHits, S.Modules);
  }

  // --- Resident service vs cold process (docs/SERVING.md) ---------------
  // The serving layer's reason to exist, measured: N check requests of
  // the same mega-scale design through one resident driver::CheckService
  // (request 1 infers, the rest re-parse + cache-hit) versus N
  // independent cold runs. Cold latency is measured as best-of-3 one-off
  // runs and multiplied by N — cold processes are independent, so the
  // total is exact modulo noise, and the full-preset table stays
  // runnable. When $WIRESORT_CHECK names the CLI binary (tools/
  // run_bench.sh exports it), the cold side is a real process spawn —
  // the honest daemon-vs-CLI comparison; otherwise an in-library
  // one-shot runCheck stands in (no spawn cost: a *lower* bound on the
  // cold side, so the reported speedups only understate).
  struct ServingRow {
    unsigned Repeats = 0;
    double ColdTotal = 0.0;
    double ResidentTotal = 0.0;
  };
  std::vector<ServingRow> ServingRows;
  double EditCold = -1.0, EditResident = -1.0;
  size_t ServeModules = 0;
  bool ColdViaProcess = false;
  {
    // The serving preset is generated directly as hierarchical bit-level
    // BLIF (writeBlif cannot serialize the multi-bit mega designs, and
    // the cold side needs a file a separate process can parse): one top
    // fanning out to NLeaves structurally distinct leaf chains of
    // increasing length — ~100k gates on the full preset. Distinct
    // bodies mean distinct cache keys, so "N modules" really is N
    // independent summaries for the residency accounting below.
    const unsigned NLeaves = Quick ? 40 : 400;
    const unsigned BaseChain = Quick ? 8 : 50;
    auto serveBlif = [&](bool Edited) {
      std::string S;
      S += ".model serve_top\n.inputs a\n.outputs";
      for (unsigned I = 0; I != NLeaves; ++I)
        S += " y" + std::to_string(I);
      S += "\n";
      for (unsigned I = 0; I != NLeaves; ++I)
        S += ".subckt serve_leaf" + std::to_string(I) + " a=a y=y" +
             std::to_string(I) + "\n";
      S += ".end\n";
      for (unsigned I = 0; I != NLeaves; ++I) {
        S += ".model serve_leaf" + std::to_string(I) +
             "\n.inputs a\n.outputs y\n";
        unsigned Len = BaseChain + I;
        if (Edited && I == NLeaves / 2)
          Len += 2; // the "edit": two extra stages in one leaf body
        std::string Prev = "a";
        for (unsigned J = 0; J != Len; ++J) {
          std::string Next = J + 1 == Len ? "y" : "t" + std::to_string(J);
          S += ".names " + Prev + " " + Next +
               ((I + J) % 2 ? "\n0 1\n" : "\n1 1\n");
          Prev = Next;
        }
        S += ".end\n";
      }
      return S;
    };
    ServeModules = NLeaves + 1;
    std::string Text = serveBlif(false);
    const std::string BlifPath = "bench_engine_served.blif";
    {
      std::ofstream Out(BlifPath, std::ios::binary);
      Out << Text;
      if (!Out.good()) {
        std::printf("serving family: cannot write %s\n", BlifPath.c_str());
        return 1;
      }
    }
    const char *CheckBin = std::getenv("WIRESORT_CHECK");
    ColdViaProcess = CheckBin != nullptr && *CheckBin != '\0';
    auto coldOnce = [&]() -> double {
      Timer T2;
      if (ColdViaProcess) {
        std::string Cmd = std::string(CheckBin) + " " + BlifPath +
                          " --quiet >/dev/null 2>&1";
        if (std::system(Cmd.c_str()) != 0)
          return -1.0;
      } else {
        driver::CheckRequest OneShot;
        OneShot.DesignPath = BlifPath;
        OneShot.Quiet = true;
        if (driver::runCheck(OneShot).ExitCode != 0)
          return -1.0;
      }
      return T2.seconds();
    };
    double ColdPerRun = -1.0;
    for (int I = 0; I != 3; ++I) {
      double S = coldOnce();
      if (S < 0.0) {
        std::printf("serving family: cold run failed\n");
        return 1;
      }
      ColdPerRun = ColdPerRun < 0.0 ? S : std::min(ColdPerRun, S);
    }

    driver::CheckService Resident;
    driver::CheckRequest R;
    R.DesignText = Text;
    R.HasInlineText = true;
    R.DesignName = BlifPath;
    R.Quiet = true;
    for (unsigned Repeats : {1u, 8u, 64u}) {
      ServingRow Row;
      Row.Repeats = Repeats;
      // Fresh residency per row so row N's warm-up isn't hidden by row
      // N-1: request 1 infers cold, requests 2..N hit the cache.
      driver::CheckService PerRow(Resident.engine().config());
      Timer T2;
      for (unsigned I = 0; I != Repeats; ++I)
        if (PerRow.run(R).ExitCode != 0) {
          std::printf("serving family: resident run failed\n");
          return 1;
        }
      Row.ResidentTotal = T2.seconds();
      Row.ColdTotal = ColdPerRun * Repeats;
      ServingRows.push_back(Row);
    }

    // Warm re-check of an edited design: one module body changes, the
    // resident request re-infers only the dirtied chain while a cold
    // process starts from nothing. This is the docs/SERVING.md
    // residency claim and run_bench's serving gate (>= 5x on the full
    // preset).
    if (Resident.run(R).ExitCode != 0) {
      std::printf("serving family: priming run failed\n");
      return 1;
    }
    std::string EditedText = serveBlif(true);
    {
      std::ofstream Out(BlifPath, std::ios::binary);
      Out << EditedText;
    }
    driver::CheckRequest EditedReq = R;
    EditedReq.DesignText = EditedText;
    Timer T2;
    driver::CheckResult WarmEdit = Resident.run(EditedReq);
    EditResident = T2.seconds();
    if (WarmEdit.ExitCode != 0) {
      std::printf("serving family: edited resident run failed\n");
      return 1;
    }
    EditCold = coldOnce();
    if (EditCold < 0.0) {
      std::printf("serving family: edited cold run failed\n");
      return 1;
    }
    std::remove(BlifPath.c_str());

    std::printf("\n=== Resident service vs cold %s (serving preset '%s', "
                "%zu modules) ===\n\n",
                ColdViaProcess ? "wiresort-check process"
                               : "in-library one-shot",
                Quick ? "ci" : "100k", ServeModules);
    Table ServeT({"Repeat requests", "Cold total (s)", "Resident total (s)",
                  "Speedup"});
    for (const ServingRow &Row : ServingRows)
      ServeT.addRow({std::to_string(Row.Repeats),
                     Table::secondsStr(Row.ColdTotal, 3),
                     Table::secondsStr(Row.ResidentTotal, 3),
                     Table::speedupStr(Row.ColdTotal / Row.ResidentTotal)});
    ServeT.print();
    std::printf("\nwarm re-check of one edited module: resident %.3f s vs "
                "cold %.3f s (%.1fx; %zu of %zu re-inferred)\n",
                EditResident, EditCold, EditCold / EditResident,
                WarmEdit.Stats.Inferred, WarmEdit.Stats.Modules);
    if (!Quick && EditCold / EditResident < 5.0) {
      std::printf("serving gate FAILED: warm edited re-check must be >= 5x "
                  "faster than a cold process on the 100k preset\n");
      return 1;
    }
  }

  // --- Cold cache-load: legacy text sidecar vs wire format --------------
  // Every warm start begins by deserializing the summary store
  // (docs/FORMATS.md). The wire format exists to make that cheap:
  // measured here as best-of-N decodes of the same summaries in both
  // encodings, each rep gated on reconstructing structurallyEqual
  // summaries (a faster-but-wrong load may not report a number), plus
  // the full loadCache path on a v3 cache file.
  double TextLoadS = 0.0, BinaryLoadS = 0.0, CacheLoadS = 0.0;
  uint64_t TextBytes = 0, BinaryBytes = 0;
  size_t LoadModules = 0;
  {
    Design D;
    for (uint16_t DepthLog2 : {6, 8, 10, 12}) {
      if (Quick && DepthLog2 > 8)
        break;
      Design Tmp;
      ModuleId Id = Tmp.addModule(
          gen::makeFifo({64, DepthLog2, /*Forwarding=*/true}));
      D.addModule(synth::lower(Tmp, Id));
    }
    CheckOptions O;
    O.Threads = 1;
    SummaryEngine Engine(O);
    std::map<ModuleId, ModuleSummary> Out;
    if (Engine.analyze(D, Out).hasError()) {
      std::printf("cold-load family: unexpected loop\n");
      return 1;
    }
    LoadModules = Out.size();
    const std::string Text = writeSummaries(D, Out);
    const std::string Binary = writeSummariesBinary(D, Out);
    TextBytes = Text.size();
    BinaryBytes = Binary.size();

    auto sameAsOut = [&](const std::map<ModuleId, ModuleSummary> &Got) {
      if (Got.size() != Out.size())
        return false;
      for (const auto &[Id, S] : Out) {
        auto It = Got.find(Id);
        if (It == Got.end() || !structurallyEqual(S, It->second))
          return false;
      }
      return true;
    };
    const int LoadReps = Quick ? 3 : 5;
    bool LoadOk = true;
    auto bestLoad = [&](auto &&Run) {
      double Best = -1.0;
      for (int I = 0; I != LoadReps; ++I) {
        double S = Run();
        if (S < 0.0) {
          LoadOk = false;
          return -1.0;
        }
        Best = Best < 0.0 ? S : std::min(Best, S);
      }
      return Best;
    };
    TextLoadS = bestLoad([&] {
      Timer T2;
      auto Parsed = parseSummaries(Text, D);
      double S = T2.seconds();
      return Parsed.hasValue() && sameAsOut(*Parsed) ? S : -1.0;
    });
    BinaryLoadS = bestLoad([&] {
      Timer T2;
      auto Decoded = readSummariesBinary(Binary, D);
      double S = T2.seconds();
      return Decoded.hasValue() && sameAsOut(*Decoded) ? S : -1.0;
    });
    const std::string CachePath = "bench_engine_coldload.wscache";
    if (!Engine.saveCache(CachePath, D, Out).empty()) {
      std::printf("cold-load family: saveCache failed\n");
      return 1;
    }
    uint64_t CacheBytes = 0;
    if (std::FILE *F = std::fopen(CachePath.c_str(), "rb")) {
      std::fseek(F, 0, SEEK_END);
      CacheBytes = static_cast<uint64_t>(std::ftell(F));
      std::fclose(F);
    }
    CacheLoadS = bestLoad([&] {
      SummaryEngine Fresh(O);
      Timer T2;
      auto Loaded = Fresh.loadCache(CachePath, D);
      double S = T2.seconds();
      return Loaded.hasValue() && Loaded->Loaded == Out.size() &&
                     Loaded->Warnings.empty()
                 ? S
                 : -1.0;
    });
    std::remove(CachePath.c_str());
    if (!LoadOk) {
      std::printf("cold-load family: decode diverged from reference!\n");
      return 1;
    }
    std::printf("\n=== Cold summary load: text sidecar vs wire format "
                "(best of %d, results-identical gated) ===\n\n",
                LoadReps);
    Table LoadT({"Encoding", "Bytes", "Load (ms)", "Speedup vs text"});
    LoadT.addRow({"text sidecar", Table::withCommas(TextBytes),
                  Table::secondsStr(TextLoadS * 1e3, 3),
                  Table::speedupStr(1.0)});
    LoadT.addRow({"wire binary", Table::withCommas(BinaryBytes),
                  Table::secondsStr(BinaryLoadS * 1e3, 3),
                  Table::speedupStr(TextLoadS / BinaryLoadS)});
    LoadT.addRow({"loadCache (v3 file)", Table::withCommas(CacheBytes),
                  Table::secondsStr(CacheLoadS * 1e3, 3),
                  Table::speedupStr(TextLoadS / CacheLoadS)});
    LoadT.print();
  }

  // Close the --json session before the overhead smoke opens its own
  // (at most one trace::Session may be live). finish() leaves the
  // registry values in place for the report below.
  if (Metrics)
    (void)Metrics->finish();

  // --- Tracing overhead smoke -------------------------------------------
  // docs/OBSERVABILITY.md budgets the *disabled* instrumentation (one
  // relaxed load + branch per point) at < 2% on cold engine runs. The
  // smoke measures best-of-N cold serial runs with tracing off and with
  // a metrics-only session on; the delta bounds the enabled-counter
  // cost, and the disabled number is the one the budget governs.
  double SmokeOff = 0.0, SmokeOn = 0.0;
  double FpArmed = 0.0;
  {
    Design D;
    size_t Count = 0;
    for (const CatalogEntry &E : catalog()) {
      if (++Count > 12)
        break;
      Design Tmp;
      ModuleId Id = Tmp.addModule(E.Build());
      D.addModule(synth::lower(Tmp, Id));
    }
    auto coldRun = [&D] {
      CheckOptions O;
      O.Threads = 1;
      O.UseCache = false;
      SummaryEngine E(O);
      std::map<ModuleId, ModuleSummary> Out;
      Timer T2;
      if (E.analyze(D, Out).hasError())
        return -1.0;
      return T2.seconds();
    };
    const int Reps = Quick ? 3 : 5;
    auto bestOf = [&](auto &&Run) {
      double Best = Run(); // Warm-up doubles as the first sample.
      for (int I = 1; I < Reps; ++I)
        Best = std::min(Best, Run());
      return Best;
    };
    SmokeOff = bestOf(coldRun);
    {
      trace::Session S(trace::SessionOptions{"", /*CollectSpans=*/false});
      SmokeOn = bestOf(coldRun);
    }
    std::printf("\n=== Tracing overhead smoke (cold serial, best of %d) "
                "===\n\ntracing disabled: %.3f s; metrics-only session: "
                "%.3f s; delta %+.1f%%\n",
                Reps, SmokeOff, SmokeOn,
                SmokeOff > 0.0 ? (SmokeOn - SmokeOff) / SmokeOff * 100.0
                               : 0.0);

    // --- Failpoint overhead smoke ---------------------------------------
    // docs/ROBUSTNESS.md budgets the disarmed WS_FAILPOINT sites on the
    // engine's hot path (engine.cancel, engine.module.throw) at < 2% —
    // one relaxed load + branch each, same budget as a trace counter.
    // Arming an *irrelevant* site exercises the worst production case:
    // the registry is armed somewhere, yet the sites the engine actually
    // hits must stay on their disarmed fast path.
    support::failpoint::disarmAll();
    if (!support::failpoint::configure("bench.irrelevant=always")
             .empty()) {
      std::fprintf(stderr, "failpoint smoke: configure failed\n");
      return 1;
    }
    FpArmed = bestOf(coldRun);
    support::failpoint::disarmAll();
    std::printf("\n=== Failpoint overhead smoke (cold serial, best of %d) "
                "===\n\nall sites disarmed: %.3f s; irrelevant site "
                "armed: %.3f s; delta %+.1f%%\n",
                Reps, SmokeOff, FpArmed,
                SmokeOff > 0.0 ? (FpArmed - SmokeOff) / SmokeOff * 100.0
                               : 0.0);
  }

  if (!JsonOut.empty()) {
    JsonReport Report;
    for (const auto &[Name, R] : Families)
      Report.beginRecord()
          .field("family", Name)
          .field("modules", static_cast<uint64_t>(R.Modules))
          .field("serial_cold_s", R.SerialCold)
          .field("parallel_cold_s", R.ParallelCold)
          .field("warm_s", R.Warm)
          .field("warm_hits", static_cast<uint64_t>(R.WarmHits));
    Report.beginRecord()
        .field("load", "summary_sidecar")
        .field("modules", static_cast<uint64_t>(LoadModules))
        .field("text_bytes", TextBytes)
        .field("binary_bytes", BinaryBytes)
        .field("text_load_s", TextLoadS)
        .field("binary_load_s", BinaryLoadS)
        .field("cache_load_s", CacheLoadS);
    for (const ServingRow &Row : ServingRows)
      Report.beginRecord()
          .field("serving", "resident_vs_cold")
          .field("modules", static_cast<uint64_t>(ServeModules))
          .field("cold_is_process", static_cast<uint64_t>(ColdViaProcess))
          .field("repeats", static_cast<uint64_t>(Row.Repeats))
          .field("cold_total_s", Row.ColdTotal)
          .field("resident_total_s", Row.ResidentTotal);
    Report.beginRecord()
        .field("serving", "warm_edit_recheck")
        .field("modules", static_cast<uint64_t>(ServeModules))
        .field("cold_is_process", static_cast<uint64_t>(ColdViaProcess))
        .field("cold_s", EditCold)
        .field("resident_s", EditResident);
    Report.beginRecord()
        .field("smoke", "trace_overhead")
        .field("disabled_s", SmokeOff)
        .field("metrics_only_s", SmokeOn);
    Report.beginRecord()
        .field("smoke", "failpoint_overhead")
        .field("disarmed_s", SmokeOff)
        .field("irrelevant_armed_s", FpArmed);
    Report.appendTraceRegistry();
    Report.writeTo(JsonOut);
  }
  return 0;
}
