//===- bench/bench_table3_loop_detection.cpp - Table 3 --------------------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// Regenerates Table 3: synthesis-time cycle detection versus wire sorts
// on large OPDB designs with injected multi-module loops.
//
//  * "Yosys" column — the synthesis-time experience: flatten the whole
//    composition to a primitive-gate netlist (duplicating every shared
//    definition per instance) and run standard cycle detection over it.
//  * "Ours" column — the wire-sort experience on the same hierarchical
//    design: lower each *unique* definition once (the hierarchical-BLIF
//    import of the paper's pipeline), infer its interface summary, and
//    check the composition on module interfaces only; the loop is
//    reported without ever flattening.
//
// Shapes to compare with the paper: wire sorts always win; the factor
// grows with design size and instance reuse (paper: 2.63x-33.93x).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "analysis/SortInference.h"
#include "analysis/SummaryEngine.h"
#include "gen/LoopInjector.h"
#include "gen/Opdb.h"
#include "support/Table.h"
#include "synth/CycleDetect.h"
#include "synth/Optimize.h"

#include <cstdio>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::bench;
using namespace wiresort::gen;
using namespace wiresort::ir;

namespace {

struct Target {
  const char *Name;
  ModuleId (*Build)(Design &, const OpdbOptions &);
};

} // namespace

int main(int ArgC, char **ArgV) {
  OpdbOptions Options;
  if (quickMode(ArgC, ArgV))
    Options.ShrinkAddrBits = 5;

  const Target Targets[] = {
      {"fpu", buildFpu},         {"sparc_ffu", buildSparcFfu},
      {"sparc_exu", buildSparcExu}, {"sparc_tlu", buildSparcTlu},
      {"l2", buildL2},           {"l15", buildL15},
  };

  std::printf("=== Table 3: cycle detection at synthesis vs wire sorts "
              "===\n\n");
  Table T({"Module", "Prim. gates (hier)", "Yosys (s)", "Ours (s)",
           "Speedup", "Sort infer (s)", "Submods", "Unique"});

  for (const Target &Tgt : Targets) {
    Design D;
    ModuleId Big = Tgt.Build(D, Options);
    // Inject the multi-module loop: the target design plus two small
    // companions wired in a combinational ring (Section 5.4).
    ModuleId CompanionA = buildIfuEslCounter(D);
    ModuleId CompanionB = buildIfuEslLfsr(D);
    Circuit Ring =
        buildLoopedRing(D, {Big, CompanionA, CompanionB},
                        std::string(Tgt.Name) + "_ring");
    ModuleId Top = Ring.seal();

    // --- Baseline: what synthesis actually does — flatten everything,
    // --- run the optimization pipeline (constant folding, dead-gate
    // --- removal; loop breaking OFF so the bug stays visible), then
    // --- netlist cycle detection.
    Timer YosysTimer;
    Module Flat = synth::lower(D, Top);
    synth::OptimizeOptions OptOptions;
    synth::optimize(Flat, OptOptions);
    synth::NetlistCycleResult Netlist = synth::detectCycles(Flat);
    double YosysSeconds = YosysTimer.seconds();
    if (!Netlist.HasLoop) {
      std::printf("%s: baseline missed the injected loop!\n", Tgt.Name);
      return 1;
    }

    // --- Ours: hierarchical gate-level import, per-unique-definition
    // --- summaries via the parallel SummaryEngine; the loop surfaces
    // --- during the top summary.
    Timer OursTimer;
    synth::HierLowered Hier = synth::lowerHierarchical(D, Top);
    double ImportSeconds = OursTimer.seconds();
    Timer InferTimer;
    SummaryEngine Engine; // Cold per target, default thread count.
    std::map<ModuleId, ModuleSummary> Summaries;
    auto Loop = Engine.analyze(Hier.Design, Summaries);
    double InferSeconds = InferTimer.seconds();
    double OursSeconds = OursTimer.seconds();
    if (!Loop.hasError()) {
      std::printf("%s: wire sorts missed the injected loop!\n", Tgt.Name);
      return 1;
    }
    (void)ImportSeconds;

    size_t HierGates = synth::hierarchicalGateCount(D, Top);
    T.addRow({Tgt.Name, Table::withCommas(HierGates),
              Table::secondsStr(YosysSeconds, 2),
              Table::secondsStr(OursSeconds, 2),
              Table::speedupStr(YosysSeconds / OursSeconds),
              Table::secondsStr(InferSeconds, 2),
              std::to_string(synth::totalInstanceCount(D, Top)),
              std::to_string(synth::uniqueModuleCount(D, Top))});
  }
  T.print();
  std::printf("\n(paper speedups: fpu 14.92x, sparc_ffu 11.30x, sparc_exu "
              "2.63x, sparc_tlu 18.64x, l2 33.93x, l15 30.92x)\n");
  return 0;
}
