//===- bench/bench_table1_basejump.cpp - Table 1 + Section 5.1 corpus -----===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// Regenerates Table 1 — the wire sorts, port sets, primitive-gate counts,
// and inference times of the FIFO, PISO, SIPO, and cache DMA — plus the
// Section 5.1 corpus-level aggregates (modules analyzed, average gates,
// average ports, average inference time). As in the paper, inference is
// timed over the synthesized (bit-blasted) form of each module.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "gen/CacheDma.h"
#include "gen/Catalog.h"
#include "gen/Fifo.h"
#include "gen/ShiftReg.h"
#include "support/Table.h"

#include <cstdio>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::bench;
using namespace wiresort::ir;

namespace {

void reportModule(const char *Label, Module M) {
  Design D;
  ModuleId Id = D.addModule(std::move(M));
  GateLevelRun Run = runGateLevel(D, Id);
  // Sorts and port sets are reported at RTL granularity (vector-level),
  // matching Table 1's presentation.
  std::map<ModuleId, ModuleSummary> Rtl;
  if (analysis::analyzeDesign(D, Rtl).hasError()) {
    std::printf("%s: combinational loop?!\n", Label);
    return;
  }
  const Module &Def = D.module(Id);
  const ModuleSummary &S = Rtl.at(Id);

  std::printf("%s  (prim. gates %s, inference %.3f s)\n", Label,
              Table::withCommas(Run.PrimGates).c_str(), Run.InferSeconds);
  Table T({"Dir", "Wire Name", "Sort", "Port Set"});
  for (WireId In : Def.Inputs)
    T.addRow({"in", Def.wire(In).Name, sortAbbrev(S.sortOf(In)),
              portSetString(Def, S.outputPortSet(In))});
  for (WireId Out : Def.Outputs)
    T.addRow({"out", Def.wire(Out).Name, sortAbbrev(S.sortOf(Out)),
              portSetString(Def, S.inputPortSet(Out))});
  T.print();
  std::printf("\n");
}

} // namespace

int main(int ArgC, char **ArgV) {
  bool Quick = quickMode(ArgC, ArgV);
  std::printf("=== Table 1: wire sorts of the BaseJump STL subset ===\n\n");

  reportModule("First-In First-Out Queue",
               gen::makeFifo({64, static_cast<uint16_t>(Quick ? 4 : 10),
                              /*Forwarding=*/false}));
  reportModule("Forwarding FIFO Queue (Figure 2 variant)",
               gen::makeFifo({64, static_cast<uint16_t>(Quick ? 4 : 10),
                              /*Forwarding=*/true}));
  reportModule("Parallel-In Serial-Out Shift Reg. (pre-fix)",
               gen::makePiso({8, 8, /*Fixed=*/false}));
  reportModule("Parallel-In Serial-Out Shift Reg. (post-fix)",
               gen::makePiso({8, 8, /*Fixed=*/true}));
  reportModule("Serial-In Parallel-Out SR", gen::makeSipo({8, 8}));
  reportModule("Cache DMA", gen::makeCacheDma({32, 16, 4, 3}));

  // --- Section 5.1 corpus sweep -------------------------------------------
  // The sweep runs through one shared SummaryEngine: the first pass is
  // cold (every module inferred), the second demonstrates the
  // content-addressed cache — unchanged modules cost a structural hash
  // plus a lookup, which is the engine's re-check story (docs/ENGINE.md).
  std::printf("=== Section 5.1 corpus sweep ===\n");
  const std::vector<gen::CatalogEntry> Corpus = gen::catalog();
  SummaryEngine Engine; // Default thread count, shared cache.
  Table T({"Corpus", "Modules", "Avg gates", "Max gates", "Avg ports",
           "Avg infer (ms)", "Cache hits"});
  for (const char *Pass : {"catalog cold", "catalog warm"}) {
    size_t Modules = 0;
    size_t TotalGates = 0, TotalPorts = 0;
    double TotalSeconds = 0.0;
    size_t MaxGates = 0, Hits = 0;
    for (const gen::CatalogEntry &E : Corpus) {
      Design D;
      ModuleId Id = D.addModule(E.Build());
      GateLevelRun Run = runGateLevel(D, Id, &Engine);
      Hits += Engine.stats().CacheHits;
      ++Modules;
      TotalGates += Run.PrimGates;
      TotalPorts += D.module(Id).numPorts();
      TotalSeconds += Run.InferSeconds;
      if (Run.PrimGates > MaxGates)
        MaxGates = Run.PrimGates;
    }
    T.addRow({Pass, std::to_string(Modules),
              Table::withCommas(TotalGates / Modules),
              Table::withCommas(MaxGates),
              std::to_string(TotalPorts / Modules),
              Table::secondsStr(1e3 * TotalSeconds / Modules, 3),
              std::to_string(Hits)});
  }
  T.print();
  std::printf("\n(paper: 533 instantiations of 144 unique BaseJump "
              "modules, avg 19,981 gates, avg 6 ports, avg 361 ms at "
              "gate level)\n");
  return 0;
}
