//===- bench/bench_table2_opdb.cpp - Table 2: OPDB modules ----------------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// Regenerates Table 2: for each of the 17 OPDB stand-ins, the
// primitive-gate count, the wire-sort inference time over the
// synthesized netlist, and the number of IO ports. The shape to compare
// against the paper: gate counts spanning ~200 to ~1.5M, inference time
// growing with gates (sub-linear in ports), the largest design well
// under a minute.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "gen/Opdb.h"
#include "support/Table.h"

#include <cstdio>

using namespace wiresort;
using namespace wiresort::bench;
using namespace wiresort::gen;
using namespace wiresort::ir;

int main(int ArgC, char **ArgV) {
  OpdbOptions Options;
  if (quickMode(ArgC, ArgV))
    Options.ShrinkAddrBits = 6;

  std::printf("=== Table 2: OPDB module size, inference time, ports ===\n"
              "(inference timed over the synthesized bit-level netlist, "
              "as the paper's BLIF import does)\n\n");

  Design D;
  std::vector<OpdbEntry> Entries = buildOpdb(D, Options);

  // All 17 entries run through one SummaryEngine; identical flattened
  // bodies (shared submodule shapes) are served from its
  // content-addressed cache, and a warm re-run of the whole table is
  // almost free — the engine's repeated-check story.
  analysis::SummaryEngine Engine;
  Table T({"Module", "Prim. Gates", "Time (s)", "Ports"});
  size_t TotalGates = 0;
  double TotalSeconds = 0.0;
  for (const OpdbEntry &E : Entries) {
    GateLevelRun Run = runGateLevel(D, E.Top, &Engine);
    T.addRow({E.Name, Table::withCommas(Run.PrimGates),
              Table::secondsStr(Run.InferSeconds),
              std::to_string(D.module(E.Top).numPorts())});
    TotalGates += Run.PrimGates;
    TotalSeconds += Run.InferSeconds;
  }
  T.print();
  std::printf("\naverage gates: %s  average time: %.3f s\n",
              Table::withCommas(TotalGates / Entries.size()).c_str(),
              TotalSeconds / Entries.size());

  double WarmSeconds = 0.0;
  for (const OpdbEntry &E : Entries)
    WarmSeconds += runGateLevel(D, E.Top, &Engine).InferSeconds;
  std::printf("warm re-run of all %zu entries: %.3f s (cache size %zu, "
              "%zux speedup)\n",
              Entries.size(), WarmSeconds, Engine.cache().size(),
              static_cast<size_t>(WarmSeconds > 0
                                      ? TotalSeconds / WarmSeconds
                                      : 0));
  std::printf("(paper: average 232,788 gates, min 170 / max 1,518,073; "
              "average 4.067 s, min 0.001 / max 30.176)\n");
  return 0;
}
