//===- bench/bench_kernel.cpp - Serial BFS vs bit-parallel Stage-1 --------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// Head-to-head of the two Stage-1 reachability implementations over the
// bit-blasted corpus (the paper's Tables 1-2 methodology: modules are
// lowered to primitive gates before inference, so port counts are wire
// bits, not RTL vectors). Each path runs cold — the timed region is the
// per-module graph analysis Stage-1 performs after the comb graph is
// built:
//
//  * serial — the seed implementation: Graph::findCycle for the
//    combinational-loop check plus one allocating BFS per input port
//    (CombGraph::reachableOutputPorts, kept as the differential oracle);
//  * kernel — one ForwardOnly CSR freeze (Kahn orders the graph and
//    settles the loop verdict; docs/KERNEL.md) shared by
//    CombGraph::findCombLoop and the bit-parallel closure
//    (CombGraph::allOutputPortSets, 64 input ports per machine word).
//
// Both paths must produce identical loop verdicts and port sets; the
// bench refuses to report numbers otherwise. Sub-millisecond modules are
// re-run enough times for the clock to resolve. `--json <path>` mirrors
// the rows into a machine-readable report (CI writes BENCH_kernel.json)
// so the perf trajectory of the kernel is diffable across commits.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "analysis/Reachability.h"
#include "gen/Catalog.h"
#include "gen/Fifo.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "synth/Lower.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::bench;
using namespace wiresort::gen;
using namespace wiresort::ir;

namespace {

struct KernelRun {
  size_t Gates = 0;
  size_t Inputs = 0;
  size_t Outputs = 0;
  double SerialSeconds = 0.0;
  double KernelSeconds = 0.0;
  bool Identical = false;
};

/// The serial Stage-1 analysis over an already-built comb graph: the
/// seed's loop check plus one BFS per input port.
std::map<WireId, std::vector<WireId>> serialStage1(const Module &Gates,
                                                   const CombGraph &CG,
                                                   bool &Loop) {
  Loop = CG.graph().findCycle().has_value();
  std::map<WireId, std::vector<WireId>> Sets;
  for (WireId In : Gates.Inputs)
    Sets[In] = CG.reachableOutputPorts(In);
  return Sets;
}

/// Times both cold Stage-1 paths over the gate-level form of \p M.
///
/// Every repetition rebuilds the comb graph outside the timed region so
/// the kernel path pays its freeze cold each time; repetitions are scaled
/// until the faster path accumulates enough time for the clock.
KernelRun runModule(const Module &M) {
  Design D;
  ModuleId Id = D.addModule(M);
  Module Gates = synth::lower(D, Id);

  KernelRun Run;
  for (const Net &N : Gates.Nets)
    Run.Gates += N.Operation != Op::Buf;
  Run.Inputs = Gates.Inputs.size();
  Run.Outputs = Gates.Outputs.size();

  const std::map<ModuleId, analysis::ModuleSummary> NoSubs;

  // Correctness gate first: identical port sets and loop verdicts.
  bool SerialLoop = false;
  std::map<WireId, std::vector<WireId>> Serial, Batched;
  {
    CombGraph CG = CombGraph::build(Gates, NoSubs);
    Serial = serialStage1(Gates, CG, SerialLoop);
  }
  {
    CombGraph CG = CombGraph::build(Gates, NoSubs);
    const bool KernelLoop = CG.findCombLoop().has_value();
    Batched = CG.allOutputPortSets();
    Run.Identical = Serial == Batched && SerialLoop == KernelLoop;
  }
  if (!Run.Identical)
    return Run;

  // Calibrate the repetition count on the kernel path (the faster one),
  // then time both paths over the same number of cold runs.
  int Reps = 1;
  {
    CombGraph CG = CombGraph::build(Gates, NoSubs);
    Timer T;
    (void)CG.findCombLoop();
    (void)CG.allOutputPortSets();
    const double Once = T.seconds();
    Reps = static_cast<int>(
        std::clamp(0.02 / std::max(Once, 1e-7), 1.0, 2000.0));
  }

  Timer T;
  for (int R = 0; R != Reps; ++R) {
    CombGraph CG = CombGraph::build(Gates, NoSubs);
    T.restart();
    bool Loop;
    (void)serialStage1(Gates, CG, Loop);
    Run.SerialSeconds += T.seconds();
  }
  for (int R = 0; R != Reps; ++R) {
    CombGraph CG = CombGraph::build(Gates, NoSubs);
    T.restart();
    (void)CG.findCombLoop();
    (void)CG.allOutputPortSets();
    Run.KernelSeconds += T.seconds();
  }
  Run.SerialSeconds /= Reps;
  Run.KernelSeconds /= Reps;
  return Run;
}

void addRow(Table &T, JsonReport &Json, const std::string &Name,
            const KernelRun &R) {
  T.addRow({Name, Table::withCommas(R.Gates),
            std::to_string(R.Inputs) + "/" + std::to_string(R.Outputs),
            Table::secondsStr(R.SerialSeconds, 6),
            Table::secondsStr(R.KernelSeconds, 6),
            Table::speedupStr(R.SerialSeconds / R.KernelSeconds)});
  Json.beginRecord()
      .field("module", Name)
      .field("prim_gates", static_cast<uint64_t>(R.Gates))
      .field("inputs", static_cast<uint64_t>(R.Inputs))
      .field("outputs", static_cast<uint64_t>(R.Outputs))
      .field("serial_stage1_seconds", R.SerialSeconds)
      .field("kernel_stage1_seconds", R.KernelSeconds)
      .field("speedup", R.SerialSeconds / R.KernelSeconds);
}

} // namespace

int main(int ArgC, char **ArgV) {
  const bool Quick = quickMode(ArgC, ArgV);
  const std::string JsonOut = jsonPath(ArgC, ArgV);

  std::printf("=== Stage-1 reachability: serial (findCycle + per-port BFS) "
              "vs bit-parallel CSR kernel ===\n"
              "(gate-level modules, cold per run; both paths verified "
              "identical before any row is reported)\n\n");

  Table T({"Module", "Prim gates", "In/Out ports", "Serial Stage-1 (s)",
           "Kernel Stage-1 (s)", "Speedup"});
  JsonReport Json;

  auto report = [&](const std::string &Name, const Module &M) {
    KernelRun R = runModule(M);
    if (!R.Identical) {
      std::printf("%s: serial and kernel Stage-1 diverge!\n", Name.c_str());
      return false;
    }
    addRow(T, Json, Name, R);
    return true;
  };

  size_t Count = 0;
  for (const CatalogEntry &E : catalog()) {
    if (Quick && ++Count > 8)
      break;
    if (!report(E.Name, E.Build()))
      return 1;
  }

  // Wide combinational modules: >=64 input bits whose closures span most
  // of the gate network, so the serial path pays |inputs| full BFS
  // traversals where the kernel pays ceil(|inputs|/64) sweeps. This is
  // the workload the bit-parallel kernel exists for.
  struct WideEntry {
    std::string Name;
    Module M;
  };
  std::vector<WideEntry> Wide;
  Wide.push_back({"mux_comb_w64_n16", makeMuxComb(64, 16)});
  if (!Quick) {
    Wide.push_back({"crossbar_w32_p8", makeCrossbar(32, 8)});
    Wide.push_back({"crossbar_w64_p16", makeCrossbar(64, 16)});
    Wide.push_back({"popcount_w64", makePopcount(64)});
    Wide.push_back({"majority_w64", makeMajority(64)});
    Wide.push_back({"checksum_w64", makeChecksum(64)});
    Wide.push_back({"gray_decode_w64", makeGrayCoder(64, /*Decode=*/true)});
    Wide.push_back({"prio_enc_n64", makePriorityEncoder(64)});
  }
  for (const WideEntry &E : Wide)
    if (!report(E.Name, E.M))
      return 1;

  // The large bit-blasted forwarding FIFOs: ~70 input bits over a
  // register-dominated netlist. Closures here are small (state absorbs
  // reachability), so Stage-1 is bound by the loop check / freeze — the
  // kernel's job on these is to not regress while the wide modules win.
  for (uint16_t DepthLog2 : {6, 8, 10}) {
    if (Quick && DepthLog2 > 6)
      break;
    if (!report("fifo_fwd_w64_d2^" + std::to_string(DepthLog2),
                makeFifo({64, DepthLog2, /*Forwarding=*/true})))
      return 1;
  }

  T.print();

  if (!JsonOut.empty() && Json.writeTo(JsonOut))
    std::printf("\nJSON report written to %s\n", JsonOut.c_str());
  return 0;
}
