//===- bench/bench_kernel.cpp - Serial BFS vs bit-parallel Stage-1 --------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// Head-to-head of the two Stage-1 reachability implementations over the
// bit-blasted corpus (the paper's Tables 1-2 methodology: modules are
// lowered to primitive gates before inference, so port counts are wire
// bits, not RTL vectors). Each path runs cold — the timed region is the
// per-module graph analysis Stage-1 performs after the comb graph is
// built:
//
//  * serial — the seed implementation: Graph::findCycle for the
//    combinational-loop check plus one allocating BFS per input port
//    (CombGraph::reachableOutputPorts, kept as the differential oracle);
//  * kernel — one ForwardOnly CSR freeze (Kahn orders the graph and
//    settles the loop verdict; docs/KERNEL.md) shared by
//    CombGraph::findCombLoop and the bit-parallel closure
//    (CombGraph::allOutputPortSets, up to 512 input ports per sweep).
//
// Kernel rows carry a per-phase breakdown (freeze / frontier discovery /
// OR-sweep) read from the kernel.* trace histograms, so a regression is
// attributable to a phase, not just a module.
//
// A second section sweeps the flat instance-adjacency graph of the
// gen::MegaScale presets — ~100k nodes for the `100k` preset — once per
// available sweep ISA (scalar / AVX2 / AVX-512, forced via
// support/Simd.h) against a scalar single-lane-word baseline. Every ISA
// variant must reproduce the baseline's reachability bitset bit for bit
// before its timing is reported; tools/run_bench.sh commits the JSON as
// BENCH_kernel.json (reading guide: docs/SCALE.md).
//
// Both Stage-1 paths must produce identical loop verdicts and port sets;
// the bench refuses to report numbers otherwise. Sub-millisecond modules
// are re-run enough times for the clock to resolve. `--json <path>`
// mirrors the rows into a machine-readable report.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "analysis/Reachability.h"
#include "gen/Catalog.h"
#include "gen/Fifo.h"
#include "gen/MegaScale.h"
#include "support/CsrGraph.h"
#include "support/Simd.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "synth/Lower.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::bench;
using namespace wiresort::gen;
using namespace wiresort::ir;

namespace {

/// Sums of the kernel's per-phase timing histograms (docs/KERNEL.md) at
/// one instant; subtract two snapshots to attribute a timed region.
struct PhaseSums {
  uint64_t FreezeUs = 0;
  uint64_t FrontierUs = 0;
  uint64_t SweepUs = 0;
};

PhaseSums phaseSums() {
  PhaseSums P;
  for (const trace::HistogramSnapshot &H : trace::histogramSnapshot()) {
    if (H.Name == "kernel.freeze_us")
      P.FreezeUs = H.Sum;
    else if (H.Name == "kernel.frontier_us")
      P.FrontierUs = H.Sum;
    else if (H.Name == "kernel.sweep_us")
      P.SweepUs = H.Sum;
  }
  return P;
}

PhaseSums operator-(const PhaseSums &A, const PhaseSums &B) {
  return {A.FreezeUs - B.FreezeUs, A.FrontierUs - B.FrontierUs,
          A.SweepUs - B.SweepUs};
}

struct KernelRun {
  size_t Gates = 0;
  size_t Inputs = 0;
  size_t Outputs = 0;
  double SerialSeconds = 0.0;
  double KernelSeconds = 0.0;
  /// Per-rep kernel-phase attribution, microseconds.
  double FreezeUs = 0.0;
  double FrontierUs = 0.0;
  double SweepUs = 0.0;
  bool Identical = false;
};

/// The serial Stage-1 analysis over an already-built comb graph: the
/// seed's loop check plus one BFS per input port.
std::map<WireId, std::vector<WireId>> serialStage1(const Module &Gates,
                                                   const CombGraph &CG,
                                                   bool &Loop) {
  Loop = CG.graph().findCycle().has_value();
  std::map<WireId, std::vector<WireId>> Sets;
  for (WireId In : Gates.Inputs)
    Sets[In] = CG.reachableOutputPorts(In);
  return Sets;
}

/// Times both cold Stage-1 paths over the gate-level form of \p M.
///
/// Every repetition rebuilds the comb graph outside the timed region so
/// the kernel path pays its freeze cold each time; repetitions are scaled
/// until the faster path accumulates enough time for the clock.
KernelRun runModule(const Module &M) {
  Design D;
  ModuleId Id = D.addModule(M);
  Module Gates = synth::lower(D, Id);

  KernelRun Run;
  for (const Net &N : Gates.Nets)
    Run.Gates += N.Operation != Op::Buf;
  Run.Inputs = Gates.Inputs.size();
  Run.Outputs = Gates.Outputs.size();

  const std::map<ModuleId, analysis::ModuleSummary> NoSubs;

  // Correctness gate first: identical port sets and loop verdicts.
  bool SerialLoop = false;
  std::map<WireId, std::vector<WireId>> Serial, Batched;
  {
    CombGraph CG = CombGraph::build(Gates, NoSubs);
    Serial = serialStage1(Gates, CG, SerialLoop);
  }
  {
    CombGraph CG = CombGraph::build(Gates, NoSubs);
    const bool KernelLoop = CG.findCombLoop().has_value();
    Batched = CG.allOutputPortSets();
    Run.Identical = Serial == Batched && SerialLoop == KernelLoop;
  }
  if (!Run.Identical)
    return Run;

  // Calibrate the repetition count on the kernel path (the faster one),
  // then time both paths over the same number of cold runs.
  int Reps = 1;
  {
    CombGraph CG = CombGraph::build(Gates, NoSubs);
    Timer T;
    (void)CG.findCombLoop();
    (void)CG.allOutputPortSets();
    const double Once = T.seconds();
    Reps = static_cast<int>(
        std::clamp(0.02 / std::max(Once, 1e-7), 1.0, 2000.0));
  }

  Timer T;
  for (int R = 0; R != Reps; ++R) {
    CombGraph CG = CombGraph::build(Gates, NoSubs);
    T.restart();
    bool Loop;
    (void)serialStage1(Gates, CG, Loop);
    Run.SerialSeconds += T.seconds();
  }
  const PhaseSums Before = phaseSums();
  for (int R = 0; R != Reps; ++R) {
    CombGraph CG = CombGraph::build(Gates, NoSubs);
    T.restart();
    (void)CG.findCombLoop();
    (void)CG.allOutputPortSets();
    Run.KernelSeconds += T.seconds();
  }
  const PhaseSums Phase = phaseSums() - Before;
  Run.SerialSeconds /= Reps;
  Run.KernelSeconds /= Reps;
  Run.FreezeUs = double(Phase.FreezeUs) / Reps;
  Run.FrontierUs = double(Phase.FrontierUs) / Reps;
  Run.SweepUs = double(Phase.SweepUs) / Reps;
  return Run;
}

std::string phaseStr(const KernelRun &R) {
  char Buf[64];
  std::snprintf(Buf, sizeof Buf, "%.0f/%.0f/%.0f", R.FreezeUs, R.FrontierUs,
                R.SweepUs);
  return Buf;
}

void addRow(Table &T, JsonReport &Json, const std::string &Name,
            const KernelRun &R) {
  T.addRow({Name, Table::withCommas(R.Gates),
            std::to_string(R.Inputs) + "/" + std::to_string(R.Outputs),
            Table::secondsStr(R.SerialSeconds, 6),
            Table::secondsStr(R.KernelSeconds, 6), phaseStr(R),
            Table::speedupStr(R.SerialSeconds / R.KernelSeconds)});
  Json.beginRecord()
      .field("module", Name)
      .field("prim_gates", static_cast<uint64_t>(R.Gates))
      .field("inputs", static_cast<uint64_t>(R.Inputs))
      .field("outputs", static_cast<uint64_t>(R.Outputs))
      .field("serial_stage1_seconds", R.SerialSeconds)
      .field("kernel_stage1_seconds", R.KernelSeconds)
      .field("kernel_freeze_us", R.FreezeUs)
      .field("kernel_frontier_us", R.FrontierUs)
      .field("kernel_sweep_us", R.SweepUs)
      .field("speedup", R.SerialSeconds / R.KernelSeconds);
}

// --- MegaScale flat-graph ISA sweep ----------------------------------------

/// The flat instance-adjacency graph of a (sealed) hierarchical design:
/// one node per flat instance (plus the top), an edge from each instance
/// to every direct sub-instance, and a driver->sink edge for every local
/// wire shared by two sibling instances' port bindings, replicated at
/// every level of the expansion. For the MegaScale presets this
/// reproduces the stitched grid/torus/chain at full flat scale — the
/// graph shape the kernel meets when a composition is checked whole.
Graph flatInstanceGraph(const Design &D, ModuleId Top,
                        std::vector<uint32_t> &ByDepth) {
  const uint32_t N = static_cast<uint32_t>(1 + flatInstanceCount(D, Top));
  Graph G(N);
  uint32_t Next = 0;
  std::vector<std::vector<uint32_t>> Levels;

  struct Rec {
    const Design &D;
    Graph &G;
    uint32_t &Next;
    std::vector<std::vector<uint32_t>> &Levels;
    void operator()(ModuleId Id, uint32_t Self, uint32_t Depth) const {
      const Module &M = D.module(Id);
      if (Levels.size() <= Depth)
        Levels.resize(Depth + 1);
      Levels[Depth].push_back(Self);
      // Local wire -> driving child node; sinks resolved in a second
      // pass so binding order cannot matter.
      std::map<WireId, uint32_t> Driver;
      std::vector<std::pair<WireId, uint32_t>> Sinks;
      for (const SubInstance &Sub : M.Instances) {
        const uint32_t Child = ++Next;
        G.addEdge(Self, Child);
        const Module &Def = D.module(Sub.Def);
        for (const auto &[Port, Local] : Sub.Bindings) {
          if (Def.isOutput(Port))
            Driver.emplace(Local, Child);
          else
            Sinks.emplace_back(Local, Child);
        }
        (*this)(Sub.Def, Child, Depth + 1);
      }
      for (const auto &[Local, Sink] : Sinks) {
        auto It = Driver.find(Local);
        if (It != Driver.end() && It->second != Sink)
          G.addEdge(It->second, Sink);
      }
    }
  };
  Rec{D, G, Next, Levels}(Top, 0, 0);
  ByDepth.clear();
  for (const std::vector<uint32_t> &L : Levels)
    ByDepth.insert(ByDepth.end(), L.begin(), L.end());
  return G;
}

struct MegaSweepResult {
  double SweepSeconds = 0.0; // full 512-source closure, per rep
  double FreezeUs = 0.0;
  double FrontierUs = 0.0;
  double SweepPhaseUs = 0.0;
  /// Chunk-major reachability bits: Bits[Chunk][Node bit lane] flattened,
  /// the canonical form two ISA runs are compared on.
  std::vector<uint64_t> Bits;
};

/// Sweeps \p Sources (chunked to the kernel's lane count) over \p Csr
/// under the *currently forced* ISA/lane configuration and returns
/// timing plus the full reachability bitset.
MegaSweepResult megaSweep(const CsrGraph &Csr,
                          const std::vector<uint32_t> &Sources,
                          uint32_t LaneWords, int Reps) {
  MegaSweepResult R;
  ReachabilityKernel Kernel(Csr, LaneWords);
  const uint32_t Lanes = Kernel.laneCount();

  const PhaseSums Before = phaseSums();
  Timer T;
  for (int Rep = 0; Rep != Reps; ++Rep)
    for (size_t Base = 0; Base < Sources.size(); Base += Lanes) {
      const uint32_t Count = static_cast<uint32_t>(
          std::min<size_t>(Lanes, Sources.size() - Base));
      Kernel.sweep(Sources.data() + Base, Count);
    }
  R.SweepSeconds = T.seconds() / Reps;
  const PhaseSums Phase = phaseSums() - Before;

  // Untimed verification pass: record the bits in source-chunk-of-64
  // major order so any (ISA, LaneWords) run yields the same canonical
  // vector for the identity gate.
  for (size_t Base = 0; Base < Sources.size(); Base += Lanes) {
    const uint32_t Count = static_cast<uint32_t>(
        std::min<size_t>(Lanes, Sources.size() - Base));
    Kernel.sweep(Sources.data() + Base, Count);
    for (uint32_t Word = 0; Word != (Count + 63) / 64; ++Word)
      for (uint32_t Node = 0; Node != Csr.numNodes(); ++Node)
        R.Bits.push_back(Kernel.row(Node)[Word]);
  }
  R.FreezeUs = double(Phase.FreezeUs) / Reps;
  R.FrontierUs = double(Phase.FrontierUs) / Reps;
  R.SweepPhaseUs = double(Phase.SweepUs) / Reps;
  return R;
}

bool megaScaleSection(Table &T, JsonReport &Json, bool Quick) {
  const std::vector<std::string> Presets =
      Quick ? std::vector<std::string>{"ci"}
            : std::vector<std::string>{"ci", "10k", "100k"};
  for (const std::string &Name : Presets) {
    MegaScaleParams P = *megaScalePreset(Name);
    Design D;
    MegaScaleDesign Mega = buildMegaScale(D, P);
    std::vector<uint32_t> ByDepth;
    Graph G = flatInstanceGraph(D, Mega.Top, ByDepth);
    const CsrGraph Csr = CsrGraph::freeze(G, CsrGraph::ForwardOnly);

    // 512 sources, shallowest instances first: the composition roots
    // (top, clusters, then tiles), whose closures share the stitched
    // grid and everything under it. That is the shape the multi-word
    // rows exist for — many sources over one downstream cone, the
    // whole-composition analogue of a module's input ports — where
    // single-word sweeps re-traverse the shared cone once per 64-source
    // chunk. Deep payload leaves have tiny disjoint closures and would
    // measure pure row-width overhead instead.
    const uint32_t N = G.numNodes();
    const uint32_t Want = std::min<uint32_t>(N, 512);
    std::vector<uint32_t> Sources(ByDepth.begin(), ByDepth.begin() + Want);

    // Scalar single-word baseline: the pre-vectorization kernel shape —
    // eight 64-lane sweeps instead of one 512-lane sweep.
    if (!simd::setActiveIsa(simd::KernelIsa::Scalar)) {
      std::fprintf(stderr, "scalar sweep variant unavailable?\n");
      return false;
    }
    int Reps = 1;
    {
      Timer Cal;
      MegaSweepResult Once = megaSweep(Csr, Sources, 1, 1);
      (void)Once;
      Reps = static_cast<int>(
          std::clamp(0.5 / std::max(Cal.seconds(), 1e-6), 1.0, 100.0));
    }
    const MegaSweepResult Base = megaSweep(Csr, Sources, 1, Reps);
    T.addRow({Name, Table::withCommas(N), Table::withCommas(G.numEdges()),
              "scalar", "1", Table::secondsStr(Base.SweepSeconds, 6),
              Table::speedupStr(1.0)});
    Json.beginRecord()
        .field("sweep", "mega_scale_isa")
        .field("preset", Name)
        .field("nodes", static_cast<uint64_t>(N))
        .field("edges", static_cast<uint64_t>(G.numEdges()))
        .field("isa", "scalar")
        .field("lane_words", static_cast<uint64_t>(1))
        .field("sources", static_cast<uint64_t>(Want))
        .field("sweep_seconds", Base.SweepSeconds)
        .field("kernel_frontier_us", Base.FrontierUs)
        .field("kernel_sweep_us", Base.SweepPhaseUs)
        .field("speedup_vs_scalar_l1", 1.0)
        .field("identical", "baseline");

    // Every available ISA at the full 8-word row. Timings are reported
    // only after the bitset matches the baseline exactly.
    const uint32_t Wide = ReachabilityKernel::laneWordsFor(Sources.size());
    for (simd::KernelIsa Isa : {simd::KernelIsa::Scalar, simd::KernelIsa::Avx2,
                                simd::KernelIsa::Avx512}) {
      if (!simd::isaSupported(Isa) || !simd::setActiveIsa(Isa))
        continue;
      const MegaSweepResult R = megaSweep(Csr, Sources, Wide, Reps);
      if (R.Bits != Base.Bits) {
        std::fprintf(stderr,
                     "%s: %s L%u bitset diverges from the scalar baseline!\n",
                     Name.c_str(), simd::isaName(Isa), Wide);
        return false;
      }
      const double Speedup = Base.SweepSeconds / R.SweepSeconds;
      T.addRow({Name, Table::withCommas(N), Table::withCommas(G.numEdges()),
                simd::isaName(Isa), std::to_string(Wide),
                Table::secondsStr(R.SweepSeconds, 6),
                Table::speedupStr(Speedup)});
      Json.beginRecord()
          .field("sweep", "mega_scale_isa")
          .field("preset", Name)
          .field("nodes", static_cast<uint64_t>(N))
          .field("edges", static_cast<uint64_t>(G.numEdges()))
          .field("isa", simd::isaName(Isa))
          .field("lane_words", static_cast<uint64_t>(Wide))
          .field("sources", static_cast<uint64_t>(Want))
          .field("sweep_seconds", R.SweepSeconds)
          .field("kernel_frontier_us", R.FrontierUs)
          .field("kernel_sweep_us", R.SweepPhaseUs)
          .field("speedup_vs_scalar_l1", Speedup)
          .field("identical", "true");
    }
  }
  // Leave the process on its natural dispatch choice.
  simd::setActiveIsa(simd::bestSupportedIsa());
  return true;
}

} // namespace

int main(int ArgC, char **ArgV) {
  const bool Quick = quickMode(ArgC, ArgV);
  const std::string JsonOut = jsonPath(ArgC, ArgV);

  // Metrics-only session so the kernel.* histograms collect for the
  // per-phase columns without span bookkeeping in the timed regions.
  trace::SessionOptions MetricsOpts;
  MetricsOpts.CollectSpans = false;
  trace::Session Metrics(MetricsOpts);

  std::printf("=== Stage-1 reachability: serial (findCycle + per-port BFS) "
              "vs bit-parallel CSR kernel ===\n"
              "(gate-level modules, cold per run; both paths verified "
              "identical before any row is reported; phases are freeze/"
              "frontier/sweep microseconds per run)\n\n");

  Table T({"Module", "Prim gates", "In/Out ports", "Serial Stage-1 (s)",
           "Kernel Stage-1 (s)", "Phases f/fr/s (us)", "Speedup"});
  JsonReport Json;

  auto report = [&](const std::string &Name, const Module &M) {
    KernelRun R = runModule(M);
    if (!R.Identical) {
      std::printf("%s: serial and kernel Stage-1 diverge!\n", Name.c_str());
      return false;
    }
    addRow(T, Json, Name, R);
    return true;
  };

  size_t Count = 0;
  for (const CatalogEntry &E : catalog()) {
    if (Quick && ++Count > 8)
      break;
    if (!report(E.Name, E.Build()))
      return 1;
  }

  // Wide combinational modules: >=64 input bits whose closures span most
  // of the gate network, so the serial path pays |inputs| full BFS
  // traversals where the kernel pays ceil(|inputs|/512) sweeps. This is
  // the workload the bit-parallel kernel exists for.
  struct WideEntry {
    std::string Name;
    Module M;
  };
  std::vector<WideEntry> Wide;
  Wide.push_back({"mux_comb_w64_n16", makeMuxComb(64, 16)});
  if (!Quick) {
    Wide.push_back({"crossbar_w32_p8", makeCrossbar(32, 8)});
    Wide.push_back({"crossbar_w64_p16", makeCrossbar(64, 16)});
    Wide.push_back({"popcount_w64", makePopcount(64)});
    Wide.push_back({"majority_w64", makeMajority(64)});
    Wide.push_back({"checksum_w64", makeChecksum(64)});
    Wide.push_back({"gray_decode_w64", makeGrayCoder(64, /*Decode=*/true)});
    Wide.push_back({"prio_enc_n64", makePriorityEncoder(64)});
  }
  for (const WideEntry &E : Wide)
    if (!report(E.Name, E.M))
      return 1;

  // The large bit-blasted forwarding FIFOs: ~70 input bits over a
  // register-dominated netlist. Closures here are small (state absorbs
  // reachability), so Stage-1 is bound by the loop check / freeze — the
  // kernel's job on these is to not regress while the wide modules win.
  for (uint16_t DepthLog2 : {6, 8, 10}) {
    if (Quick && DepthLog2 > 6)
      break;
    if (!report("fifo_fwd_w64_d2^" + std::to_string(DepthLog2),
                makeFifo({64, DepthLog2, /*Forwarding=*/true})))
      return 1;
  }

  T.print();

  // MegaScale flat-graph closure under every available sweep ISA: one
  // ~100k-node graph, 512 sources, scalar/L1 baseline vs forced-ISA
  // 8-word rows, all gated on bitset identity (docs/SCALE.md).
  std::printf("\n=== MegaScale flat-graph 512-source closure by sweep ISA "
              "===\n(speedups are against the scalar 1-lane-word baseline; "
              "every row's bitset verified identical to it)\n\n");
  Table MegaT({"Preset", "Nodes", "Edges", "ISA", "Lane words", "Closure (s)",
               "Speedup"});
  if (!megaScaleSection(MegaT, Json, Quick))
    return 1;
  MegaT.print();

  (void)Metrics.finish();
  if (!JsonOut.empty() && Json.writeTo(JsonOut))
    std::printf("\nJSON report written to %s\n", JsonOut.c_str());
  return 0;
}
