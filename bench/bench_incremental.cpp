//===- bench/bench_incremental.cpp - Section 4 design-time checking -------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// Measures the Section 4 incremental-check policy: as a circuit is wired
// connection by connection, how many connections trigger a check at all,
// and how the incremental cost compares with naively re-running the
// whole-circuit check after every connection. Run on two workloads: an
// all-sync normal-FIFO grid (nothing ever triggers) and a forwarding-FIFO
// grid (port sorts everywhere, the expensive case).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "analysis/Incremental.h"
#include "analysis/SortInference.h"
#include "analysis/WellConnected.h"
#include "gen/Fifo.h"
#include "support/Table.h"

#include <cstdio>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::bench;
using namespace wiresort::ir;

namespace {

struct RunResult {
  size_t Connections = 0;
  size_t Triggered = 0;
  double IncrementalMs = 0.0;
  double NaiveMs = 0.0;
};

RunResult wireUpChain(Design &D, ModuleId Def, size_t N,
                      const std::map<ModuleId, ModuleSummary> &Summaries) {
  RunResult R;
  // Incremental pass.
  {
    Circuit Circ(D, "inc");
    std::vector<InstId> Insts;
    for (size_t I = 0; I != N; ++I)
      Insts.push_back(Circ.addInstance(Def, "q" + std::to_string(I)));
    IncrementalChecker Checker(Circ, Summaries);
    Timer T;
    for (size_t I = 0; I + 1 != N; ++I) {
      Circ.connect(Insts[I], "v_o", Insts[I + 1], "v_i");
      Checker.addConnection(Circ.connections().back());
      Circ.connect(Insts[I], "data_o", Insts[I + 1], "data_i");
      Checker.addConnection(Circ.connections().back());
      Circ.connect(Insts[I + 1], "ready_o", Insts[I], "yumi_i");
      Checker.addConnection(Circ.connections().back());
    }
    R.IncrementalMs = T.milliseconds();
    R.Connections = Circ.connections().size();
    R.Triggered = Checker.numChecksTriggered();
  }
  // Naive pass: full SCC check after every connection.
  {
    Circuit Circ(D, "naive");
    std::vector<InstId> Insts;
    for (size_t I = 0; I != N; ++I)
      Insts.push_back(Circ.addInstance(Def, "q" + std::to_string(I)));
    Timer T;
    for (size_t I = 0; I + 1 != N; ++I) {
      Circ.connect(Insts[I], "v_o", Insts[I + 1], "v_i");
      checkCircuit(Circ, Summaries);
      Circ.connect(Insts[I], "data_o", Insts[I + 1], "data_i");
      checkCircuit(Circ, Summaries);
      Circ.connect(Insts[I + 1], "ready_o", Insts[I], "yumi_i");
      checkCircuit(Circ, Summaries);
    }
    R.NaiveMs = T.milliseconds();
  }
  return R;
}

} // namespace

int main(int ArgC, char **ArgV) {
  size_t N = quickMode(ArgC, ArgV) ? 60 : 200;

  Design D;
  ModuleId Normal = D.addModule(gen::makeFifo({8, 2, false}));
  ModuleId Fwd = D.addModule(gen::makeFifo({8, 2, true}));
  std::map<ModuleId, ModuleSummary> Summaries;
  if (analyzeDesign(D, Summaries).hasError())
    return 1;

  std::printf("=== Section 4: incremental design-time checking "
              "(%zu-stage pipelines) ===\n\n",
              N);
  Table T({"Workload", "Conns", "Checks triggered", "Incremental (ms)",
           "Naive re-check (ms)", "Saving"});
  RunResult Sync = wireUpChain(D, Normal, N, Summaries);
  T.addRow({"normal FIFOs (all sync)", std::to_string(Sync.Connections),
            std::to_string(Sync.Triggered),
            Table::secondsStr(Sync.IncrementalMs, 2),
            Table::secondsStr(Sync.NaiveMs, 2),
            Table::speedupStr(Sync.NaiveMs / Sync.IncrementalMs)});
  RunResult Port = wireUpChain(D, Fwd, N, Summaries);
  T.addRow({"forwarding FIFOs (port sorts)",
            std::to_string(Port.Connections),
            std::to_string(Port.Triggered),
            Table::secondsStr(Port.IncrementalMs, 2),
            Table::secondsStr(Port.NaiveMs, 2),
            Table::speedupStr(Port.NaiveMs / Port.IncrementalMs)});
  T.print();
  std::printf("\n(the trigger fires only when a connection's forward "
              "reach includes a to-port input AND its backward reach a "
              "from-port output — Section 4's guarantee that \"a check "
              "is never done unless a problem could potentially be "
              "found\")\n");
  return 0;
}
