//===- bench/bench_scalability.cpp - Section 5.5 complexity curves --------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// Demonstrates the two asymptotic claims of Section 5.5 empirically:
//
//  * 5.5.1 — module sort inference is O(|inputs| * |edges|): timing
//    sweeps over gate count (fixed inputs) and over input count (fixed
//    gates) should both look linear.
//  * 5.5.2 — whole-circuit checking is O(|conns|^2) worst case for the
//    literal Definition 3.1 pairwise check, while the production SCC
//    check is linear in connections; both are measured on growing
//    forwarding-FIFO chains (every connection port-sorted, so nothing is
//    discharged early).
//
// Also measures the ablation called out in DESIGN.md: pairwise vs SCC.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "analysis/SortInference.h"
#include "analysis/WellConnected.h"
#include "gen/Fifo.h"
#include "gen/Random.h"
#include "ir/Builder.h"
#include "support/Table.h"

#include <cstdio>
#include <random>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::bench;
using namespace wiresort::gen;
using namespace wiresort::ir;

int main(int ArgC, char **ArgV) {
  bool Quick = quickMode(ArgC, ArgV);

  // --- 5.5.1: inference time vs gate count --------------------------------
  std::printf("=== Section 5.5.1: inference scales with module size "
              "===\n\n");
  {
    Table T({"Gates (approx)", "Edges", "Infer (ms)", "ms / kGate"});
    for (uint16_t DepthLog2 : {4, 6, 8, 10, 12}) {
      if (Quick && DepthLog2 > 8)
        break;
      Design D;
      ModuleId Id =
          D.addModule(makeFifo({64, DepthLog2, /*Forwarding=*/true}));
      GateLevelRun Run = runGateLevel(D, Id);
      T.addRow({Table::withCommas(Run.PrimGates),
                Table::withCommas(Run.Gates.Nets.size()),
                Table::secondsStr(Run.InferSeconds * 1e3, 2),
                Table::secondsStr(1e6 * Run.InferSeconds /
                                      double(Run.PrimGates),
                                  3)});
    }
    T.print();
    std::printf("(ms/kGate roughly flat => linear in module size)\n\n");
  }

  // --- 5.5.1: inference time vs input count -------------------------------
  // Deterministic worst-case shape: every input combinationally reaches
  // one shared cone of fixed size, so total work is |inputs| * |edges|
  // exactly as Section 5.5.1 states.
  std::printf("=== Section 5.5.1: inference scales with input count "
              "===\n\n");
  {
    Table T({"Inputs", "Cone gates", "Infer (ms)", "us / input"});
    const uint16_t ConeLength = Quick ? 2000 : 20000;
    for (uint16_t Inputs : {8, 16, 32, 64, 128}) {
      Builder B("sweep_in" + std::to_string(Inputs));
      V Acc = B.lit(0, 1);
      for (uint16_t I = 0; I != Inputs; ++I)
        Acc = B.xorv(Acc, B.input("x" + std::to_string(I), 1));
      for (uint16_t G = 0; G != ConeLength; ++G)
        Acc = B.notv(Acc);
      B.output("y", Acc);
      Design D;
      D.addModule(B.finish());
      Timer T2;
      std::map<ModuleId, ModuleSummary> Out;
      if (analyzeDesign(D, Out).hasError())
        return 1;
      double Ms = T2.milliseconds();
      T.addRow({std::to_string(Inputs), std::to_string(ConeLength),
                Table::secondsStr(Ms, 3),
                Table::secondsStr(1e3 * Ms / Inputs, 2)});
    }
    T.print();
    std::printf("(us/input roughly flat => linear in |inputs|)\n\n");
  }

  // --- 5.5.2: circuit check vs connection count ----------------------------
  std::printf("=== Section 5.5.2: circuit check scaling (pairwise vs "
              "SCC) ===\n\n");
  {
    Table T({"Instances", "Connections", "SCC (ms)", "Pairwise (ms)",
             "Pairwise/SCC"});
    Design D;
    ModuleId Fwd = D.addModule(makeFifo({8, 2, /*Forwarding=*/true}));
    std::map<ModuleId, ModuleSummary> Summaries;
    if (analyzeDesign(D, Summaries).hasError())
      return 1;

    for (size_t N : {50u, 100u, 200u, 400u, 800u}) {
      if (Quick && N > 200)
        break;
      Circuit Circ(D, "chain" + std::to_string(N));
      std::vector<InstId> Insts;
      for (size_t I = 0; I != N; ++I)
        Insts.push_back(Circ.addInstance(Fwd, "q" + std::to_string(I)));
      for (size_t I = 0; I + 1 != N; ++I) {
        Circ.connect(Insts[I], "v_o", Insts[I + 1], "v_i");
        Circ.connect(Insts[I], "data_o", Insts[I + 1], "data_i");
      }
      Timer SccTimer;
      CircuitCheckResult Scc = checkCircuit(Circ, Summaries);
      double SccMs = SccTimer.milliseconds();
      Timer PairTimer;
      CircuitCheckResult Pair = checkCircuitPairwise(Circ, Summaries);
      double PairMs = PairTimer.milliseconds();
      if (!Scc.WellConnected || !Pair.WellConnected)
        return 1;
      T.addRow({std::to_string(N),
                std::to_string(Circ.connections().size()),
                Table::secondsStr(SccMs, 3), Table::secondsStr(PairMs, 3),
                Table::speedupStr(PairMs / SccMs)});
    }
    T.print();
    std::printf("(pairwise/SCC ratio grows with connections: the "
                "O(|conns|^2) worst case vs the linear production "
                "check)\n");
  }
  return 0;
}
