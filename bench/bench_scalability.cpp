//===- bench/bench_scalability.cpp - Section 5.5 complexity curves --------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// Demonstrates the asymptotic claims of Section 5.5 empirically:
//
//  * 5.5.1 — module sort inference is O(|inputs| * |edges|): timing
//    sweeps over gate count (fixed inputs) and over input count (fixed
//    gates) should both look linear.
//  * 5.5.2 — whole-circuit checking is O(|conns|^2) worst case for the
//    literal Definition 3.1 pairwise check, while the production SCC
//    check is linear in connections; both are measured on growing
//    forwarding-FIFO chains (every connection port-sorted, so nothing is
//    discharged early).
//  * Mega-scale (docs/SCALE.md) — instance-count sweeps over the
//    gen::MegaScale presets, 60 to 1M flattened instances: wall-clock of
//    the full pipeline under the serial engine, the in-process sharded
//    engine, and the fork-isolated sharded engine. Every sharded run is
//    gated on producing *identical results* to the serial one —
//    structurallyEqual summaries, byte-identical verdict NDJSON, same
//    Stage-3 verdict — before its timing may be reported; a divergence
//    fails the bench.
//
// Also measures the ablation called out in DESIGN.md: pairwise vs SCC.
//
// `--json <path>` mirrors every table row into a machine-readable report
// (BENCH_scalability.json at the repo root is a committed snapshot;
// tools/run_bench.sh refreshes it), with the trace registry's counters
// appended so shard.*/engine.* land next to the timings.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "analysis/Sharded.h"
#include "analysis/SortInference.h"
#include "analysis/SummaryIO.h"
#include "analysis/WellConnected.h"
#include "gen/Fifo.h"
#include "gen/MegaScale.h"
#include "gen/Random.h"
#include "ir/Builder.h"
#include "support/Table.h"

#include <cstdio>
#include <random>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::bench;
using namespace wiresort::gen;
using namespace wiresort::ir;

namespace {

/// The mega-scale identical-results gate: serial reference vs one
/// sharded configuration. \returns false (with a stderr note) when any
/// part of the determinism contract is violated.
bool shardedMatchesSerial(const char *What,
                          const support::Status &SerialVerdict,
                          const std::map<ModuleId, ModuleSummary> &Serial,
                          const support::Status &ShardVerdict,
                          const std::map<ModuleId, ModuleSummary> &Shard) {
  if (support::renderJson(SerialVerdict) !=
      support::renderJson(ShardVerdict)) {
    std::fprintf(stderr, "%s: verdict NDJSON diverges from serial\n", What);
    return false;
  }
  if (Serial.size() != Shard.size()) {
    std::fprintf(stderr, "%s: summary count %zu != serial %zu\n", What,
                 Shard.size(), Serial.size());
    return false;
  }
  for (const auto &[Id, S] : Serial) {
    auto It = Shard.find(Id);
    if (It == Shard.end() || !structurallyEqual(S, It->second)) {
      std::fprintf(stderr, "%s: summary of module %u diverges\n", What,
                   static_cast<unsigned>(Id));
      return false;
    }
  }
  return true;
}

} // namespace

int main(int ArgC, char **ArgV) {
  bool Quick = quickMode(ArgC, ArgV);
  const std::string JsonOut = jsonPath(ArgC, ArgV);
  JsonReport Json;
  // Metrics-only collection window: the shard.*/engine.* counters the
  // sweeps below bump are appended to the JSON report at the end.
  trace::Session Metrics(trace::SessionOptions{"", /*CollectSpans=*/false});

  // --- 5.5.1: inference time vs gate count --------------------------------
  std::printf("=== Section 5.5.1: inference scales with module size "
              "===\n\n");
  {
    Table T({"Gates (approx)", "Edges", "Infer (ms)", "ms / kGate"});
    for (uint16_t DepthLog2 : {4, 6, 8, 10, 12}) {
      if (Quick && DepthLog2 > 8)
        break;
      Design D;
      ModuleId Id =
          D.addModule(makeFifo({64, DepthLog2, /*Forwarding=*/true}));
      GateLevelRun Run = runGateLevel(D, Id);
      T.addRow({Table::withCommas(Run.PrimGates),
                Table::withCommas(Run.Gates.Nets.size()),
                Table::secondsStr(Run.InferSeconds * 1e3, 2),
                Table::secondsStr(1e6 * Run.InferSeconds /
                                      double(Run.PrimGates),
                                  3)});
      Json.beginRecord()
          .field("sweep", "inference_vs_gates")
          .field("prim_gates", static_cast<uint64_t>(Run.PrimGates))
          .field("edges", static_cast<uint64_t>(Run.Gates.Nets.size()))
          .field("infer_seconds", Run.InferSeconds);
    }
    T.print();
    std::printf("(ms/kGate roughly flat => linear in module size)\n\n");
  }

  // --- 5.5.1: inference time vs input count -------------------------------
  // Deterministic worst-case shape: every input combinationally reaches
  // one shared cone of fixed size, so total work is |inputs| * |edges|
  // exactly as Section 5.5.1 states.
  std::printf("=== Section 5.5.1: inference scales with input count "
              "===\n\n");
  {
    Table T({"Inputs", "Cone gates", "Infer (ms)", "us / input"});
    const uint16_t ConeLength = Quick ? 2000 : 20000;
    for (uint16_t Inputs : {8, 16, 32, 64, 128}) {
      Builder B("sweep_in" + std::to_string(Inputs));
      V Acc = B.lit(0, 1);
      for (uint16_t I = 0; I != Inputs; ++I)
        Acc = B.xorv(Acc, B.input("x" + std::to_string(I), 1));
      for (uint16_t G = 0; G != ConeLength; ++G)
        Acc = B.notv(Acc);
      B.output("y", Acc);
      Design D;
      D.addModule(B.finish());
      Timer T2;
      std::map<ModuleId, ModuleSummary> Out;
      if (analyzeDesign(D, Out).hasError())
        return 1;
      double Ms = T2.milliseconds();
      T.addRow({std::to_string(Inputs), std::to_string(ConeLength),
                Table::secondsStr(Ms, 3),
                Table::secondsStr(1e3 * Ms / Inputs, 2)});
      Json.beginRecord()
          .field("sweep", "inference_vs_inputs")
          .field("inputs", static_cast<uint64_t>(Inputs))
          .field("cone_gates", static_cast<uint64_t>(ConeLength))
          .field("infer_seconds", Ms / 1e3);
    }
    T.print();
    std::printf("(us/input roughly flat => linear in |inputs|)\n\n");
  }

  // --- 5.5.2: circuit check vs connection count ----------------------------
  std::printf("=== Section 5.5.2: circuit check scaling (pairwise vs "
              "SCC) ===\n\n");
  {
    Table T({"Instances", "Connections", "SCC (ms)", "Pairwise (ms)",
             "Pairwise/SCC"});
    Design D;
    ModuleId Fwd = D.addModule(makeFifo({8, 2, /*Forwarding=*/true}));
    std::map<ModuleId, ModuleSummary> Summaries;
    if (analyzeDesign(D, Summaries).hasError())
      return 1;

    for (size_t N : {50u, 100u, 200u, 400u, 800u}) {
      if (Quick && N > 200)
        break;
      Circuit Circ(D, "chain" + std::to_string(N));
      std::vector<InstId> Insts;
      for (size_t I = 0; I != N; ++I)
        Insts.push_back(Circ.addInstance(Fwd, "q" + std::to_string(I)));
      for (size_t I = 0; I + 1 != N; ++I) {
        Circ.connect(Insts[I], "v_o", Insts[I + 1], "v_i");
        Circ.connect(Insts[I], "data_o", Insts[I + 1], "data_i");
      }
      Timer SccTimer;
      CircuitCheckResult Scc = checkCircuit(Circ, Summaries);
      double SccMs = SccTimer.milliseconds();
      Timer PairTimer;
      CircuitCheckResult Pair = checkCircuitPairwise(Circ, Summaries);
      double PairMs = PairTimer.milliseconds();
      if (!Scc.WellConnected || !Pair.WellConnected)
        return 1;
      T.addRow({std::to_string(N),
                std::to_string(Circ.connections().size()),
                Table::secondsStr(SccMs, 3), Table::secondsStr(PairMs, 3),
                Table::speedupStr(PairMs / SccMs)});
      Json.beginRecord()
          .field("sweep", "check_pairwise_vs_scc")
          .field("instances", static_cast<uint64_t>(N))
          .field("connections",
                 static_cast<uint64_t>(Circ.connections().size()))
          .field("scc_seconds", SccMs / 1e3)
          .field("pairwise_seconds", PairMs / 1e3);
    }
    T.print();
    std::printf("(pairwise/SCC ratio grows with connections: the "
                "O(|conns|^2) worst case vs the linear production "
                "check)\n\n");
  }

  // --- Mega-scale: flat-instance sweeps, serial vs sharded -----------------
  // The flat instance count is what a monolithic checker would expand;
  // the engine's cost scales with unique modules plus hierarchy nodes.
  // Every sharded timing below is valid only because the identical-
  // results gate passed first.
  std::printf("=== Mega-scale: serial vs sharded full pipeline "
              "(docs/SCALE.md) ===\n\n");
  {
    Table T({"Preset", "Flat instances", "Modules", "Serial (ms)",
             "Sharded x4 (ms)", "Fork x4 (ms)", "Stage-3 (ms)"});
    std::vector<std::string> Presets = {"ci", "10k", "100k"};
    if (!Quick) {
      Presets.push_back("100k-noc");
      Presets.push_back("100k-fabric");
      Presets.push_back("1m");
    }
    for (const std::string &Name : Presets) {
      MegaScaleParams P = *megaScalePreset(Name);
      Design D;
      Circuit Circ = buildMegaScaleCircuit(D, P);

      // Serial reference (cache off: every run measures cold work).
      CheckOptions SerialOpts;
      SerialOpts.Threads = 1;
      SerialOpts.UseCache = false;
      SummaryEngine Serial(SerialOpts);
      std::map<ModuleId, ModuleSummary> Reference;
      Timer SerialT;
      support::Status SerialVerdict = Serial.analyze(D, Reference);
      double SerialMs = SerialT.milliseconds();
      if (SerialVerdict.hasError())
        return 1;

      // In-process sharded, then fork-isolated sharded; both gated.
      double ShardMs[2] = {0, 0};
      const ShardOptions::Mode Modes[2] = {ShardOptions::Mode::InProcess,
                                           ShardOptions::Mode::Fork};
      const char *ModeName[2] = {"sharded x4", "fork x4"};
      for (int M = 0; M != 2; ++M) {
        ShardOptions SOpts;
        SOpts.Shards = 4;
        SOpts.ExecMode = Modes[M];
        SOpts.Engine.UseCache = false;
        ShardedEngine Sharded(SOpts);
        std::map<ModuleId, ModuleSummary> Out;
        Timer ShardT;
        support::Status Verdict = Sharded.analyze(D, Out);
        ShardMs[M] = ShardT.milliseconds();
        if (!shardedMatchesSerial((Name + " " + ModeName[M]).c_str(),
                                  SerialVerdict, Reference, Verdict, Out))
          return 1;
      }

      // Stage-3 over the top composition: SCC verdict is the reference,
      // the sharded pairwise checker must agree.
      Timer CheckT;
      CircuitCheckResult Scc = checkCircuit(Circ, Reference);
      double CheckMs = CheckT.milliseconds();
      CircuitCheckResult Sharded3 =
          checkCircuitSharded(Circ, Reference, 4);
      if (Scc.WellConnected != Sharded3.WellConnected) {
        std::fprintf(stderr, "%s: sharded Stage-3 verdict diverges\n",
                     Name.c_str());
        return 1;
      }
      if (!Scc.WellConnected)
        return 1;

      ModuleId Top = Circ.seal();
      const uint64_t Flat = flatInstanceCount(D, Top);
      T.addRow({Name, Table::withCommas(Flat),
                std::to_string(D.numModules()),
                Table::secondsStr(SerialMs, 3),
                Table::secondsStr(ShardMs[0], 3),
                Table::secondsStr(ShardMs[1], 3),
                Table::secondsStr(CheckMs, 3)});
      Json.beginRecord()
          .field("sweep", "mega_scale")
          .field("preset", Name)
          .field("flat_instances", Flat)
          .field("modules", static_cast<uint64_t>(D.numModules()))
          .field("fingerprint", fingerprint(D, Top))
          .field("serial_stage1_seconds", SerialMs / 1e3)
          .field("sharded4_stage1_seconds", ShardMs[0] / 1e3)
          .field("fork4_stage1_seconds", ShardMs[1] / 1e3)
          .field("stage3_seconds", CheckMs / 1e3);
    }
    T.print();
    std::printf("(cost tracks unique modules, not flat instances: the "
                "paper's per-module summary factoring at 1M-instance "
                "scale; sharded timings are gated on byte-identical "
                "results)\n");
  }

  // --- Shard-pipe throughput: framed wire records over a byte stream -------
  // The fork workers stream their results to the coordinator as wire
  // records flushed one at a time (docs/FORMATS.md, shard framing). This
  // sweep isolates the codec cost from fork/scheduling noise: encode a
  // mega-scale preset's summaries record by record — Writer::take() after
  // every record, exactly the pipe's flush pattern — then drain the
  // concatenated stream with a Reader, gated on decoding structurally
  // equal summaries.
  std::printf("\n=== Shard-pipe throughput: wire record codec "
              "(docs/FORMATS.md) ===\n\n");
  {
    MegaScaleParams P = *megaScalePreset(Quick ? "ci" : "10k");
    Design D;
    buildMegaScale(D, P);
    CheckOptions SerialOpts;
    SerialOpts.Threads = 1;
    SummaryEngine Serial(SerialOpts);
    std::map<ModuleId, ModuleSummary> Out;
    if (Serial.analyze(D, Out).hasError())
      return 1;

    const int Reps = Quick ? 3 : 5;
    double EncodeS = -1.0, DecodeS = -1.0;
    std::string Stream;
    for (int Rep = 0; Rep != Reps; ++Rep) {
      Timer T2;
      support::wire::Writer W;
      W.beginStream(support::wire::StreamKind::Shard, 1);
      std::string Bytes = W.take();
      for (const auto &[Id, S] : Out) {
        W.beginRecord(support::wire::RecordKind::ModuleSummary);
        analysis::detail::encodeSummaryBody(W, D.module(Id), S);
        W.endRecord();
        Bytes += W.take(); // One flush per record, as the pipe does.
      }
      W.finish();
      Bytes += W.take();
      double S = T2.seconds();
      EncodeS = EncodeS < 0.0 ? S : std::min(EncodeS, S);
      Stream = std::move(Bytes);
    }
    for (int Rep = 0; Rep != Reps; ++Rep) {
      std::map<ModuleId, ModuleSummary> Decoded;
      Timer T2;
      support::wire::Reader R(Stream);
      if (!R.readHeader())
        return 1;
      support::wire::Reader::Record Rec;
      for (;;) {
        support::wire::Reader::Item It = R.next(Rec);
        if (It == support::wire::Reader::Item::End)
          break;
        if (It != support::wire::Reader::Item::Record) {
          std::fprintf(stderr, "pipe throughput: damaged stream\n");
          return 1;
        }
        if (Rec.Kind != support::wire::RecordKind::ModuleSummary)
          continue;
        support::wire::Reader::Cursor C(Rec, R);
        ModuleSummary S;
        std::string Why;
        if (!analysis::detail::decodeSummaryBody(C, D, S, Why)) {
          std::fprintf(stderr, "pipe throughput: %s\n", Why.c_str());
          return 1;
        }
        Decoded[S.Id] = std::move(S);
      }
      double S = T2.seconds();
      // Identical-results gate: a fast decode that loses information
      // may not report a number.
      if (Decoded.size() != Out.size())
        return 1;
      for (const auto &[Id, Ref] : Out)
        if (!structurallyEqual(Ref, Decoded.at(Id)))
          return 1;
      DecodeS = DecodeS < 0.0 ? S : std::min(DecodeS, S);
    }

    const double Mb = double(Stream.size()) / 1e6;
    Table T({"Direction", "Records", "Bytes", "Best (ms)", "MB/s"});
    T.addRow({"encode (worker side)", Table::withCommas(Out.size()),
              Table::withCommas(Stream.size()),
              Table::secondsStr(EncodeS * 1e3, 3),
              Table::secondsStr(Mb / EncodeS, 1)});
    T.addRow({"decode (coordinator side)", Table::withCommas(Out.size()),
              Table::withCommas(Stream.size()),
              Table::secondsStr(DecodeS * 1e3, 3),
              Table::secondsStr(Mb / DecodeS, 1)});
    T.print();
    std::printf("(best of %d, gated on structurallyEqual round-trip)\n",
                Reps);
    Json.beginRecord()
        .field("sweep", "wire_pipe_throughput")
        .field("records", static_cast<uint64_t>(Out.size()))
        .field("bytes", static_cast<uint64_t>(Stream.size()))
        .field("encode_seconds", EncodeS)
        .field("decode_seconds", DecodeS)
        .field("encode_mb_s", Mb / EncodeS)
        .field("decode_mb_s", Mb / DecodeS);
  }

  (void)Metrics.finish();
  if (!JsonOut.empty()) {
    Json.appendTraceRegistry();
    if (Json.writeTo(JsonOut))
      std::printf("\nJSON report written to %s\n", JsonOut.c_str());
  }
  return 0;
}
