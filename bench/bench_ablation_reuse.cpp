//===- bench/bench_ablation_reuse.cpp - Summary-reuse ablation ------------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// Ablation called out in DESIGN.md: how much of the wire-sort pipeline's
// advantage comes from computing each definition's summary once and
// reusing it across instantiations ("every instantiation of the same
// module in the larger design reuses the same wire sort information",
// Section 4)? We analyze a design holding N instances of one SRAM bank
// definition twice: once as-is (reuse on) and once with the definition
// physically duplicated per instance (reuse off), at gate level.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "analysis/SortInference.h"
#include "gen/Catalog.h"
#include "ir/Builder.h"
#include "support/Table.h"

#include <cstdio>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::bench;
using namespace wiresort::ir;

namespace {

/// A top module instantiating \p N banks; \p Share picks whether they
/// share one definition.
ModuleId buildBankFarm(Design &D, size_t N, bool Share, uint16_t AddrW) {
  std::vector<ModuleId> Defs;
  for (size_t I = 0; I != (Share ? 1 : N); ++I) {
    Module M = gen::makeSyncRam(AddrW, 32);
    M.Name += Share ? "" : "$copy" + std::to_string(I);
    M.Contracts.clear(); // Not under test here.
    Defs.push_back(D.addModule(std::move(M)));
  }
  Builder B(std::string("farm_") + (Share ? "shared" : "copied"));
  V Addr = B.input("addr_i", AddrW);
  V WData = B.input("wdata_i", 32);
  V Wen = B.input("wen_i", 1);
  V Acc = B.lit(0, 32);
  for (size_t I = 0; I != N; ++I) {
    auto Outs = B.instantiate(D, Defs[Share ? 0 : I],
                              "bank" + std::to_string(I),
                              {{"raddr_i", Addr},
                               {"waddr_i", Addr},
                               {"wdata_i", WData},
                               {"wen_i", Wen}});
    Acc = B.xorv(Acc, Outs.at("rdata_o"));
  }
  B.output("checksum_o", B.reg(Acc, "sum_r"));
  return D.addModule(B.finish());
}

double timeHierAnalysis(const Design &D, ModuleId Top) {
  synth::HierLowered Hier = synth::lowerHierarchical(D, Top);
  Timer T;
  std::map<ModuleId, ModuleSummary> Out;
  if (analyzeDesign(Hier.Design, Out).hasError())
    return -1.0;
  return T.seconds();
}

} // namespace

int main(int ArgC, char **ArgV) {
  uint16_t AddrW = quickMode(ArgC, ArgV) ? 6 : 9;

  std::printf("=== Ablation: per-definition summary reuse ===\n"
              "(N synchronous-RAM banks; 'reuse on' shares one "
              "definition, 'reuse off' duplicates it per instance)\n\n");
  Table T({"Banks", "Reuse on (s)", "Reuse off (s)", "Reuse benefit"});
  for (size_t N : {2u, 4u, 8u, 16u}) {
    Design DShared, DCopied;
    ModuleId SharedTop = buildBankFarm(DShared, N, /*Share=*/true, AddrW);
    ModuleId CopiedTop =
        buildBankFarm(DCopied, N, /*Share=*/false, AddrW);
    double On = timeHierAnalysis(DShared, SharedTop);
    double Off = timeHierAnalysis(DCopied, CopiedTop);
    if (On < 0 || Off < 0)
      return 1;
    T.addRow({std::to_string(N), Table::secondsStr(On, 3),
              Table::secondsStr(Off, 3), Table::speedupStr(Off / On)});
  }
  T.print();
  std::printf("\n(reuse benefit should track the instance count: the "
              "copied variant re-analyzes the same gates N times)\n");
  return 0;
}
