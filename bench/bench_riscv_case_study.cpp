//===- bench/bench_riscv_case_study.cpp - Section 5.3 numbers -------------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// Regenerates the Section 5.3 case-study measurements for the
// multithreaded RV32I CPU: total primitive gates, per-module inference
// time, total inference time (with repeated-trial bounds, as the paper
// reports), per-gate inference rate, and the whole-circuit connection
// check time.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "analysis/SortInference.h"
#include "analysis/WellConnected.h"
#include "riscv/Cpu.h"
#include "support/Table.h"

#include <algorithm>
#include <cstdio>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::bench;
using namespace wiresort::ir;

int main(int ArgC, char **ArgV) {
  const int Trials = quickMode(ArgC, ArgV) ? 3 : 10;

  Design D;
  riscv::Cpu C = riscv::buildCpu(D);
  std::printf("=== Section 5.3: multithreaded RV32I CPU (%zu modules, "
              "%u threads) ===\n\n",
              C.Modules.size(), C.Config.NumThreads);

  // Per-module gate counts and gate-level inference time (the paper's
  // pipeline analyzed each module once at design time).
  Table PerModule({"Module", "Prim. Gates", "Ports", "Infer (ms)"});
  size_t TotalGates = 0;
  double PerModuleTotalSeconds = 0.0;
  for (ModuleId Id : C.Modules) {
    GateLevelRun Run = runGateLevel(D, Id);
    TotalGates += Run.PrimGates;
    PerModuleTotalSeconds += Run.InferSeconds;
    PerModule.addRow({D.module(Id).Name,
                      Table::withCommas(Run.PrimGates),
                      std::to_string(D.module(Id).numPorts()),
                      Table::secondsStr(Run.InferSeconds * 1e3, 2)});
  }
  PerModule.print();
  std::printf("\ntotal primitive gates: %s (paper: 229,011 for 5 threads "
              "/ 5 stages)\n",
              Table::withCommas(TotalGates).c_str());
  std::printf("average per-module inference: %.1f ms (paper: 13.5 ms at "
              "RTL granularity)\n",
              1e3 * PerModuleTotalSeconds / C.Modules.size());

  // Whole-design inference, repeated: report avg / min / max like the
  // paper's "162.7 ms, lower bound 148.9, upper bound 194.2".
  std::vector<double> InferRuns, CheckRuns;
  for (int Trial = 0; Trial != Trials; ++Trial) {
    Timer T;
    std::map<ModuleId, ModuleSummary> Summaries;
    if (analyzeDesign(D, Summaries).hasError())
      return 1;
    InferRuns.push_back(T.seconds());

    Timer T2;
    CircuitCheckResult Result = checkCircuit(C.Circ, Summaries);
    CheckRuns.push_back(T2.seconds());
    if (!Result.WellConnected)
      return 1;
  }
  auto stats = [](std::vector<double> &Runs) {
    std::sort(Runs.begin(), Runs.end());
    double Sum = 0;
    for (double R : Runs)
      Sum += R;
    return std::make_tuple(Sum / Runs.size(), Runs.front(), Runs.back());
  };
  auto [InferAvg, InferMin, InferMax] = stats(InferRuns);
  auto [CheckAvg, CheckMin, CheckMax] = stats(CheckRuns);
  std::printf("\nall-module sort inference (RTL, %d trials): avg %.3f ms "
              "[%.3f, %.3f]\n",
              Trials, 1e3 * InferAvg, 1e3 * InferMin, 1e3 * InferMax);
  std::printf("inference rate: %.0f ns per primitive gate (paper: 298 "
              "ns/gate)\n",
              1e9 * InferAvg / TotalGates);
  std::printf("whole-circuit connection check (%zu connections): avg "
              "%.3f ms [%.3f, %.3f] (paper: 67.1 ms avg)\n",
              C.Circ.connections().size(), 1e3 * CheckAvg, 1e3 * CheckMin,
              1e3 * CheckMax);
  return 0;
}
