//===- bench/bench_table4_distribution.cpp - Table 4 ----------------------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// Regenerates Table 4: the number of port annotations per sort across
// the three corpora (BaseJump-style catalog, OPDB stand-ins, RISC-V
// CPU), plus the Section 5.5.3 headline percentages: how many ports can
// raise "late surprises" (to-port/from-port) versus how many are
// discharged by sorts alone.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include "analysis/SortInference.h"
#include "gen/Catalog.h"
#include "gen/Opdb.h"
#include "riscv/Cpu.h"
#include "support/Table.h"

#include <cstdio>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::bench;
using namespace wiresort::ir;

namespace {

struct SortCounts {
  size_t Modules = 0;
  size_t Counts[4] = {0, 0, 0, 0};

  void addModule(const Design &D, ModuleId Id,
                 const ModuleSummary &Summary) {
    ++Modules;
    const Module &M = D.module(Id);
    for (WireId In : M.Inputs)
      ++Counts[static_cast<int>(Summary.sortOf(In))];
    for (WireId Out : M.Outputs)
      ++Counts[static_cast<int>(Summary.sortOf(Out))];
  }

  size_t at(Sort S) const { return Counts[static_cast<int>(S)]; }
};

std::vector<std::string> row(const char *Source, const SortCounts &C) {
  return {Source,
          std::to_string(C.Modules),
          std::to_string(C.at(Sort::ToSync)),
          std::to_string(C.at(Sort::ToPort)),
          std::to_string(C.at(Sort::FromSync)),
          std::to_string(C.at(Sort::FromPort))};
}

} // namespace

int main(int ArgC, char **ArgV) {
  gen::OpdbOptions Options;
  if (quickMode(ArgC, ArgV))
    Options.ShrinkAddrBits = 6;

  std::printf("=== Table 4: annotations per sort ===\n\n");

  SortCounts Catalog, Opdb, Riscv, Total;

  // BaseJump-style catalog corpus.
  for (const gen::CatalogEntry &E : gen::catalog()) {
    Design D;
    ModuleId Id = D.addModule(E.Build());
    std::map<ModuleId, ModuleSummary> Out;
    if (analyzeDesign(D, Out).hasError())
      continue;
    Catalog.addModule(D, Id, Out.at(Id));
    Total.addModule(D, Id, Out.at(Id));
  }

  // OPDB stand-ins.
  {
    Design D;
    std::vector<gen::OpdbEntry> Entries = gen::buildOpdb(D, Options);
    std::map<ModuleId, ModuleSummary> Out;
    if (!analyzeDesign(D, Out).hasError()) {
      for (const gen::OpdbEntry &E : Entries) {
        Opdb.addModule(D, E.Top, Out.at(E.Top));
        Total.addModule(D, E.Top, Out.at(E.Top));
      }
    }
  }

  // RISC-V CPU modules.
  {
    Design D;
    riscv::Cpu C = riscv::buildCpu(D);
    std::map<ModuleId, ModuleSummary> Out;
    if (!analyzeDesign(D, Out).hasError()) {
      for (ModuleId Id : C.Modules) {
        Riscv.addModule(D, Id, Out.at(Id));
        Total.addModule(D, Id, Out.at(Id));
      }
    }
  }

  Table T({"Source", "Modules", "TS", "TP", "FS", "FP"});
  T.addRow(row("BaseJump-style catalog", Catalog));
  T.addRow(row("OpenPiton DB stand-ins", Opdb));
  T.addRow(row("RISC-V", Riscv));
  T.addRow(row("Total", Total));
  T.print();

  size_t Inputs = Total.at(Sort::ToSync) + Total.at(Sort::ToPort);
  size_t Outputs = Total.at(Sort::FromSync) + Total.at(Sort::FromPort);
  size_t Surprising = Total.at(Sort::ToPort) + Total.at(Sort::FromPort);
  size_t All = Inputs + Outputs;
  std::printf("\nto-sync inputs: %.1f%% of inputs (paper 62.5%%)\n",
              100.0 * Total.at(Sort::ToSync) / Inputs);
  std::printf("from-sync outputs: %.1f%% of outputs (paper 59.8%%)\n",
              100.0 * Total.at(Sort::FromSync) / Outputs);
  std::printf("ports that can raise a \"late surprise\": %.1f%% "
              "(paper 38.7%%)\n",
              100.0 * Surprising / All);
  std::printf("(paper totals over 172 modules: TS 594, TP 357, FS 426, "
              "FP 286)\n");
  return 0;
}
