//===- bench/BenchUtil.h - Shared benchmark harness helpers -----*- C++ -*-===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table benchmark binaries: sort-set
/// pretty-printing and the Yosys-style "import at gate level" pipeline
/// (the paper analyzed flattened BLIF, so the timed inference in Tables
/// 1 and 2 runs over bit-blasted modules, not RTL).
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_BENCH_BENCHUTIL_H
#define WIRESORT_BENCH_BENCHUTIL_H

#include "analysis/SortInference.h"
#include "analysis/SummaryEngine.h"
#include "ir/Design.h"
#include "support/Timer.h"
#include "support/Trace.h"
#include "synth/Lower.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace wiresort::bench {

/// Per-module measurement mirroring the paper's evaluation pipeline:
/// synthesize to primitive gates (as Yosys-to-BLIF did), then time sort
/// inference over the gate-level module.
struct GateLevelRun {
  size_t PrimGates = 0;
  size_t Ports = 0;
  double InferSeconds = 0.0;
  analysis::ModuleSummary Summary;
  ir::Module Gates;
};

/// When \p Engine is null a throwaway serial engine is used (every call
/// infers from scratch — the paper's cold-measurement methodology);
/// passing an engine lets sweeps share its cache and thread pool
/// configuration, in which case InferSeconds reflects hits.
inline GateLevelRun runGateLevel(const ir::Design &D, ir::ModuleId Id,
                                 analysis::SummaryEngine *Engine = nullptr) {
  GateLevelRun Run;
  Run.Gates = synth::lower(D, Id);
  for (const ir::Net &N : Run.Gates.Nets)
    Run.PrimGates += N.Operation != ir::Op::Buf;
  Run.Ports = Run.Gates.numPorts();

  ir::Design Flat;
  ir::ModuleId FlatId = Flat.addModule(Run.Gates);
  analysis::CheckOptions SerialOpts;
  SerialOpts.Threads = 1;
  analysis::SummaryEngine Local(SerialOpts);
  analysis::SummaryEngine &E = Engine ? *Engine : Local;
  Timer T;
  std::map<ir::ModuleId, analysis::ModuleSummary> Out;
  auto Loop = E.analyze(Flat, Out);
  Run.InferSeconds = T.seconds();
  if (!Loop.hasError())
    Run.Summary = std::move(Out.at(FlatId));
  return Run;
}

/// "{a, b}" or the empty-set glyph for port sets.
inline std::string portSetString(const ir::Module &M,
                                 const std::vector<ir::WireId> &Set) {
  if (Set.empty())
    return "{}";
  std::string Out = "{";
  for (size_t I = 0; I != Set.size(); ++I) {
    if (I)
      Out += ", ";
    Out += M.wire(Set[I]).Name;
  }
  return Out + "}";
}

/// True when the benchmark was invoked with --quick (CI-scale designs).
inline bool quickMode(int ArgC, char **ArgV) {
  for (int I = 1; I < ArgC; ++I)
    if (std::string(ArgV[I]) == "--quick")
      return true;
  return false;
}

/// The path following `--json <path>` on the command line, or "" when the
/// flag is absent. Benches that support it mirror their table rows into a
/// machine-readable JSON report there (e.g. bench_kernel writes
/// BENCH_kernel.json for the perf-trajectory tooling).
inline std::string jsonPath(int ArgC, char **ArgV) {
  for (int I = 1; I + 1 < ArgC; ++I)
    if (std::string(ArgV[I]) == "--json")
      return ArgV[I + 1];
  return {};
}

/// Tiny JSON emitter for bench reports: an array of flat objects with
/// string and number fields — just enough for trend tooling to diff runs
/// without scraping the human tables.
class JsonReport {
public:
  JsonReport &beginRecord() {
    Records.emplace_back();
    return *this;
  }
  JsonReport &field(const std::string &Key, const std::string &Value) {
    Records.back().emplace_back(Key, "\"" + escape(Value) + "\"");
    return *this;
  }
  JsonReport &field(const std::string &Key, double Value) {
    char Buf[32];
    std::snprintf(Buf, sizeof Buf, "%.9g", Value);
    Records.back().emplace_back(Key, Buf);
    return *this;
  }
  JsonReport &field(const std::string &Key, uint64_t Value) {
    Records.back().emplace_back(Key, std::to_string(Value));
    return *this;
  }

  std::string str() const {
    std::string Out = "[\n";
    for (size_t R = 0; R != Records.size(); ++R) {
      Out += "  {";
      for (size_t F = 0; F != Records[R].size(); ++F) {
        if (F)
          Out += ", ";
        Out += "\"" + escape(Records[R][F].first) +
               "\": " + Records[R][F].second;
      }
      Out += R + 1 != Records.size() ? "},\n" : "}\n";
    }
    return Out + "]\n";
  }

  /// Writes \ref str to \p Path; \returns false (with a stderr note) on
  /// I/O failure so benches can surface it without aborting the run.
  bool writeTo(const std::string &Path) const {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot write JSON report to %s\n", Path.c_str());
      return false;
    }
    const std::string Body = str();
    const bool Ok = std::fwrite(Body.data(), 1, Body.size(), F) ==
                    Body.size();
    std::fclose(F);
    return Ok;
  }

  /// Mirrors the support::trace registry into this report: one record
  /// per counter ({"counter": name, "value": N}) and one per histogram
  /// ({"histogram": name, "count", "sum_us", "min_us", "max_us"}).
  /// Benches that run their measured section inside a metrics-only
  /// trace::Session call this after Session::finish() so the report
  /// carries the engine/kernel counters alongside the timing rows.
  JsonReport &appendTraceRegistry() {
    for (const auto &[Name, Value] : trace::counterSnapshot())
      beginRecord().field("counter", Name).field("value", Value);
    for (const trace::HistogramSnapshot &H : trace::histogramSnapshot())
      beginRecord()
          .field("histogram", H.Name)
          .field("count", H.Count)
          .field("sum_us", H.Sum)
          .field("min_us", H.Min)
          .field("max_us", H.Max);
    return *this;
  }

private:
  static std::string escape(const std::string &S) {
    std::string Out;
    for (char C : S) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    return Out;
  }

  std::vector<std::vector<std::pair<std::string, std::string>>> Records;
};

} // namespace wiresort::bench

#endif // WIRESORT_BENCH_BENCHUTIL_H
