//===- bench/BenchUtil.h - Shared benchmark harness helpers -----*- C++ -*-===//
//
// Part of the wiresort project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table benchmark binaries: sort-set
/// pretty-printing and the Yosys-style "import at gate level" pipeline
/// (the paper analyzed flattened BLIF, so the timed inference in Tables
/// 1 and 2 runs over bit-blasted modules, not RTL).
///
//===----------------------------------------------------------------------===//

#ifndef WIRESORT_BENCH_BENCHUTIL_H
#define WIRESORT_BENCH_BENCHUTIL_H

#include "analysis/SortInference.h"
#include "analysis/SummaryEngine.h"
#include "ir/Design.h"
#include "support/Timer.h"
#include "synth/Lower.h"

#include <cstdio>
#include <string>

namespace wiresort::bench {

/// Per-module measurement mirroring the paper's evaluation pipeline:
/// synthesize to primitive gates (as Yosys-to-BLIF did), then time sort
/// inference over the gate-level module.
struct GateLevelRun {
  size_t PrimGates = 0;
  size_t Ports = 0;
  double InferSeconds = 0.0;
  analysis::ModuleSummary Summary;
  ir::Module Gates;
};

/// When \p Engine is null a throwaway serial engine is used (every call
/// infers from scratch — the paper's cold-measurement methodology);
/// passing an engine lets sweeps share its cache and thread pool
/// configuration, in which case InferSeconds reflects hits.
inline GateLevelRun runGateLevel(const ir::Design &D, ir::ModuleId Id,
                                 analysis::SummaryEngine *Engine = nullptr) {
  GateLevelRun Run;
  Run.Gates = synth::lower(D, Id);
  for (const ir::Net &N : Run.Gates.Nets)
    Run.PrimGates += N.Operation != ir::Op::Buf;
  Run.Ports = Run.Gates.numPorts();

  ir::Design Flat;
  ir::ModuleId FlatId = Flat.addModule(Run.Gates);
  analysis::EngineOptions SerialOpts;
  SerialOpts.Threads = 1;
  analysis::SummaryEngine Local(SerialOpts);
  analysis::SummaryEngine &E = Engine ? *Engine : Local;
  Timer T;
  std::map<ir::ModuleId, analysis::ModuleSummary> Out;
  auto Loop = E.analyze(Flat, Out);
  Run.InferSeconds = T.seconds();
  if (!Loop)
    Run.Summary = std::move(Out.at(FlatId));
  return Run;
}

/// "{a, b}" or the empty-set glyph for port sets.
inline std::string portSetString(const ir::Module &M,
                                 const std::vector<ir::WireId> &Set) {
  if (Set.empty())
    return "{}";
  std::string Out = "{";
  for (size_t I = 0; I != Set.size(); ++I) {
    if (I)
      Out += ", ";
    Out += M.wire(Set[I]).Name;
  }
  return Out + "}";
}

/// True when the benchmark was invoked with --quick (CI-scale designs).
inline bool quickMode(int ArgC, char **ArgV) {
  for (int I = 1; I < ArgC; ++I)
    if (std::string(ArgV[I]) == "--quick")
      return true;
  return false;
}

} // namespace wiresort::bench

#endif // WIRESORT_BENCH_BENCHUTIL_H
