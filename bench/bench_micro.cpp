//===- bench/bench_micro.cpp - google-benchmark microbenchmarks -----------===//
//
// Part of the wiresort project, a reproduction of "Wire Sorts: A Language
// Abstraction for Safe Hardware Composition" (PLDI 2021).
//
// Microbenchmarks of the individual analysis phases, for regression
// tracking: sort inference, port-graph construction, SCC checking,
// lowering, and netlist cycle detection, each across design sizes.
//
//===----------------------------------------------------------------------===//

#include "analysis/SortInference.h"
#include "analysis/WellConnected.h"
#include "gen/Fifo.h"
#include "synth/CycleDetect.h"
#include "synth/Lower.h"

#include <benchmark/benchmark.h>

using namespace wiresort;
using namespace wiresort::analysis;
using namespace wiresort::ir;

namespace {

void BM_SortInferenceRtl(benchmark::State &State) {
  Design D;
  D.addModule(gen::makeFifo(
      {64, static_cast<uint16_t>(State.range(0)), /*Forwarding=*/true}));
  for (auto _ : State) {
    std::map<ModuleId, ModuleSummary> Out;
    benchmark::DoNotOptimize(analyzeDesign(D, Out));
  }
  State.SetLabel("depth=2^" + std::to_string(State.range(0)));
}
BENCHMARK(BM_SortInferenceRtl)->Arg(2)->Arg(6)->Arg(10);

void BM_SortInferenceGateLevel(benchmark::State &State) {
  Design D;
  ModuleId Id = D.addModule(gen::makeFifo(
      {64, static_cast<uint16_t>(State.range(0)), /*Forwarding=*/true}));
  Design Flat;
  Flat.addModule(synth::lower(D, Id));
  for (auto _ : State) {
    std::map<ModuleId, ModuleSummary> Out;
    benchmark::DoNotOptimize(analyzeDesign(Flat, Out));
  }
  State.SetItemsProcessed(State.iterations() *
                          Flat.module(0).Nets.size());
}
BENCHMARK(BM_SortInferenceGateLevel)->Arg(2)->Arg(4)->Arg(6);

void BM_Lowering(benchmark::State &State) {
  Design D;
  ModuleId Id = D.addModule(gen::makeFifo(
      {64, static_cast<uint16_t>(State.range(0)), /*Forwarding=*/false}));
  for (auto _ : State)
    benchmark::DoNotOptimize(synth::lower(D, Id));
}
BENCHMARK(BM_Lowering)->Arg(2)->Arg(4)->Arg(6);

void BM_NetlistCycleDetection(benchmark::State &State) {
  Design D;
  ModuleId Id = D.addModule(gen::makeFifo(
      {64, static_cast<uint16_t>(State.range(0)), /*Forwarding=*/true}));
  Module Gates = synth::lower(D, Id);
  for (auto _ : State)
    benchmark::DoNotOptimize(synth::detectCycles(Gates));
  State.SetItemsProcessed(State.iterations() * Gates.Nets.size());
}
BENCHMARK(BM_NetlistCycleDetection)->Arg(2)->Arg(4)->Arg(6);

void BM_CircuitCheckScc(benchmark::State &State) {
  Design D;
  ModuleId Fwd = D.addModule(gen::makeFifo({8, 2, /*Forwarding=*/true}));
  std::map<ModuleId, ModuleSummary> Summaries;
  if (analyzeDesign(D, Summaries).hasError())
    return;
  Circuit Circ(D, "chain");
  std::vector<InstId> Insts;
  const size_t N = State.range(0);
  for (size_t I = 0; I != N; ++I)
    Insts.push_back(Circ.addInstance(Fwd, "q" + std::to_string(I)));
  for (size_t I = 0; I + 1 != N; ++I)
    Circ.connect(Insts[I], "v_o", Insts[I + 1], "v_i");
  for (auto _ : State)
    benchmark::DoNotOptimize(checkCircuit(Circ, Summaries));
  State.SetItemsProcessed(State.iterations() * Circ.connections().size());
}
BENCHMARK(BM_CircuitCheckScc)->Arg(16)->Arg(128)->Arg(1024);

void BM_CircuitCheckPairwise(benchmark::State &State) {
  Design D;
  ModuleId Fwd = D.addModule(gen::makeFifo({8, 2, /*Forwarding=*/true}));
  std::map<ModuleId, ModuleSummary> Summaries;
  if (analyzeDesign(D, Summaries).hasError())
    return;
  Circuit Circ(D, "chain");
  std::vector<InstId> Insts;
  const size_t N = State.range(0);
  for (size_t I = 0; I != N; ++I)
    Insts.push_back(Circ.addInstance(Fwd, "q" + std::to_string(I)));
  for (size_t I = 0; I + 1 != N; ++I)
    Circ.connect(Insts[I], "v_o", Insts[I + 1], "v_i");
  for (auto _ : State)
    benchmark::DoNotOptimize(checkCircuitPairwise(Circ, Summaries));
}
BENCHMARK(BM_CircuitCheckPairwise)->Arg(16)->Arg(128);

} // namespace

BENCHMARK_MAIN();
